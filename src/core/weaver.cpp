#include "core/weaver.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "rt/epoch.h"

namespace pmp::prose {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

}  // namespace

Weaver::Weaver(rt::Runtime& runtime) : runtime_(runtime) {
    observer_ = runtime_.add_type_observer([this](rt::TypeInfo& t) { on_type_registered(t); });
}

Weaver::~Weaver() {
    withdraw_all(WithdrawReason::kExplicit);
    runtime_.remove_type_observer(observer_);
}

void Weaver::weave_into_type(rt::TypeInfo& type, AspectId id, Woven& woven) {
    // Per-aspect join-point telemetry: every advice execution bumps the
    // aspect's call counter and records its (real, CPU) latency. Slots are
    // resolved once per weave; the woven hooks carry raw pointers, which
    // stay valid because these are pinned registry entries.
    obs::Counter* calls =
        &obs::Registry::global().counter("weaver.advice_calls", woven.aspect->name());
    obs::Histogram* latency =
        &obs::Registry::global().histogram("weaver.advice_ns", woven.aspect->name());

    // The wrapper also reports every outcome to the advice observer (the
    // receiver's quarantine input) — success as nullptr, failure as the
    // escaping exception, which is then rethrown unchanged. The observer
    // runs regardless of obs::enabled(): it is protocol machinery, not
    // telemetry.
    // `wp` is stable: each Woven is heap-pinned (unique_ptr in woven_),
    // and withdraw retires it through the epoch domain after unhooking, so
    // no hook — including a superseded snapshot still being walked on
    // another shard — outlives its Woven.
    auto timed = [this, id, calls, latency, wp = &woven](
                     const obs::Profiler::Site& site, const auto& fn,
                     auto&&... args) -> decltype(auto) {
        const bool instrument = obs::enabled();
        if (instrument) {
            calls->inc();
            if (!wp->first_dispatched.load(std::memory_order_relaxed) &&
                !wp->first_dispatched.exchange(true, std::memory_order_relaxed)) {
                // First advice execution ever for this weave: mark it on
                // the weave's own trace (install → weave → first dispatch
                // is the chain the paper's Fig 2 walks through).
                auto& tb = obs::TraceBuffer::global();
                obs::TraceBuffer::ContextScope scope(tb, wp->weave_ctx);
                tb.instant("prose.weaver", "advice.first_dispatch",
                           {{"aspect", wp->aspect->name()}});
            }
        }
        Clock::time_point t0 = instrument ? Clock::now() : Clock::time_point{};
        try {
            if constexpr (std::is_void_v<decltype(fn(
                              std::forward<decltype(args)>(args)...))>) {
                fn(std::forward<decltype(args)>(args)...);
                if (instrument) {
                    double ns = elapsed_ns(t0);
                    latency->observe(ns);
                    site.record(ns);
                }
                if (advice_observer_) advice_observer_(id, nullptr);
            } else {
                auto result = fn(std::forward<decltype(args)>(args)...);
                if (instrument) {
                    double ns = elapsed_ns(t0);
                    latency->observe(ns);
                    site.record(ns);
                }
                if (advice_observer_) advice_observer_(id, nullptr);
                return result;
            }
        } catch (const std::exception& e) {
            if (advice_observer_) advice_observer_(id, &e);
            throw;
        }
    };

    for (const AdviceBinding& binding : woven.aspect->bindings()) {
        // Cost-attribution slot for this (extension, pointcut) pair — the
        // profiler's unit of blame (copied by value into every hook).
        obs::Profiler::Site site =
            obs::Profiler::global().site(woven.aspect->name(), binding.pointcut.source());
        switch (binding.kind) {
            case AdviceKind::kBefore:
            case AdviceKind::kAfter:
            case AdviceKind::kAfterThrowing:
            case AdviceKind::kAround:
                for (rt::Method* method : plan_.methods_for(binding.pointcut, type)) {
                    ++woven.report.methods_matched;
                    woven.hooked_methods.push_back(method);
                    switch (binding.kind) {
                        case AdviceKind::kBefore:
                            method->add_entry_hook(id.value, binding.priority,
                                                   [this, id, timed, site,
                                                    fn = binding.before](rt::CallFrame& f) {
                                                       if (!allows(id)) return;
                                                       timed(site, fn, f);
                                                   });
                            break;
                        case AdviceKind::kAfter:
                            method->add_exit_hook(id.value, binding.priority,
                                                  [this, id, timed, site,
                                                   fn = binding.after](rt::CallFrame& f) {
                                                      if (!allows(id)) return;
                                                      timed(site, fn, f);
                                                  });
                            break;
                        case AdviceKind::kAfterThrowing:
                            method->add_error_hook(
                                id.value, binding.priority,
                                [this, id, timed, site, fn = binding.after_throwing](
                                    rt::CallFrame& f, std::exception_ptr e) {
                                    if (!allows(id)) return;
                                    timed(site, fn, f, e);
                                });
                            break;
                        default:
                            method->add_around_hook(
                                id.value, binding.priority,
                                [this, id, timed, site, fn = binding.around](
                                    rt::CallFrame& f,
                                    const std::function<rt::Value()>& proceed) {
                                    // A gated around must not swallow the
                                    // underlying call.
                                    if (!allows(id)) return proceed();
                                    return timed(site, fn, f, proceed);
                                });
                            break;
                    }
                }
                break;
            case AdviceKind::kFieldSet:
                for (rt::Field* field : plan_.fields_set_for(binding.pointcut, type)) {
                    ++woven.report.fields_matched;
                    woven.hooked_fields.push_back(field);
                    field->add_set_hook(id.value, binding.priority,
                                        [this, id, timed, site,
                                         fn = binding.field_set](auto&&... args) {
                                            if (!allows(id)) return;
                                            timed(site, fn, std::forward<decltype(args)>(args)...);
                                        });
                }
                break;
            case AdviceKind::kFieldGet:
                for (rt::Field* field : plan_.fields_get_for(binding.pointcut, type)) {
                    ++woven.report.fields_matched;
                    woven.hooked_fields.push_back(field);
                    field->add_get_hook(id.value, binding.priority,
                                        [this, id, timed, site,
                                         fn = binding.field_get](auto&&... args) {
                                            if (!allows(id)) return;
                                            timed(site, fn, std::forward<decltype(args)>(args)...);
                                        });
                }
                break;
        }
    }
}

AspectId Weaver::weave(std::shared_ptr<Aspect> aspect) {
    auto& reg = obs::Registry::global();
    std::uint64_t span = obs::TraceBuffer::global().begin_span("prose.weaver", "weave",
                                                               {{"aspect", aspect->name()}});
    Clock::time_point t0 = Clock::now();

    plan_.note_weave();
    AspectId id = ids_.next();
    auto [it, _] = woven_.emplace(id, std::make_unique<Woven>());
    it->second->aspect = std::move(aspect);
    it->second->weave_ctx = obs::TraceBuffer::global().context_of(span);
    for (const auto& type : runtime_.types()) {
        weave_into_type(*type, id, *it->second);
    }

    reg.histogram("weaver.weave_ns").observe(elapsed_ns(t0));
    reg.counter("weaver.weaves").inc();
    reg.gauge("weaver.woven").set(static_cast<std::int64_t>(woven_.size()));
    obs::TraceBuffer::global().end_span(
        span, {{"methods", std::to_string(it->second->report.methods_matched)},
               {"fields", std::to_string(it->second->report.fields_matched)}});
    return id;
}

bool Weaver::withdraw(AspectId id, WithdrawReason reason) {
    auto it = woven_.find(id);
    if (it == woven_.end()) return false;
    auto& reg = obs::Registry::global();
    std::uint64_t span = obs::TraceBuffer::global().begin_span(
        "prose.weaver", "withdraw",
        {{"aspect", it->second->aspect->name()}, {"reason", withdraw_reason_name(reason)}});
    Clock::time_point t0 = Clock::now();

    // Shutdown procedure first (paper: the extension is notified before
    // leaving so it can reach a consistent state), then unhook. Withdrawal
    // is targeted: the weave recorded every member it hooked, so only
    // those are touched (a member may appear once per matching binding —
    // remove_hooks clears all of an owner's hooks, later visits no-op).
    plan_.note_withdraw();
    it->second->aspect->notify_withdraw(reason);
    for (rt::Method* method : it->second->hooked_methods) method->remove_hooks(id.value);
    for (rt::Field* field : it->second->hooked_fields) field->remove_hooks(id.value);
    // The superseded hook-table snapshots retired by remove_hooks capture
    // a pointer to this Woven; it must survive the same grace period, and
    // it was retired *after* the tables, so it is reclaimed no earlier.
    rt::EpochDomain::global().retire([w = it->second.release()] { delete w; });
    woven_.erase(it);

    reg.histogram("weaver.withdraw_ns").observe(elapsed_ns(t0));
    reg.counter("weaver.withdrawals").inc();
    reg.gauge("weaver.woven").set(static_cast<std::int64_t>(woven_.size()));
    obs::TraceBuffer::global().end_span(span);
    return true;
}

void Weaver::withdraw_all(WithdrawReason reason) {
    while (!woven_.empty()) {
        withdraw(woven_.begin()->first, reason);
    }
}

std::shared_ptr<Aspect> Weaver::find(AspectId id) const {
    auto it = woven_.find(id);
    return it == woven_.end() ? nullptr : it->second->aspect;
}

const WeaveReport* Weaver::report(AspectId id) const {
    auto it = woven_.find(id);
    return it == woven_.end() ? nullptr : &it->second->report;
}

void Weaver::on_type_registered(rt::TypeInfo& type) {
    plan_.note_type_registered();
    for (auto& [id, woven] : woven_) {
        weave_into_type(type, id, *woven);
    }
}

}  // namespace pmp::prose
