#include "net/router.h"

#include "common/log.h"

namespace pmp::net {

MessageRouter::MessageRouter(Network& network, NodeId self)
    : network_(network), self_(self) {
    network_.set_handler(self_, [this](const Message& msg) { dispatch(msg); });
}

void MessageRouter::route(const std::string& kind, Handler handler) {
    handlers_[kind] = std::move(handler);
}

void MessageRouter::unroute(const std::string& kind) { handlers_.erase(kind); }

bool MessageRouter::send(NodeId to, const std::string& kind, Bytes payload) {
    return network_.send(Message{self_, to, kind, std::move(payload)});
}

std::size_t MessageRouter::broadcast(const std::string& kind, Bytes payload) {
    return network_.broadcast(self_, kind, std::move(payload));
}

void MessageRouter::dispatch(const Message& msg) {
    auto it = handlers_.find(msg.kind);
    if (it == handlers_.end()) {
        log_debug(network_.simulator().now(), "router",
                  network_.name_of(self_), " dropped unrouted kind '", msg.kind, "'");
        return;
    }
    it->second(msg);
}

}  // namespace pmp::net
