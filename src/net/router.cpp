#include "net/router.h"

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmp::net {

MessageRouter::MessageRouter(Network& network, NodeId self)
    : network_(network), self_(self), admission_(network.simulator()) {
    network_.set_handler(self_, [this](const Message& msg) { dispatch(msg); });
}

void MessageRouter::route(const std::string& kind, Handler handler) {
    handlers_[kind] = std::move(handler);
}

void MessageRouter::unroute(const std::string& kind) { handlers_.erase(kind); }

bool MessageRouter::send(NodeId to, const std::string& kind, Bytes payload) {
    Message msg{self_, to, kind, std::move(payload)};
    // Stamp the sender's causal position onto the frame; delivery on the
    // far side restores it, which is how a trace crosses the radio.
    msg.trace = obs::TraceBuffer::global().current();
    return network_.send(msg);
}

std::size_t MessageRouter::broadcast(const std::string& kind, Bytes payload) {
    return network_.broadcast(self_, kind, std::move(payload));
}

bool MessageRouter::send_remote(std::size_t dst_shard, const std::string& to_name,
                                const std::string& kind, Bytes payload) {
    if (mesh_ == nullptr) return false;
    return mesh_->send(my_shard_, dst_shard, network_.name_of(self_), to_name, kind,
                       std::move(payload));
}

void MessageRouter::dispatch(const Message& msg) {
    auto it = handlers_.find(msg.kind);
    if (it == handlers_.end()) {
        log_debug(network_.simulator().now(), "router",
                  network_.name_of(self_), " dropped unrouted kind '", msg.kind, "'");
        return;
    }
    // Last line of defence: a throwing protocol handler must cost one
    // message, not unwind the whole simulator loop. Protocols are expected
    // to contain their own errors (RPC replies an error); anything that
    // still escapes is logged and dropped, exactly like a garbled frame.
    try {
        it->second(msg);
    } catch (const std::exception& e) {
        static obs::Counter& handler_errors =
            obs::Registry::global().counter("net.router.handler_errors");
        handler_errors.inc();
        log_warn(network_.simulator().now(), "router", network_.name_of(self_),
                 " handler for '", msg.kind, "' threw: ", e.what());
    }
}

}  // namespace pmp::net
