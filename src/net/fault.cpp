#include "net/fault.h"

#include <algorithm>
#include <cmath>

namespace pmp::net {

namespace {

/// SplitMix64 finalizer: mixes the plan seed with the link endpoints so
/// each directed link gets an independent, order-of-creation-independent
/// RNG stream.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

bool matches(const std::vector<NodeId>& side, NodeId id) {
    if (side.empty()) return true;  // empty side = every node
    for (NodeId n : side) {
        if (n == id) return true;
    }
    return false;
}

bool cuts(const PartitionWindow& w, NodeId from, NodeId to, SimTime now) {
    if (now < w.from || now >= w.until) return false;
    if (matches(w.side_a, from) && matches(w.side_b, to)) return true;
    if (w.one_way) return false;
    return matches(w.side_b, from) && matches(w.side_a, to);
}

/// FNV-1a over the node label, so window streams key off the stable name
/// rather than a NodeId that changes across restarts.
std::uint64_t hash_label(const std::string& s) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

}  // namespace

std::vector<CrashEvent> expand_crashes(const CrashPlan& plan, std::uint64_t seed) {
    std::vector<CrashEvent> out = plan.events;
    for (std::size_t i = 0; i < plan.windows.size(); ++i) {
        const CrashWindow& w = plan.windows[i];
        if (w.rate_per_sec <= 0 || w.until <= w.from) continue;
        Rng rng(mix(seed ^ mix(hash_label(w.node)) ^ mix(i + 1)));
        SimTime t = w.from;
        while (true) {
            // Exponential inter-arrival gap; 1-u keeps log()'s argument > 0.
            double u = rng.next_double();
            double gap_sec = -std::log(1.0 - u) / w.rate_per_sec;
            t = t + Duration{static_cast<std::int64_t>(gap_sec * 1e9)};
            if (t >= w.until) break;
            out.push_back(CrashEvent{w.node, t, w.down_for});
            // The node is down (and uncrashable) until it restarts.
            t = t + w.down_for;
        }
    }
    std::sort(out.begin(), out.end(), [](const CrashEvent& a, const CrashEvent& b) {
        return a.at != b.at ? a.at < b.at : a.node < b.node;
    });
    return out;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

FaultInjector::LinkState& FaultInjector::link(NodeId from, NodeId to) {
    auto key = std::pair{from, to};
    auto it = links_.find(key);
    if (it == links_.end()) {
        std::uint64_t fk = key_fn_ ? key_fn_(from) : from.value;
        std::uint64_t tk = key_fn_ ? key_fn_(to) : to.value;
        std::uint64_t stream = mix(seed_ ^ mix(fk) ^ mix(mix(tk)));
        it = links_.emplace(key, LinkState{Rng(stream), false}).first;
    }
    return it->second;
}

bool FaultInjector::partitioned(NodeId from, NodeId to, SimTime now) const {
    for (const PartitionWindow& w : plan_.partitions) {
        if (cuts(w, from, to, now)) return true;
    }
    return false;
}

FaultInjector::Verdict FaultInjector::judge(NodeId from, NodeId to, SimTime now) {
    Verdict v;
    if (partitioned(from, to, now)) {
        v.drop = Drop::kPartition;
        return v;  // the link is dead: burst state does not advance
    }

    LinkState& state = link(from, to);
    if (state.in_burst) {
        bool lost = state.rng.chance(plan_.burst_loss);
        if (state.rng.chance(plan_.burst_exit)) state.in_burst = false;
        if (lost) {
            v.drop = Drop::kBurst;
            return v;
        }
    } else {
        if (plan_.burst_enter > 0 && state.rng.chance(plan_.burst_enter)) {
            state.in_burst = true;
            if (state.rng.chance(plan_.burst_loss)) {
                v.drop = Drop::kBurst;
                return v;
            }
        } else if (plan_.loss > 0 && state.rng.chance(plan_.loss)) {
            v.drop = Drop::kLoss;
            return v;
        }
    }

    if (plan_.delay_jitter.count() > 0) {
        v.extra_delay += Duration{static_cast<std::int64_t>(
            state.rng.next_below(static_cast<std::uint64_t>(plan_.delay_jitter.count())))};
    }
    if (plan_.reorder > 0 && state.rng.chance(plan_.reorder)) {
        v.extra_delay += plan_.reorder_hold;
        v.reordered = true;
    }
    if (plan_.duplicate > 0 && state.rng.chance(plan_.duplicate)) {
        v.duplicate = true;
    }
    return v;
}

}  // namespace pmp::net
