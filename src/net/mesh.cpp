#include "net/mesh.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmp::net {

namespace {
struct MeshMetrics {
    obs::Counter& sent = obs::Registry::global().counter("net.mesh.sent");
    obs::Counter& dropped = obs::Registry::global().counter("net.mesh.dropped");
    obs::Counter& delivered = obs::Registry::global().counter("net.mesh.delivered");
    obs::Counter& unresolved = obs::Registry::global().counter("net.mesh.unresolved");
};
MeshMetrics& mesh_metrics() {
    static MeshMetrics m;
    return m;
}
}  // namespace

ShardMesh::ShardMesh(sim::ShardedSimulator& shards, MeshOptions opts)
    : shards_(shards), opts_(opts) {
    std::size_t n = shards_.shard_count();
    nets_.assign(n, nullptr);
    lanes_.reserve(n * n);
    for (std::size_t src = 0; src < n; ++src) {
        for (std::size_t dst = 0; dst < n; ++dst) {
            // Lane streams key off (seed, "mesh", src, dst) — stable at
            // any worker count, independent of attach order.
            auto lane = std::make_unique<Lane>(
                Lane{Rng(shards_.shard_seed(src * n + dst, "mesh")), 0});
            lanes_.push_back(std::move(lane));
        }
    }
}

void ShardMesh::attach(std::size_t shard, Network& net) {
    std::lock_guard<std::mutex> lock(mu_);
    nets_[shard] = &net;
}

void ShardMesh::detach(std::size_t shard) {
    std::lock_guard<std::mutex> lock(mu_);
    nets_[shard] = nullptr;
}

bool ShardMesh::send(std::size_t src_shard, std::size_t dst_shard, const std::string& from_name,
                     const std::string& to_name, const std::string& kind, Bytes payload) {
    // The sender's ambient context (its shard buffer's, when called from a
    // window) rides the frame — id namespaces are disjoint per shard, so
    // carrying it into another shard's buffer cannot collide.
    obs::TraceContext ctx = obs::TraceBuffer::global().current();
    {
        std::lock_guard<std::mutex> lock(mu_);
        Lane& lane = *lanes_[src_shard * shards_.shard_count() + dst_shard];
        ++lane.sent;
        ++sent_;
        if (opts_.loss > 0 && lane.rng.chance(opts_.loss)) {
            ++dropped_;
            mesh_metrics().dropped.inc();
            return false;
        }
    }
    mesh_metrics().sent.inc();
    SimTime when = shards_.shard(src_shard).now() + opts_.latency;
    shards_.post(
        src_shard, dst_shard, when,
        [this, dst_shard, from_name, to_name, kind, payload = std::move(payload), ctx]() {
            Network* net;
            {
                std::lock_guard<std::mutex> lock(mu_);
                net = nets_[dst_shard];
            }
            if (net == nullptr) {
                mesh_metrics().unresolved.inc();
                return;
            }
            auto to = net->find_node(to_name);
            if (!to) {
                mesh_metrics().unresolved.inc();
                return;
            }
            // `from` is not an id on the destination network (ids are
            // per-network); the hop instant below records the sender's
            // stable name, and protocols embed it in payloads themselves.
            Message msg{NodeId{}, *to, kind, payload, ctx};
            {
                auto& tb = obs::TraceBuffer::global();
                obs::TraceBuffer::ContextScope scope(tb, ctx);
                tb.instant("net.mesh", "mesh.deliver",
                           {{"from", from_name}, {"to", to_name}, {"kind", kind}});
            }
            if (net->deliver_local(msg)) mesh_metrics().delivered.inc();
        });
    return true;
}

}  // namespace pmp::net
