// Per-node message dispatch.
//
// A node runs several protocol endpoints at once (discovery client, RPC,
// adaptation service, lease renewals...). The Network delivers each node a
// single stream of messages; the router fans them out by `kind`.
#pragma once

#include <string>
#include <unordered_map>

#include "net/admission.h"
#include "net/network.h"

namespace pmp::net {

class MessageRouter {
public:
    using Handler = std::function<void(const Message&)>;

    /// Installs itself as the node's network handler.
    MessageRouter(Network& network, NodeId self);

    /// Register the handler for an exact message kind (e.g. "rpc.call").
    /// Replaces any previous handler for the kind.
    void route(const std::string& kind, Handler handler);
    void unroute(const std::string& kind);

    bool send(NodeId to, const std::string& kind, Bytes payload);
    std::size_t broadcast(const std::string& kind, Bytes payload);

    NodeId self() const { return self_; }
    Network& network() { return network_; }
    sim::Simulator& simulator() { return network_.simulator(); }

    /// The node's inbound admission gate. The router hosts it (one per
    /// node); protocols that execute caller-driven work — rpc dispatch,
    /// chiefly — classify and offer their work here. Reconfigure with
    /// `admission().set_config(...)` (soaks tighten it; the defaults are
    /// sized to be invisible to well-behaved fleets).
    AdmissionQueue& admission() { return admission_; }

private:
    void dispatch(const Message& msg);

    Network& network_;
    NodeId self_;
    AdmissionQueue admission_;
    std::unordered_map<std::string, Handler> handlers_;
};

}  // namespace pmp::net
