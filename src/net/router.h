// Per-node message dispatch.
//
// A node runs several protocol endpoints at once (discovery client, RPC,
// adaptation service, lease renewals...). The Network delivers each node a
// single stream of messages; the router fans them out by `kind`.
#pragma once

#include <string>
#include <unordered_map>

#include "net/admission.h"
#include "net/mesh.h"
#include "net/network.h"

namespace pmp::net {

class MessageRouter {
public:
    using Handler = std::function<void(const Message&)>;

    /// Installs itself as the node's network handler.
    MessageRouter(Network& network, NodeId self);

    /// Register the handler for an exact message kind (e.g. "rpc.call").
    /// Replaces any previous handler for the kind.
    void route(const std::string& kind, Handler handler);
    void unroute(const std::string& kind);

    bool send(NodeId to, const std::string& kind, Bytes payload);
    std::size_t broadcast(const std::string& kind, Bytes payload);

    /// Join the cross-shard backbone: after this, send_remote() reaches
    /// nodes on other shards by name. The mesh must outlive the router
    /// (both are world-scoped; nothing is registered mesh-side, so there
    /// is no detach).
    void attach_mesh(ShardMesh& mesh, std::size_t my_shard) {
        mesh_ = &mesh;
        my_shard_ = my_shard;
    }

    /// Send to a named node on another shard over the backbone. Returns
    /// false when no mesh is attached or the backbone dropped the frame.
    bool send_remote(std::size_t dst_shard, const std::string& to_name,
                     const std::string& kind, Bytes payload);

    NodeId self() const { return self_; }
    Network& network() { return network_; }
    sim::Simulator& simulator() { return network_.simulator(); }

    /// The node's inbound admission gate. The router hosts it (one per
    /// node); protocols that execute caller-driven work — rpc dispatch,
    /// chiefly — classify and offer their work here. Reconfigure with
    /// `admission().set_config(...)` (soaks tighten it; the defaults are
    /// sized to be invisible to well-behaved fleets).
    AdmissionQueue& admission() { return admission_; }

private:
    void dispatch(const Message& msg);

    Network& network_;
    NodeId self_;
    AdmissionQueue admission_;
    std::unordered_map<std::string, Handler> handlers_;
    ShardMesh* mesh_ = nullptr;  ///< null until attach_mesh
    std::size_t my_shard_ = 0;
};

}  // namespace pmp::net
