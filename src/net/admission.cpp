#include "net/admission.h"

#include "obs/metrics.h"

namespace pmp::net {

namespace {
// Process-wide totals; per-node sheds are counted by the rpc layer, which
// knows its node label (see rpc.shed).
struct AdmissionMetrics {
    obs::Counter& admitted = obs::Registry::global().counter("net.admission.admitted");
    obs::Counter& queued = obs::Registry::global().counter("net.admission.queued");
    obs::Counter& shed = obs::Registry::global().counter("net.admission.shed");
};

AdmissionMetrics& metrics() {
    static AdmissionMetrics m;
    return m;
}
}  // namespace

const char* to_string(AdmitClass cls) {
    switch (cls) {
        case AdmitClass::kControl: return "control";
        case AdmitClass::kInstall: return "install";
        case AdmitClass::kApp: return "app";
    }
    return "?";
}

AdmissionQueue::AdmissionQueue(sim::Simulator& sim, AdmissionConfig config)
    : sim_(sim), config_(config), bucket_(config.rate_per_sec, config.burst) {}

AdmissionQueue::~AdmissionQueue() {
    // Queued work dies with the node; remote callers time out, exactly as
    // for a crash. Nothing scheduled may touch us afterwards.
    if (drain_armed_) sim_.cancel(drain_timer_);
}

std::size_t AdmissionQueue::queued_total() const {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
}

void AdmissionQueue::set_config(AdmissionConfig config) {
    config_ = config;
    bucket_ = sim::TokenBucket(config.rate_per_sec, config.burst);
    if (queued_total() > 0) arm_drain();
}

AdmissionQueue::Decision AdmissionQueue::offer(AdmitClass cls, Work work) {
    if (!config_.enabled) {
        work();
        return Decision{};
    }
    const int c = static_cast<int>(cls);
    SimTime now = sim_.now();

    // Fast path: a token is on hand and nothing of equal or higher priority
    // waits, so running now cannot reorder anyone. This is the whole cost
    // of admission on an unloaded node.
    bool ahead = false;
    for (int i = 0; i <= c; ++i) ahead = ahead || !queues_[i].empty();
    if (!ahead && bucket_.try_take(now)) {
        metrics().admitted.inc();
        work();
        return Decision{};
    }

    if (queues_[c].size() >= config_.queue_cap[c]) {
        // Shed. Estimate when the backlog ahead of this call would have
        // drained: everything queued at this priority or better, plus one.
        std::size_t backlog = 1;
        for (int i = 0; i <= c; ++i) backlog += queues_[i].size();
        metrics().shed.inc();
        return Decision{.admitted = false,
                        .queued = false,
                        .retry_after = bucket_.time_until(now, static_cast<double>(backlog))};
    }

    queues_[c].push_back(std::move(work));
    metrics().queued.inc();
    arm_drain();
    return Decision{.admitted = true, .queued = true};
}

void AdmissionQueue::arm_drain() {
    if (drain_armed_) return;
    drain_armed_ = true;
    drain_timer_ = sim_.schedule_after(bucket_.time_until(sim_.now()), [this]() {
        drain_armed_ = false;
        drain();
    });
}

void AdmissionQueue::drain() {
    // Pop in strict class-priority order while tokens last. Work may
    // re-enter offer() (a dispatched handler making further calls); the
    // queues are plain deques and offer() never runs work synchronously
    // when anything is queued ahead, so recursion is bounded and order is
    // preserved.
    SimTime now = sim_.now();
    while (bucket_.available(now) >= 1.0) {
        int c = -1;
        for (int i = 0; i < static_cast<int>(kAdmitClasses); ++i) {
            if (!queues_[i].empty()) {
                c = i;
                break;
            }
        }
        if (c < 0) return;
        Work work = std::move(queues_[c].front());
        queues_[c].pop_front();
        bucket_.try_take(now);
        metrics().admitted.inc();
        work();
        now = sim_.now();
    }
    if (queued_total() > 0) arm_drain();
}

}  // namespace pmp::net
