#include "net/network.h"

#include <atomic>
#include <cmath>

#include "common/error.h"
#include "common/hash.h"
#include "common/log.h"
#include "obs/trace.h"

namespace pmp::net {

double Position::distance_to(const Position& other) const {
    double dx = x - other.x;
    double dy = y - other.y;
    return std::sqrt(dx * dx + dy * dy);
}

namespace {
std::string next_net_label() {
    // Atomic: shard worlds construct their Networks concurrently.
    static std::atomic<int> seq{0};
    return "net" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed) + 1);
}
}  // namespace

Network::Network(sim::Simulator& sim, NetworkConfig config, std::uint64_t seed)
    : sim_(sim),
      config_(config),
      rng_(seed),
      obs_label_(config.obs_label.empty() ? next_net_label() : config.obs_label),
      sent_("net.sent", obs_label_),
      delivered_("net.delivered", obs_label_),
      dropped_out_of_range_("net.dropped_range", obs_label_),
      dropped_loss_("net.dropped_loss", obs_label_),
      duplicated_("net.duplicated", obs_label_),
      bytes_delivered_("net.bytes_delivered", obs_label_),
      fault_dropped_loss_("net.fault.dropped_loss", obs_label_),
      fault_dropped_burst_("net.fault.dropped_burst", obs_label_),
      fault_dropped_partition_("net.fault.dropped_partition", obs_label_),
      fault_duplicated_("net.fault.duplicated", obs_label_),
      fault_delayed_("net.fault.delayed", obs_label_),
      fault_reordered_("net.fault.reordered", obs_label_) {}

NetworkStats Network::stats() const {
    return NetworkStats{sent_.value(),
                        delivered_.value(),
                        dropped_out_of_range_.value(),
                        dropped_loss_.value(),
                        duplicated_.value(),
                        bytes_delivered_.value(),
                        fault_dropped_loss_.value(),
                        fault_dropped_burst_.value(),
                        fault_dropped_partition_.value(),
                        fault_duplicated_.value(),
                        fault_delayed_.value(),
                        fault_reordered_.value()};
}

void Network::reset_stats() {
    sent_.reset();
    delivered_.reset();
    dropped_out_of_range_.reset();
    dropped_loss_.reset();
    duplicated_.reset();
    bytes_delivered_.reset();
    fault_dropped_loss_.reset();
    fault_dropped_burst_.reset();
    fault_dropped_partition_.reset();
    fault_duplicated_.reset();
    fault_delayed_.reset();
    fault_reordered_.reset();
}

void Network::set_fault_plan(FaultPlan plan, std::uint64_t seed) {
    // Announce each scheduled window on the trace ring so a soak's event
    // log shows *why* traffic stopped. Instants fire when the window
    // actually opens/heals, not at install time.
    for (const PartitionWindow& w : plan.partitions) {
        if (w.from > sim_.now()) {
            sim_.schedule_at(w.from, [this]() {
                obs::TraceBuffer::global().instant("net.network", "net.partition",
                                                   {{"net", obs_label_}, {"state", "cut"}});
            });
        }
        if (w.until != SimTime::max()) {
            sim_.schedule_at(w.until, [this]() {
                obs::TraceBuffer::global().instant("net.network", "net.partition",
                                                   {{"net", obs_label_}, {"state", "heal"}});
            });
        }
    }
    injector_ = std::make_unique<FaultInjector>(std::move(plan), seed);
    // Key link streams by stable node names: the same logical link draws
    // the same fault pattern however ids were allocated (shard layouts
    // build their node subsets in different orders).
    injector_->set_key_fn([this](NodeId id) {
        const auto* n = find(id);
        return n ? fnv1a64(n->name) : id.value;
    });
}

void Network::clear_fault_plan() { injector_.reset(); }

NodeId Network::add_node(const std::string& name, Position pos, double range) {
    NodeId id = node_ids_.next();
    nodes_.emplace(id, NodeState{name, pos, range, nullptr, nullptr, /*epoch=*/1});
    return id;
}

void Network::remove_node(NodeId id) {
    auto* node = find(id);
    if (!node || node->removed) return;
    // Bumping the epoch invalidates in-flight deliveries without having
    // to chase down their timers. The handler/tap std::functions are NOT
    // destroyed here: remove_node may be running *inside* the node's own
    // handler (a crash-point firing mid-dispatch), and freeing the closure
    // under its own feet is UB. The `removed` flag keeps them from ever
    // running again; compact() frees them on a fresh event.
    ++node->epoch;
    node->range = 0;
    node->removed = true;
    std::erase_if(wires_, [id](const auto& w) { return w.first == id || w.second == id; });
    // Compact on a fresh event (not inline): a handler removing its own
    // node must not free the std::function it is executing from.
    sim_.schedule_after(Duration{0}, [this, id]() { compact(id); });
}

void Network::compact(NodeId id) {
    auto it = nodes_.find(id);
    if (it != nodes_.end() && it->second.removed && it->second.in_flight == 0) {
        nodes_.erase(it);
    }
}

void Network::set_handler(NodeId id, Handler handler) {
    if (auto* node = find(id)) {
        node->handler = std::move(handler);
    } else {
        throw RemoteError("set_handler: unknown node " + id.str());
    }
}

void Network::set_tap(NodeId id, Handler tap) {
    if (auto* node = find(id)) {
        node->tap = std::move(tap);
    } else {
        throw RemoteError("set_tap: unknown node " + id.str());
    }
}

void Network::move_node(NodeId id, Position pos) {
    if (auto* node = find(id)) {
        node->pos = pos;
    } else {
        throw RemoteError("move_node: unknown node " + id.str());
    }
}

Position Network::position_of(NodeId id) const {
    const auto* node = find(id);
    if (!node) throw RemoteError("position_of: unknown node " + id.str());
    return node->pos;
}

std::string Network::name_of(NodeId id) const {
    const auto* node = find(id);
    return node ? node->name : "<gone>";
}

std::optional<NodeId> Network::find_node(const std::string& name) const {
    for (const auto& [id, node] : nodes_) {
        if (!node.removed && node.name == name) return id;
    }
    return std::nullopt;
}

bool Network::deliver_local(const Message& msg) {
    auto it = nodes_.find(msg.to);
    if (it == nodes_.end() || it->second.removed || !it->second.handler) {
        dropped_out_of_range_.inc();
        return false;
    }
    delivered_.inc();
    bytes_delivered_.inc(msg.wire_size());
    obs::TraceBuffer::ContextScope scope(obs::TraceBuffer::global(), msg.trace);
    if (it->second.tap) it->second.tap(msg);
    it->second.handler(msg);
    return true;
}

void Network::add_wire(NodeId a, NodeId b) {
    if (a == b) return;
    wires_.insert(a < b ? std::pair{a, b} : std::pair{b, a});
}

bool Network::in_contact(NodeId a, NodeId b) const {
    const auto* na = find(a);
    const auto* nb = find(b);
    if (!na || !nb || a == b) return false;
    if (na->removed || nb->removed) return false;
    if (wires_.contains(a < b ? std::pair{a, b} : std::pair{b, a})) return true;
    double dist = na->pos.distance_to(nb->pos);
    return dist <= na->range && dist <= nb->range;
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
    std::vector<NodeId> out;
    for (const auto& [other_id, _] : nodes_) {
        if (other_id != id && in_contact(id, other_id)) out.push_back(other_id);
    }
    return out;
}

Duration Network::transit_time(const Message& msg) {
    auto size_cost = Duration{config_.per_kilobyte.count() *
                              static_cast<std::int64_t>(msg.wire_size()) / 1024};
    auto jitter = config_.jitter.count() > 0
                      ? Duration{static_cast<std::int64_t>(
                            rng_.next_below(static_cast<std::uint64_t>(config_.jitter.count())))}
                      : Duration{0};
    return config_.base_latency + size_cost + jitter;
}

void Network::schedule_delivery(const Message& msg, std::uint64_t to_epoch,
                                Duration extra_delay) {
    if (auto* receiver = find(msg.to)) ++receiver->in_flight;
    sim_.schedule_after(transit_time(msg) + extra_delay, [this, msg, to_epoch]() {
        auto it = nodes_.find(msg.to);
        if (it == nodes_.end()) {
            dropped_out_of_range_.inc();
            return;
        }
        NodeState& receiver = it->second;
        if (receiver.in_flight > 0) --receiver.in_flight;
        if (receiver.removed) {
            dropped_out_of_range_.inc();
            if (receiver.in_flight == 0) nodes_.erase(it);  // tombstone drained
            return;
        }
        if (receiver.epoch != to_epoch || !receiver.handler) {
            dropped_out_of_range_.inc();
            return;
        }
        // A partition window may have opened while the message was in
        // flight: the jammed radio swallows it at delivery time.
        if (injector_ && injector_->partitioned(msg.from, msg.to, sim_.now())) {
            fault_dropped_partition_.inc();
            return;
        }
        // Radio check at delivery time: the receiver may have roamed out of
        // range while the message was in flight. If the *sender* died
        // mid-flight the frame already left its radio, so it still arrives
        // — the physics a crash-point like "install sent, then the base
        // dies" depends on. (With the sender gone we can no longer compute
        // range, so such frames deliver unconditionally.)
        const NodeState* sender = find(msg.from);
        bool sender_gone = !sender || sender->removed;
        if (!sender_gone && !in_contact(msg.from, msg.to)) {
            dropped_out_of_range_.inc();
            return;
        }
        delivered_.inc();
        bytes_delivered_.inc(msg.wire_size());
        // The frame's causal context becomes ambient for the duration of
        // the delivery: every span/instant the handler records joins the
        // sender's trace.
        obs::TraceBuffer::ContextScope scope(obs::TraceBuffer::global(), msg.trace);
        if (receiver.tap) receiver.tap(msg);
        receiver.handler(msg);
    });
}

bool Network::send(const Message& msg) {
    sent_.inc();
    const auto* receiver = find(msg.to);
    if (!receiver || !in_contact(msg.from, msg.to)) {
        dropped_out_of_range_.inc();
        return false;
    }
    if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
        dropped_loss_.inc();
        return false;
    }
    Duration extra_delay{0};
    bool fault_duplicate = false;
    if (injector_) {
        FaultInjector::Verdict verdict = injector_->judge(msg.from, msg.to, sim_.now());
        switch (verdict.drop) {
            case FaultInjector::Drop::kLoss:
                fault_dropped_loss_.inc();
                return false;
            case FaultInjector::Drop::kBurst:
                fault_dropped_burst_.inc();
                return false;
            case FaultInjector::Drop::kPartition:
                fault_dropped_partition_.inc();
                return false;
            case FaultInjector::Drop::kNone:
                break;
        }
        extra_delay = verdict.extra_delay;
        fault_duplicate = verdict.duplicate;
        if (verdict.reordered) fault_reordered_.inc();
        if (extra_delay.count() > 0) fault_delayed_.inc();
    }
    schedule_delivery(msg, receiver->epoch, extra_delay);
    if (fault_duplicate) {
        fault_duplicated_.inc();
        schedule_delivery(msg, receiver->epoch, extra_delay);
    }
    if (config_.duplicate_probability > 0 && rng_.chance(config_.duplicate_probability)) {
        duplicated_.inc();
        schedule_delivery(msg, receiver->epoch);
    }
    return true;
}

std::size_t Network::broadcast(NodeId from, const std::string& kind, Bytes payload) {
    std::size_t scheduled = 0;
    for (NodeId neighbor : neighbors(from)) {
        Message copy{from, neighbor, kind, payload};
        copy.trace = obs::TraceBuffer::global().current();
        if (send(copy)) ++scheduled;
    }
    return scheduled;
}

const Network::NodeState* Network::find(NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

Network::NodeState* Network::find(NodeId id) {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

}  // namespace pmp::net
