#include "net/network.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace pmp::net {

double Position::distance_to(const Position& other) const {
    double dx = x - other.x;
    double dy = y - other.y;
    return std::sqrt(dx * dx + dy * dy);
}

namespace {
std::string next_net_label() {
    static int seq = 0;
    return "net" + std::to_string(++seq);
}
}  // namespace

Network::Network(sim::Simulator& sim, NetworkConfig config, std::uint64_t seed)
    : sim_(sim),
      config_(config),
      rng_(seed),
      obs_label_(next_net_label()),
      sent_("net.sent", obs_label_),
      delivered_("net.delivered", obs_label_),
      dropped_out_of_range_("net.dropped_range", obs_label_),
      dropped_loss_("net.dropped_loss", obs_label_),
      duplicated_("net.duplicated", obs_label_),
      bytes_delivered_("net.bytes_delivered", obs_label_) {}

NetworkStats Network::stats() const {
    return NetworkStats{sent_.value(),         delivered_.value(), dropped_out_of_range_.value(),
                        dropped_loss_.value(), duplicated_.value(), bytes_delivered_.value()};
}

void Network::reset_stats() {
    sent_.reset();
    delivered_.reset();
    dropped_out_of_range_.reset();
    dropped_loss_.reset();
    duplicated_.reset();
    bytes_delivered_.reset();
}

NodeId Network::add_node(const std::string& name, Position pos, double range) {
    NodeId id = node_ids_.next();
    nodes_.emplace(id, NodeState{name, pos, range, nullptr, nullptr, /*epoch=*/1});
    return id;
}

void Network::remove_node(NodeId id) {
    if (auto* node = find(id)) {
        // Bumping the epoch invalidates in-flight deliveries without having
        // to chase down their timers.
        ++node->epoch;
        node->handler = nullptr;
        node->range = 0;
    }
}

void Network::set_handler(NodeId id, Handler handler) {
    if (auto* node = find(id)) {
        node->handler = std::move(handler);
    } else {
        throw RemoteError("set_handler: unknown node " + id.str());
    }
}

void Network::set_tap(NodeId id, Handler tap) {
    if (auto* node = find(id)) {
        node->tap = std::move(tap);
    } else {
        throw RemoteError("set_tap: unknown node " + id.str());
    }
}

void Network::move_node(NodeId id, Position pos) {
    if (auto* node = find(id)) {
        node->pos = pos;
    } else {
        throw RemoteError("move_node: unknown node " + id.str());
    }
}

Position Network::position_of(NodeId id) const {
    const auto* node = find(id);
    if (!node) throw RemoteError("position_of: unknown node " + id.str());
    return node->pos;
}

std::string Network::name_of(NodeId id) const {
    const auto* node = find(id);
    return node ? node->name : "<gone>";
}

void Network::add_wire(NodeId a, NodeId b) {
    if (a == b) return;
    wires_.insert(a < b ? std::pair{a, b} : std::pair{b, a});
}

bool Network::in_contact(NodeId a, NodeId b) const {
    const auto* na = find(a);
    const auto* nb = find(b);
    if (!na || !nb || a == b) return false;
    if (wires_.contains(a < b ? std::pair{a, b} : std::pair{b, a})) return true;
    double dist = na->pos.distance_to(nb->pos);
    return dist <= na->range && dist <= nb->range;
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
    std::vector<NodeId> out;
    for (const auto& [other_id, _] : nodes_) {
        if (other_id != id && in_contact(id, other_id)) out.push_back(other_id);
    }
    return out;
}

Duration Network::transit_time(const Message& msg) {
    auto size_cost = Duration{config_.per_kilobyte.count() *
                              static_cast<std::int64_t>(msg.wire_size()) / 1024};
    auto jitter = config_.jitter.count() > 0
                      ? Duration{static_cast<std::int64_t>(
                            rng_.next_below(static_cast<std::uint64_t>(config_.jitter.count())))}
                      : Duration{0};
    return config_.base_latency + size_cost + jitter;
}

void Network::schedule_delivery(const Message& msg, std::uint64_t to_epoch) {
    sim_.schedule_after(transit_time(msg), [this, msg, to_epoch]() {
        auto* receiver = find(msg.to);
        if (!receiver || receiver->epoch != to_epoch || !receiver->handler) {
            dropped_out_of_range_.inc();
            return;
        }
        // Radio check at delivery time: the receiver may have roamed out of
        // range while the message was in flight.
        if (!in_contact(msg.from, msg.to)) {
            dropped_out_of_range_.inc();
            return;
        }
        delivered_.inc();
        bytes_delivered_.inc(msg.wire_size());
        if (receiver->tap) receiver->tap(msg);
        receiver->handler(msg);
    });
}

bool Network::send(const Message& msg) {
    sent_.inc();
    const auto* receiver = find(msg.to);
    if (!receiver || !in_contact(msg.from, msg.to)) {
        dropped_out_of_range_.inc();
        return false;
    }
    if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
        dropped_loss_.inc();
        return false;
    }
    schedule_delivery(msg, receiver->epoch);
    if (config_.duplicate_probability > 0 && rng_.chance(config_.duplicate_probability)) {
        duplicated_.inc();
        schedule_delivery(msg, receiver->epoch);
    }
    return true;
}

std::size_t Network::broadcast(NodeId from, const std::string& kind, Bytes payload) {
    std::size_t scheduled = 0;
    for (NodeId neighbor : neighbors(from)) {
        Message copy{from, neighbor, kind, payload};
        if (send(copy)) ++scheduled;
    }
    return scheduled;
}

const Network::NodeState* Network::find(NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

Network::NodeState* Network::find(NodeId id) {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

}  // namespace pmp::net
