// Deterministic radio fault injection.
//
// The base NetworkConfig models a *uniform* radio: every message sees the
// same independent loss and jitter. Real radios misbehave in structured
// ways — losses arrive in bursts (fading, interference), links go one-way
// (asymmetric transmit power), whole areas black out and heal (a forklift
// parks in front of the access point). A FaultPlan describes such a
// scenario; the Network consults its FaultInjector on every delivery, so a
// single seeded plan turns any existing test or benchmark topology into a
// hostile one without touching the protocols under test.
//
// Determinism: the injector derives one independent RNG stream per
// directed link from the plan seed (order-independent mixing), so the same
// seed over the same traffic produces the identical fault pattern — the
// property the chaos soak's replay check relies on.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace pmp::net {

struct Message;

/// A scripted connectivity cut between two node groups. While active,
/// messages from a node in `side_a` to one in `side_b` are dropped — and
/// the reverse direction too unless `one_way` is set. An empty side matches
/// every node, so {.side_a = {n}, .side_b = {}} isolates `n` entirely.
struct PartitionWindow {
    SimTime from;                  ///< window opens (inclusive)
    SimTime until = SimTime::max();  ///< window heals (exclusive)
    std::vector<NodeId> side_a;
    std::vector<NodeId> side_b;
    bool one_way = false;  ///< only a->b is cut; b->a still delivers
};

/// Everything the injector may do to traffic. All probabilities are
/// per-message; durations are added on top of the network's own latency
/// model. Zero-initialised members leave that fault class off.
struct FaultPlan {
    /// Independent per-message loss while a link is in its good state.
    double loss = 0.0;

    /// Gilbert-Elliott burst loss, tracked per directed link: with
    /// `burst_enter` a message flips the link into the burst state, where
    /// messages drop with `burst_loss` until a message flips it back with
    /// `burst_exit`. Models fading: losses cluster instead of sprinkling.
    double burst_enter = 0.0;
    double burst_exit = 0.25;
    double burst_loss = 0.95;

    /// Extra delivery delay, uniform in [0, delay_jitter], per message.
    Duration delay_jitter = Duration{0};

    /// Per-message duplication (the radio MAC retransmits although the
    /// first copy arrived).
    double duplicate = 0.0;

    /// With this probability a message is held back `reorder_hold` longer,
    /// letting later messages overtake it.
    double reorder = 0.0;
    Duration reorder_hold = milliseconds(5);

    /// Scheduled partitions; any active window that matches drops the
    /// message.
    std::vector<PartitionWindow> partitions;
};

/// One scheduled process crash: the node (by label — ids change across
/// restarts) dies at `at` and restarts `down_for` later.
struct CrashEvent {
    std::string node;
    SimTime at;
    Duration down_for = seconds(1);
};

/// Probabilistic crashes: within [from, until) the node crashes at Poisson
/// rate `rate_per_sec`, each outage lasting `down_for`. Expanded into
/// concrete CrashEvents up front (see expand_crashes) so the schedule is a
/// pure function of the seed — crashes never consume RNG state that the
/// link-fault streams depend on.
struct CrashWindow {
    std::string node;
    SimTime from;
    SimTime until;
    double rate_per_sec = 0.0;
    Duration down_for = seconds(1);
};

/// Process-level fault script, consumed by midas::Supervisor. Named
/// crash-points ("after install sent, before activity recorded") are armed
/// separately through sim::FailPoints — they fire on code-path hits, not
/// at scheduled instants.
struct CrashPlan {
    std::vector<CrashEvent> events;
    std::vector<CrashWindow> windows;
};

/// Deterministically pre-expand a plan's windows into concrete events and
/// merge them with the scheduled ones, sorted by time. Each window draws
/// from its own RNG stream keyed by (seed, node label, window index), so
/// editing one window never shifts another's crash times.
std::vector<CrashEvent> expand_crashes(const CrashPlan& plan, std::uint64_t seed);

/// Per-delivery verdict machinery. Owned by the Network once a plan is
/// installed; tests may also drive one directly.
class FaultInjector {
public:
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    /// Why a message was dropped (for per-cause counters).
    enum class Drop { kNone, kLoss, kBurst, kPartition };

    struct Verdict {
        Drop drop = Drop::kNone;
        Duration extra_delay = Duration{0};
        bool reordered = false;   ///< extra_delay includes a reorder hold
        bool duplicate = false;
    };

    /// Judge a message about to be sent at `now`. Advances the per-link
    /// burst state, so call exactly once per send attempt.
    Verdict judge(NodeId from, NodeId to, SimTime now);

    /// True if any active partition window cuts `from -> to` at `now`.
    /// Pure (no RNG state touched); also consulted at delivery time for
    /// messages in flight when a window opens.
    bool partitioned(NodeId from, NodeId to, SimTime now) const;

    /// Override the per-link stream key. By default streams derive from
    /// NodeId values, which are allocation-ordered: the same logical world
    /// built across a different shard layout assigns different ids and so
    /// draws different fault patterns. Installing a resolver that returns
    /// a *stable* key (the Network installs the FNV-1a hash of the node's
    /// name) makes each directed link's stream a pure function of
    /// (seed, names) — identical at any shard or worker count. Affects
    /// links on first use, so install before traffic flows; direct users
    /// of the id-derived default are unchanged.
    void set_key_fn(std::function<std::uint64_t(NodeId)> fn) { key_fn_ = std::move(fn); }

    const FaultPlan& plan() const { return plan_; }

private:
    struct LinkState {
        Rng rng;
        bool in_burst = false;
    };
    LinkState& link(NodeId from, NodeId to);

    FaultPlan plan_;
    std::uint64_t seed_;
    std::function<std::uint64_t(NodeId)> key_fn_;
    std::map<std::pair<NodeId, NodeId>, LinkState> links_;
};

}  // namespace pmp::net
