// Per-node admission control: bounded, class-prioritized inbound work queues.
//
// A node's inbound request work (rpc dispatch, mainly) passes through this
// gate before executing. Work is classified into three priority classes —
// control traffic (leases, keep-alives, discovery bookkeeping) ahead of
// extension installs ahead of advice-driven application traffic — and each
// class gets its own bounded FIFO. A shared token bucket (virtual time, see
// sim/token_bucket.h) paces execution: when tokens are available and nothing
// of equal or higher priority waits, work runs immediately (the unloaded
// fast path costs one bucket check); otherwise it queues, and when its
// class queue is full it is *shed* — the caller gets a typed Overloaded
// error with a retry-after hint instead of a timeout.
//
// The point (paper §3.3 meets the ROADMAP's "heavy traffic" north star): a
// base station blasting installs, or an application storm, must never
// starve the keep-alive traffic that keeps leases — and therefore the
// node's whole adaptation state — alive.
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <functional>

#include "sim/simulator.h"
#include "sim/token_bucket.h"

namespace pmp::net {

/// Priority classes, highest first. Numeric order is drain order.
enum class AdmitClass : int {
    kControl = 0,  ///< lease renewals, keep-alives, revokes, registrar ops
    kInstall = 1,  ///< extension package installs
    kApp = 2,      ///< everything else (advice-driven application traffic)
};
constexpr std::size_t kAdmitClasses = 3;

const char* to_string(AdmitClass cls);

struct AdmissionConfig {
    /// Disabled: every offer runs immediately (the seed behavior).
    bool enabled = true;
    /// Shared execution budget across all classes. The defaults are sized
    /// to be invisible to well-behaved fleets (hundreds of calls/s/node)
    /// and to bite only under storm load; soaks tighten them explicitly.
    double rate_per_sec = 2000.0;
    double burst = 256.0;
    /// Per-class queue bounds; overflow is shed.
    std::array<std::size_t, kAdmitClasses> queue_cap{256, 64, 256};
};

class AdmissionQueue {
public:
    using Work = std::function<void()>;

    AdmissionQueue(sim::Simulator& sim, AdmissionConfig config = {});
    ~AdmissionQueue();

    AdmissionQueue(const AdmissionQueue&) = delete;
    AdmissionQueue& operator=(const AdmissionQueue&) = delete;

    struct Decision {
        bool admitted = true;     ///< false = shed; `work` was not (and will not be) run
        bool queued = false;      ///< true = parked; runs when a token accrues
        Duration retry_after{0};  ///< on shed: estimate of when capacity returns
    };

    /// Admit, queue, or shed `work`. Queued work runs from the simulator
    /// event loop in strict class-priority order (FIFO within a class) as
    /// tokens accrue. Shed work is dropped here — the caller owns telling
    /// its peer (rpc encodes an Overloaded reply).
    Decision offer(AdmitClass cls, Work work);

    std::size_t queued_total() const;
    std::size_t queued(AdmitClass cls) const { return queues_[static_cast<int>(cls)].size(); }

    /// Reconfigure (tests/soaks). Queued work is kept; the bucket restarts
    /// full at the new rate.
    void set_config(AdmissionConfig config);
    const AdmissionConfig& config() const { return config_; }

private:
    void arm_drain();
    void drain();

    sim::Simulator& sim_;
    AdmissionConfig config_;
    sim::TokenBucket bucket_;
    std::array<std::deque<Work>, kAdmitClasses> queues_;
    sim::TimerId drain_timer_{};
    bool drain_armed_ = false;
};

}  // namespace pmp::net
