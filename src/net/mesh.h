// Cross-shard backbone between per-shard radio networks.
//
// Under the sharded kernel each shard owns one Network (its hall's radio).
// Traffic inside a hall stays on that radio; traffic *between* halls — the
// wired backbone between base stations — crosses shards, and anything that
// crosses shards must respect the kernel's lookahead contract. ShardMesh
// is that backbone: a send is clamped to at least sender-now + lookahead
// by ShardedSimulator::post(), travels a configurable backbone latency,
// and terminates in the destination network via Network::deliver_local().
//
// Addressing is by stable node *name* (ids are per-network): the
// destination network resolves the name at delivery time, so a receiver
// that crashed mid-flight drops the frame exactly like a radio would.
//
// Determinism: per-lane loss draws come from an RNG keyed by
// (world seed, "mesh", src, dst), and draws happen in the sender shard's
// event order — both independent of worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "net/network.h"
#include "sim/shard.h"

namespace pmp::net {

struct MeshOptions {
    /// One-way backbone latency added on top of the kernel's lookahead
    /// clamp (delivery at max(sender_now + lookahead, sender_now + latency)).
    Duration latency = milliseconds(2);
    /// Per-frame loss on the backbone (deterministic per lane).
    double loss = 0.0;
};

class ShardMesh {
public:
    ShardMesh(sim::ShardedSimulator& shards, MeshOptions opts = {});

    ShardMesh(const ShardMesh&) = delete;
    ShardMesh& operator=(const ShardMesh&) = delete;

    /// Attach shard `i`'s network. The pointer must outlive the mesh or be
    /// detached first; attach/detach are coordinator-side (between windows).
    void attach(std::size_t shard, Network& net);
    void detach(std::size_t shard);

    /// Send `kind`/`payload` from a node on `src_shard` to the node named
    /// `to_name` on `dst_shard`. Callable from an event executing on the
    /// source shard (the usual case) or from the coordinator between
    /// windows. The sender's ambient trace context rides along, so
    /// cross-shard chains render as one causal tree. Returns false if the
    /// backbone dropped the frame at send time (delivery-time failures —
    /// unknown name, crashed node — count on the destination network).
    bool send(std::size_t src_shard, std::size_t dst_shard, const std::string& from_name,
              const std::string& to_name, const std::string& kind, Bytes payload);

    std::uint64_t sent() const {
        std::lock_guard<std::mutex> lock(mu_);
        return sent_;
    }
    std::uint64_t dropped() const {
        std::lock_guard<std::mutex> lock(mu_);
        return dropped_;
    }

private:
    struct Lane {
        Rng rng;
        std::uint64_t sent = 0;
    };

    sim::ShardedSimulator& shards_;
    MeshOptions opts_;
    /// Directory and lanes are touched from worker threads (send) and the
    /// coordinator (attach/detach): one mutex, control-plane traffic only.
    mutable std::mutex mu_;
    std::vector<Network*> nets_;
    std::vector<std::unique_ptr<Lane>> lanes_;  ///< [src * shards + dst]
    std::uint64_t sent_ = 0;
    std::uint64_t dropped_ = 0;
};

}  // namespace pmp::net
