#include "net/mobility.h"

namespace pmp::net {

PathMover::PathMover(Network& network, NodeId node, std::vector<Waypoint> waypoints,
                     Duration tick)
    : network_(network),
      node_(node),
      waypoints_(std::move(waypoints)),
      origin_(network.position_of(node)),
      start_(network.simulator().now()) {
    if (waypoints_.empty()) {
        finished_ = true;
        return;
    }
    timer_ = network_.simulator().schedule_every(tick, [this]() { on_tick(); });
}

PathMover::~PathMover() {
    if (!finished_) network_.simulator().cancel(timer_);
}

Position PathMover::position_at(SimTime t) const {
    Position prev_pos = origin_;
    SimTime prev_time = start_;
    for (const auto& wp : waypoints_) {
        if (t <= wp.arrival) {
            auto leg = wp.arrival - prev_time;
            if (leg.count() <= 0) return wp.target;
            double f = static_cast<double>((t - prev_time).count()) /
                       static_cast<double>(leg.count());
            return Position{prev_pos.x + (wp.target.x - prev_pos.x) * f,
                            prev_pos.y + (wp.target.y - prev_pos.y) * f};
        }
        prev_pos = wp.target;
        prev_time = wp.arrival;
    }
    return waypoints_.back().target;
}

void PathMover::on_tick() {
    SimTime now = network_.simulator().now();
    network_.move_node(node_, position_at(now));
    if (now >= waypoints_.back().arrival) {
        finished_ = true;
        network_.simulator().cancel(timer_);
    }
}

}  // namespace pmp::net
