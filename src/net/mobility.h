// Mobility model: moves nodes along waypoint paths on the virtual clock.
//
// This is how scenarios express "the robot enters hall A, works there for
// two minutes, then rolls over to hall B": a sequence of timed waypoints.
// Positions are interpolated linearly and pushed into the Network on a
// fixed tick, so range checks (and therefore discovery and lease behaviour)
// track the motion.
#pragma once

#include <vector>

#include "net/network.h"

namespace pmp::net {

/// One stop on a path: be at `target` at time `arrival`.
struct Waypoint {
    Position target;
    SimTime arrival;
};

/// Drives one node along a waypoint schedule.
class PathMover {
public:
    /// Ticks every `tick` of virtual time; waypoints must be sorted by
    /// arrival time. The node stays at the last waypoint afterwards.
    PathMover(Network& network, NodeId node, std::vector<Waypoint> waypoints,
              Duration tick = milliseconds(100));
    ~PathMover();

    PathMover(const PathMover&) = delete;
    PathMover& operator=(const PathMover&) = delete;

    /// True once the final waypoint has been reached.
    bool finished() const { return finished_; }

private:
    void on_tick();
    Position position_at(SimTime t) const;

    Network& network_;
    NodeId node_;
    std::vector<Waypoint> waypoints_;
    Position origin_;
    SimTime start_;
    sim::TimerId timer_;
    bool finished_ = false;
};

}  // namespace pmp::net
