// Simulated wireless network.
//
// Models the paper's deployment substrate: mobile nodes and base stations on
// a 2-D plane, communicating over a shared radio. A pair of nodes can
// exchange messages while they are within radio range of each other; range
// is what makes "entering / leaving a production hall" observable to the
// middleware (discovery fires on entry, lease renewals start failing on
// exit). Latency, jitter and loss are configurable so tests can inject
// failures deterministically.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace pmp::net {

/// 2-D position in metres.
struct Position {
    double x = 0;
    double y = 0;

    double distance_to(const Position& other) const;
    bool operator==(const Position&) const = default;
};

/// One datagram. `kind` is the protocol discriminator (e.g. "disco.request",
/// "midas.install"); `payload` is the protocol-specific encoding.
struct Message {
    NodeId from;
    NodeId to;
    std::string kind;
    Bytes payload;
    /// Causal context riding the datagram (a real radio would put a few
    /// bytes of it in a header). The router stamps the sender's ambient
    /// context here; delivery restores it around the receiving handler,
    /// so cross-node chains share one trace. Observability metadata —
    /// deliberately excluded from wire_size(). A duplicated frame copies
    /// the whole Message, context included, so duplicates attach to the
    /// original's trace.
    obs::TraceContext trace;

    /// Approximate on-air size, used for the per-byte latency component.
    std::size_t wire_size() const { return kind.size() + payload.size() + 16; }
};

/// Radio and link-quality parameters.
struct NetworkConfig {
    Duration base_latency = microseconds(500);   ///< fixed per-hop cost
    Duration per_kilobyte = microseconds(800);   ///< serialization cost
    Duration jitter = microseconds(200);         ///< uniform in [0, jitter]
    double loss_probability = 0.0;               ///< per-message drop chance
    double duplicate_probability = 0.0;          ///< per-message dup chance
    /// Explicit obs label (metrics family + trace kv). Empty = the next
    /// process-wide "netN". Worlds that must render byte-identical traces
    /// across runs (the determinism gate) set this: the auto counter keeps
    /// advancing per process, so "netN" differs run to run.
    std::string obs_label;
};

/// Legacy stats view for tests and benchmarks. The authoritative counters
/// live in the obs registry under `net.*` (labelled per network instance);
/// this struct is assembled on demand by `Network::stats()`.
struct NetworkStats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_out_of_range = 0;
    std::uint64_t dropped_loss = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t bytes_delivered = 0;
    /// Drops and duplicates attributed to an installed FaultPlan
    /// (`net.fault.*` in the registry), by cause.
    std::uint64_t fault_dropped_loss = 0;
    std::uint64_t fault_dropped_burst = 0;
    std::uint64_t fault_dropped_partition = 0;
    std::uint64_t fault_duplicated = 0;
    std::uint64_t fault_delayed = 0;
    std::uint64_t fault_reordered = 0;
};

/// The shared radio medium. All nodes of one simulated world attach here.
class Network {
public:
    using Handler = std::function<void(const Message&)>;

    Network(sim::Simulator& sim, NetworkConfig config, std::uint64_t seed);

    /// Attach a node. `range` is its radio range in metres (base stations
    /// typically get a large range covering their hall; handhelds a small
    /// one). Returns the node's network identity.
    NodeId add_node(const std::string& name, Position pos, double range);

    /// Remove a node from the air (simulates power-off / crash). Pending
    /// deliveries to it are dropped; frames it already sent are still in
    /// flight and deliver (they left the radio before the power died). The
    /// entry itself is compacted once its in-flight deliveries have
    /// drained, so churn does not grow `nodes_`. Safe to call from inside
    /// the node's own receive handler (crash-points fire mid-dispatch).
    void remove_node(NodeId id);

    /// Attached node entries, including tombstones awaiting compaction
    /// (bounded: each tombstone lives only until its in-flight deliveries
    /// drain).
    std::size_t node_count() const { return nodes_.size(); }

    /// Install the receive callback for a node.
    void set_handler(NodeId id, Handler handler);

    /// Install a passive tap on a node: observes every message delivered to
    /// it, before the handler runs, without consuming anything. One tap per
    /// node; pass nullptr to remove. (The eavesdropper in the secure-hall
    /// example, packet captures in tests.)
    void set_tap(NodeId id, Handler tap);

    /// Teleport a node (the mobility model calls this every tick).
    void move_node(NodeId id, Position pos);

    Position position_of(NodeId id) const;
    std::string name_of(NodeId id) const;

    /// Resolve a node by its attached name (linear; directory lookups are
    /// control-plane, not per-message). Tombstoned nodes do not match.
    std::optional<NodeId> find_node(const std::string& name) const;

    /// Connect two nodes with a wired link: they stay in contact regardless
    /// of position (the backbone between base stations of adjacent halls).
    void add_wire(NodeId a, NodeId b);

    /// True if the two nodes can currently exchange messages — wired, or
    /// by radio (symmetric: each must be inside the other's range).
    bool in_contact(NodeId a, NodeId b) const;

    /// All attached nodes currently in contact with `id` (excluding itself).
    std::vector<NodeId> neighbors(NodeId id) const;

    /// Unicast. Checks contact at send time and again at delivery time (the
    /// receiver may have moved away mid-flight). Returns false if dropped at
    /// send time.
    bool send(const Message& msg);

    /// Broadcast to every node currently in contact with the sender.
    /// Returns the number of deliveries scheduled.
    std::size_t broadcast(NodeId from, const std::string& kind, Bytes payload);

    /// Local ingress for frames that arrive from outside this radio — the
    /// cross-shard backbone (net::ShardMesh) terminates here. Runs the tap
    /// and handler inline under the message's causal context, bypassing
    /// contact/fault checks (those belong to the medium the frame actually
    /// crossed). `msg.from` may name a node of another network. Returns
    /// false (counted as a range drop) if the target is gone or mute.
    bool deliver_local(const Message& msg);

    /// Install a fault plan: from now on every send/delivery is judged by
    /// a FaultInjector seeded with `seed` (deterministic per seed). Each
    /// partition window additionally emits `net.partition` trace instants
    /// when it opens ("cut") and heals ("heal"). Replaces any prior plan.
    void set_fault_plan(FaultPlan plan, std::uint64_t seed);
    void clear_fault_plan();
    const FaultInjector* fault() const { return injector_.get(); }

    NetworkStats stats() const;
    void reset_stats();

    /// The obs label this instance reports under (e.g. "net3").
    const std::string& obs_label() const { return obs_label_; }

    sim::Simulator& simulator() { return sim_; }

private:
    struct NodeState {
        std::string name;
        Position pos;
        double range = 0;
        Handler handler;
        Handler tap;
        std::uint64_t epoch = 0;  // bumped on remove; stale deliveries check it
        bool removed = false;     // tombstoned; compacted when in_flight drains
        std::uint64_t in_flight = 0;  // deliveries scheduled to this node
    };

    void schedule_delivery(const Message& msg, std::uint64_t to_epoch,
                           Duration extra_delay = Duration{0});
    /// Erase a tombstoned node once its in-flight deliveries have drained.
    void compact(NodeId id);
    Duration transit_time(const Message& msg);
    const NodeState* find(NodeId id) const;
    NodeState* find(NodeId id);

    sim::Simulator& sim_;
    NetworkConfig config_;
    Rng rng_;
    IdGenerator<NodeId> node_ids_;
    std::unordered_map<NodeId, NodeState> nodes_;
    std::set<std::pair<NodeId, NodeId>> wires_;  // normalized (min, max) pairs
    std::unique_ptr<FaultInjector> injector_;    // null: no plan installed

    // Per-instance counters in the global registry. Owned (refcounted) so a
    // destroyed network frees its label and a successor starts from zero.
    std::string obs_label_;
    obs::OwnedCounter sent_;
    obs::OwnedCounter delivered_;
    obs::OwnedCounter dropped_out_of_range_;
    obs::OwnedCounter dropped_loss_;
    obs::OwnedCounter duplicated_;
    obs::OwnedCounter bytes_delivered_;
    // Fault-plan attribution (all zero until set_fault_plan).
    obs::OwnedCounter fault_dropped_loss_;
    obs::OwnedCounter fault_dropped_burst_;
    obs::OwnedCounter fault_dropped_partition_;
    obs::OwnedCounter fault_duplicated_;
    obs::OwnedCounter fault_delayed_;
    obs::OwnedCounter fault_reordered_;
};

}  // namespace pmp::net
