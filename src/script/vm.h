// AdviceScript bytecode virtual machine — the hot-path engine.
//
// Executes CompiledUnits (script/compile.h) with the exact observable
// semantics of the reference Interpreter: same results, same typed errors
// with the same messages, same step counts (the compiler emits a kTick at
// every interpreter tick point). What changes is the cost model:
//
//   * locals are frame slots (no per-variable hash lookups);
//   * each distinct builtin callee is resolved once at Vm construction to
//     an Entry* plus a precomputed capability verdict, so the per-call
//     BuiltinRegistry::find string hash is gone from the dispatch loop;
//   * frames, operand stack and builtin argument lists are pooled, so a
//     steady-state advice invocation performs no allocations beyond what
//     the script's own values require.
//
// The full Sandbox contract is enforced: step budget, deadline watchdog,
// capability gating, recursion cap. Re-entrant calls (a host builtin
// calling back into script) share the outermost invocation's step meter,
// like the interpreter.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "script/compile.h"
#include "script/engine.h"

namespace pmp::script {

class Vm final : public Engine {
public:
    /// The registry must be fully populated before construction: builtin
    /// references are resolved here, once, not per call.
    Vm(std::shared_ptr<const CompiledUnit> unit, Sandbox sandbox,
       std::shared_ptr<const BuiltinRegistry> builtins);

    void run_top_level() override;

    bool has_function(std::string_view name) const override {
        return unit_->find_function(name) != nullptr;
    }

    rt::Value call(std::string_view name, rt::List args) override;

    const rt::Value* global(const std::string& name) const override;
    void set_global(const std::string& name, rt::Value value) override;

    const Sandbox& sandbox() const override { return sandbox_; }

    void set_step_observer(StepObserver fn) override { step_observer_ = std::move(fn); }
    std::uint64_t last_call_steps() const override { return last_call_steps_; }

    const CompiledUnit& unit() const { return *unit_; }

private:
    struct ResolvedBuiltin {
        const BuiltinRegistry::Entry* entry;  ///< nullptr: unknown function
        bool allowed;                         ///< capability verdict, precomputed
        const std::string* name;              ///< into unit_->builtin_names
    };

    struct Frame {
        const Chunk* chunk;
        std::size_t ip;
        std::size_t stack_base;        ///< operand-stack height at entry
        std::vector<rt::Value> slots;  ///< pooled; heap buffer is stable, so
                                       ///< lvalue pointers survive frame moves
        bool counts_depth;             ///< function frames count recursion
    };

    struct ArgLease;

    rt::Value invoke(const Chunk& chunk, rt::List args, bool counts_depth);
    rt::Value run(std::size_t entry_frames);
    void push_frame(const Chunk& chunk, std::size_t argc, bool counts_depth);
    void unwind(std::size_t entry_frames, std::size_t entry_stack,
                std::size_t entry_lstack);
    std::vector<rt::Value> acquire_slots(std::size_t n);
    void release_slots(std::vector<rt::Value> slots);
    rt::List& lease_args();

    std::shared_ptr<const CompiledUnit> unit_;
    Sandbox sandbox_;
    std::shared_ptr<const BuiltinRegistry> builtins_;
    std::vector<ResolvedBuiltin> resolved_;

    std::unordered_map<std::string, rt::Value> globals_;
    std::vector<rt::Value> stack_;    ///< operand stack, reused across calls
    std::vector<rt::Value*> lstack_;  ///< lvalue resolution stack
    std::vector<Frame> frames_;
    std::vector<std::vector<rt::Value>> slot_pool_;
    std::vector<std::unique_ptr<rt::List>> arg_pool_;  ///< stable refs under nesting
    std::size_t arg_pool_top_ = 0;

    std::uint64_t steps_ = 0;
    /// min(step budget, deadline): one compare on the tick fast path; past
    /// it, ops::tick_check picks the correct typed error.
    std::uint64_t step_limit_ = 0;
    std::uint64_t total_steps_ = 0;  ///< lifetime; never reset (accounting)
    std::uint64_t last_call_steps_ = 0;
    int call_nesting_ = 0;
    int depth_ = 0;
    StepObserver step_observer_;
};

}  // namespace pmp::script
