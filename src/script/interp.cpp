#include "script/interp.h"

#include <cmath>

#include "common/error.h"

namespace pmp::script {

using rt::Dict;
using rt::List;
using rt::Value;

// ----------------------------------------------------- BuiltinRegistry ----

void BuiltinRegistry::add(const std::string& name, const std::string& capability, Fn fn) {
    entries_[name] = Entry{capability, std::move(fn)};
}

const BuiltinRegistry::Entry* BuiltinRegistry::find(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
}

namespace {

[[noreturn]] void script_fail(const std::string& what, int line) {
    throw ScriptError(what + " (line " + std::to_string(line) + ")");
}

std::int64_t want_int(const Value& v, const char* what) {
    if (!v.is_int()) throw ScriptError(std::string(what) + " expects an int");
    return v.as_int();
}

const std::string& want_str(const Value& v, const char* what) {
    if (!v.is_str()) throw ScriptError(std::string(what) + " expects a str");
    return v.as_str();
}

/// Unquoted string rendering: strings print bare, everything else as
/// Value::to_string. This is what str(x) and string concatenation produce.
std::string display(const Value& v) {
    return v.is_str() ? v.as_str() : v.to_string();
}

}  // namespace

BuiltinRegistry BuiltinRegistry::with_core() {
    BuiltinRegistry reg;

    reg.add("len", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("len expects 1 arg");
        const Value& v = args[0];
        switch (v.kind()) {
            case Value::Kind::kStr: return Value{static_cast<std::int64_t>(v.as_str().size())};
            case Value::Kind::kBlob: return Value{static_cast<std::int64_t>(v.as_blob().size())};
            case Value::Kind::kList: return Value{static_cast<std::int64_t>(v.as_list().size())};
            case Value::Kind::kDict: return Value{static_cast<std::int64_t>(v.as_dict().size())};
            default: throw ScriptError("len expects str/blob/list/dict");
        }
    });

    reg.add("str", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("str expects 1 arg");
        return Value{display(args[0])};
    });

    reg.add("int", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("int expects 1 arg");
        const Value& v = args[0];
        if (v.is_int()) return v;
        if (v.is_real()) return Value{static_cast<std::int64_t>(v.as_real())};
        if (v.is_bool()) return Value{static_cast<std::int64_t>(v.as_bool() ? 1 : 0)};
        if (v.is_str()) {
            try {
                return Value{static_cast<std::int64_t>(std::stoll(v.as_str()))};
            } catch (...) {
                throw ScriptError("int: cannot parse '" + v.as_str() + "'");
            }
        }
        throw ScriptError("int expects a number, bool or str");
    });

    reg.add("real", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("real expects 1 arg");
        const Value& v = args[0];
        if (v.is_number()) return Value{v.as_real()};
        if (v.is_str()) {
            try {
                return Value{std::stod(v.as_str())};
            } catch (...) {
                throw ScriptError("real: cannot parse '" + v.as_str() + "'");
            }
        }
        throw ScriptError("real expects a number or str");
    });

    reg.add("typeof", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("typeof expects 1 arg");
        return Value{std::string(Value::kind_name(args[0].kind()))};
    });

    reg.add("push", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("push expects (list, value)");
        if (!args[0].is_list()) throw ScriptError("push expects a list");
        List out = args[0].as_list();
        out.push_back(args[1]);
        return Value{std::move(out)};
    });

    reg.add("concat", "", [](List& args) -> Value {
        List out;
        for (const Value& v : args) {
            if (!v.is_list()) throw ScriptError("concat expects lists");
            const List& l = v.as_list();
            out.insert(out.end(), l.begin(), l.end());
        }
        return Value{std::move(out)};
    });

    reg.add("slice", "", [](List& args) -> Value {
        if (args.size() != 3) throw ScriptError("slice expects (list, start, end)");
        if (!args[0].is_list()) throw ScriptError("slice expects a list");
        const List& l = args[0].as_list();
        auto clamp = [&](std::int64_t i) {
            if (i < 0) i = 0;
            if (i > static_cast<std::int64_t>(l.size())) i = static_cast<std::int64_t>(l.size());
            return static_cast<std::size_t>(i);
        };
        std::size_t start = clamp(want_int(args[1], "slice"));
        std::size_t end = clamp(want_int(args[2], "slice"));
        if (start > end) start = end;
        return Value{List(l.begin() + start, l.begin() + end)};
    });

    reg.add("keys", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_dict()) throw ScriptError("keys expects a dict");
        List out;
        for (const auto& [k, _] : args[0].as_dict()) out.push_back(Value{k});
        return Value{std::move(out)};
    });

    reg.add("contains", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("contains expects 2 args");
        const Value& c = args[0];
        if (c.is_list()) {
            for (const Value& v : c.as_list()) {
                if (v == args[1]) return Value{true};
            }
            return Value{false};
        }
        if (c.is_dict()) return Value{c.as_dict().contains(want_str(args[1], "contains"))};
        if (c.is_str()) {
            return Value{c.as_str().find(want_str(args[1], "contains")) != std::string::npos};
        }
        throw ScriptError("contains expects list/dict/str");
    });

    reg.add("remove", "", [](List& args) -> Value {
        if (args.size() != 2 || !args[0].is_dict()) throw ScriptError("remove expects (dict, key)");
        Dict out = args[0].as_dict();
        out.erase(want_str(args[1], "remove"));
        return Value{std::move(out)};
    });

    reg.add("range", "", [](List& args) -> Value {
        std::int64_t lo = 0, hi = 0;
        if (args.size() == 1) {
            hi = want_int(args[0], "range");
        } else if (args.size() == 2) {
            lo = want_int(args[0], "range");
            hi = want_int(args[1], "range");
        } else {
            throw ScriptError("range expects 1 or 2 args");
        }
        List out;
        for (std::int64_t i = lo; i < hi; ++i) out.push_back(Value{i});
        return Value{std::move(out)};
    });

    reg.add("abs", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_number()) throw ScriptError("abs expects a number");
        if (args[0].is_int()) return Value{args[0].as_int() < 0 ? -args[0].as_int() : args[0].as_int()};
        return Value{std::fabs(args[0].as_real())};
    });

    reg.add("min", "", [](List& args) -> Value {
        if (args.size() < 2) throw ScriptError("min expects >= 2 args");
        Value best = args[0];
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i].as_real() < best.as_real()) best = args[i];
        }
        return best;
    });

    reg.add("max", "", [](List& args) -> Value {
        if (args.size() < 2) throw ScriptError("max expects >= 2 args");
        Value best = args[0];
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i].as_real() > best.as_real()) best = args[i];
        }
        return best;
    });

    reg.add("floor", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_number()) throw ScriptError("floor expects a number");
        return Value{static_cast<std::int64_t>(std::floor(args[0].as_real()))};
    });

    reg.add("sqrt", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_number()) throw ScriptError("sqrt expects a number");
        return Value{std::sqrt(args[0].as_real())};
    });

    reg.add("substr", "", [](List& args) -> Value {
        if (args.size() != 3) throw ScriptError("substr expects (str, start, len)");
        const std::string& s = want_str(args[0], "substr");
        std::int64_t start = want_int(args[1], "substr");
        std::int64_t count = want_int(args[2], "substr");
        if (start < 0 || start > static_cast<std::int64_t>(s.size()) || count < 0) {
            throw ScriptError("substr out of range");
        }
        return Value{s.substr(static_cast<std::size_t>(start),
                              static_cast<std::size_t>(count))};
    });

    reg.add("find", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("find expects (str, needle)");
        auto pos = want_str(args[0], "find").find(want_str(args[1], "find"));
        return Value{pos == std::string::npos ? std::int64_t{-1}
                                              : static_cast<std::int64_t>(pos)};
    });

    reg.add("split", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("split expects (str, sep)");
        const std::string& s = want_str(args[0], "split");
        const std::string& sep = want_str(args[1], "split");
        if (sep.empty()) throw ScriptError("split separator must be non-empty");
        List out;
        std::size_t pos = 0;
        for (;;) {
            std::size_t next = s.find(sep, pos);
            if (next == std::string::npos) {
                out.push_back(Value{s.substr(pos)});
                return Value{std::move(out)};
            }
            out.push_back(Value{s.substr(pos, next - pos)});
            pos = next + sep.size();
        }
    });

    reg.add("join", "", [](List& args) -> Value {
        if (args.size() != 2 || !args[0].is_list()) throw ScriptError("join expects (list, sep)");
        const std::string& sep = want_str(args[1], "join");
        std::string out;
        const List& l = args[0].as_list();
        for (std::size_t i = 0; i < l.size(); ++i) {
            if (i) out += sep;
            out += display(l[i]);
        }
        return Value{std::move(out)};
    });

    return reg;
}

// --------------------------------------------------------- Interpreter ----

Interpreter::Interpreter(std::shared_ptr<const Program> program, Sandbox sandbox,
                         std::shared_ptr<const BuiltinRegistry> builtins)
    : program_(std::move(program)), sandbox_(std::move(sandbox)), builtins_(std::move(builtins)) {}

void Interpreter::tick(int line) {
    ++steps_;
    ++total_steps_;
    // The watchdog deadline is usually far tighter than the sandbox budget,
    // so check it first; both count from the same per-invocation steps_.
    if (sandbox_.deadline_steps != 0 && steps_ > sandbox_.deadline_steps) {
        throw DeadlineExceeded("advice overran its watchdog deadline at line " +
                               std::to_string(line));
    }
    if (steps_ > sandbox_.step_budget) {
        throw ResourceExhausted("script exceeded step budget at line " + std::to_string(line));
    }
}

void Interpreter::run_top_level() {
    steps_ = 0;
    // No scope is pushed here: with scopes_ empty, top-level `let`s land in
    // the globals map and persist across advice invocations.
    try {
        for (const auto& stmt : program_->top_level) exec(*stmt);
    } catch (ReturnSignal&) {
        throw ScriptError("'return' outside a function");
    } catch (BreakSignal&) {
        throw ScriptError("'break' outside a loop");
    } catch (ContinueSignal&) {
        throw ScriptError("'continue' outside a loop");
    }
}

rt::Value Interpreter::call(std::string_view name, rt::List args) {
    const FunctionDecl* fn = program_->find_function(name);
    if (!fn) throw ScriptError("no function '" + std::string(name) + "'");
    if (call_nesting_ > 0) {
        // Re-entrant call (host builtin calling back into script): one
        // invocation for budget purposes, so don't reset the meter and
        // don't report to the observer twice.
        return call_function(*fn, std::move(args));
    }
    steps_ = 0;
    const std::uint64_t before = total_steps_;
    ++call_nesting_;
    // Report on every exit path — a throwing invocation burned steps too,
    // and the governor must see them.
    struct Guard {
        Interpreter* self;
        std::uint64_t before;
        ~Guard() {
            --self->call_nesting_;
            self->last_call_steps_ = self->total_steps_ - before;
            if (self->step_observer_) self->step_observer_(self->last_call_steps_);
        }
    } guard{this, before};
    return call_function(*fn, std::move(args));
}

const Value* Interpreter::global(const std::string& name) const {
    auto it = globals_.vars.find(name);
    return it == globals_.vars.end() ? nullptr : &it->second;
}

void Interpreter::set_global(const std::string& name, Value value) {
    globals_.vars[name] = std::move(value);
}

Value Interpreter::call_function(const FunctionDecl& fn, List args) {
    if (args.size() != fn.params.size()) {
        throw ScriptError("function '" + fn.name + "' expects " +
                          std::to_string(fn.params.size()) + " args, got " +
                          std::to_string(args.size()));
    }
    if (++depth_ > sandbox_.max_recursion) {
        --depth_;
        throw ResourceExhausted("script recursion limit reached in '" + fn.name + "'");
    }

    // Fresh frame: functions see their locals and globals, not the caller's
    // locals.
    std::vector<Scope> saved = std::move(scopes_);
    scopes_.clear();
    scopes_.emplace_back();
    for (std::size_t i = 0; i < args.size(); ++i) {
        scopes_.back().vars[fn.params[i]] = std::move(args[i]);
    }

    Value result;
    try {
        exec_block(fn.body);
    } catch (ReturnSignal& ret) {
        result = std::move(ret.value);
    } catch (BreakSignal&) {
        // Control-flow signals must not escape a function body into the
        // caller's loops.
        scopes_ = std::move(saved);
        --depth_;
        throw ScriptError("'break' outside a loop in '" + fn.name + "'");
    } catch (ContinueSignal&) {
        scopes_ = std::move(saved);
        --depth_;
        throw ScriptError("'continue' outside a loop in '" + fn.name + "'");
    } catch (...) {
        scopes_ = std::move(saved);
        --depth_;
        throw;
    }
    scopes_ = std::move(saved);
    --depth_;
    return result;
}

Value* Interpreter::find_var(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto found = it->vars.find(name);
        if (found != it->vars.end()) return &found->second;
    }
    auto found = globals_.vars.find(name);
    return found == globals_.vars.end() ? nullptr : &found->second;
}

void Interpreter::exec_block(const std::vector<StmtPtr>& body) {
    scopes_.emplace_back();
    struct ScopeGuard {
        std::vector<Scope>& scopes;
        ~ScopeGuard() { scopes.pop_back(); }
    } guard{scopes_};
    for (const auto& stmt : body) exec(*stmt);
}

void Interpreter::exec(const Stmt& stmt) {
    tick(stmt.line);
    switch (stmt.kind) {
        case Stmt::Kind::kLet: {
            Value v = eval(*stmt.expr);
            // `let` declares in the innermost scope; at top level that is
            // the globals map so state survives across advice invocations.
            if (scopes_.empty()) {
                globals_.vars[stmt.name] = std::move(v);
            } else {
                scopes_.back().vars[stmt.name] = std::move(v);
            }
            return;
        }
        case Stmt::Kind::kAssign: {
            Value v = eval(*stmt.expr);
            Value* slot = resolve_lvalue(*stmt.target);
            *slot = std::move(v);
            return;
        }
        case Stmt::Kind::kExpr: eval(*stmt.expr); return;
        case Stmt::Kind::kIf:
            if (eval(*stmt.expr).truthy()) {
                exec_block(stmt.body);
            } else {
                exec_block(stmt.else_body);
            }
            return;
        case Stmt::Kind::kWhile:
            while (eval(*stmt.expr).truthy()) {
                try {
                    exec_block(stmt.body);
                } catch (BreakSignal&) {
                    break;
                } catch (ContinueSignal&) {
                    continue;
                }
            }
            return;
        case Stmt::Kind::kForIn: {
            Value iterable = eval(*stmt.expr);
            List items;
            if (iterable.is_list()) {
                items = iterable.as_list();
            } else if (iterable.is_dict()) {
                for (const auto& [k, _] : iterable.as_dict()) items.push_back(Value{k});
            } else {
                script_fail("for-in expects a list or dict", stmt.line);
            }
            for (Value& item : items) {
                scopes_.emplace_back();
                scopes_.back().vars[stmt.name] = std::move(item);
                struct ScopeGuard {
                    std::vector<Scope>& scopes;
                    ~ScopeGuard() { scopes.pop_back(); }
                } guard{scopes_};
                try {
                    for (const auto& inner : stmt.body) exec(*inner);
                } catch (BreakSignal&) {
                    break;
                } catch (ContinueSignal&) {
                    continue;
                }
            }
            return;
        }
        case Stmt::Kind::kReturn:
            throw ReturnSignal{stmt.expr ? eval(*stmt.expr) : Value{}};
        case Stmt::Kind::kBreak: throw BreakSignal{};
        case Stmt::Kind::kContinue: throw ContinueSignal{};
        case Stmt::Kind::kThrow:
            throw ScriptError(display(eval(*stmt.expr)) + " (line " +
                              std::to_string(stmt.line) + ")");
        case Stmt::Kind::kBlock: exec_block(stmt.body); return;
    }
}

Value* Interpreter::resolve_lvalue(const Expr& target) {
    switch (target.kind) {
        case Expr::Kind::kVar: {
            if (Value* v = find_var(target.name)) return v;
            script_fail("assignment to undeclared variable '" + target.name + "'",
                        target.line);
        }
        case Expr::Kind::kIndex: {
            Value* base = resolve_lvalue(*target.lhs);
            Value idx = eval(*target.rhs);
            if (base->is_list()) {
                List& l = base->as_list();
                std::int64_t i = want_int(idx, "index");
                if (i == static_cast<std::int64_t>(l.size())) {
                    l.push_back(Value{});  // l[len(l)] = v appends
                    return &l.back();
                }
                if (i < 0 || i > static_cast<std::int64_t>(l.size())) {
                    script_fail("list index " + std::to_string(i) + " out of range",
                                target.line);
                }
                return &l[static_cast<std::size_t>(i)];
            }
            if (base->is_dict()) {
                Dict& d = base->as_dict();
                const std::string& key = want_str(idx, "dict index");
                if (!d.contains(key)) d.set(key, Value{});
                // set() keeps the vector sorted; find() returns a stable
                // pointer valid until the next structural change.
                return const_cast<Value*>(d.find(key));
            }
            script_fail("cannot index into " + std::string(Value::kind_name(base->kind())),
                        target.line);
        }
        case Expr::Kind::kMember: {
            Value* base = resolve_lvalue(*target.lhs);
            if (!base->is_dict()) {
                script_fail("member assignment needs a dict", target.line);
            }
            Dict& d = base->as_dict();
            if (!d.contains(target.name)) d.set(target.name, Value{});
            return const_cast<Value*>(d.find(target.name));
        }
        default: script_fail("expression is not assignable", target.line);
    }
}

Value Interpreter::eval(const Expr& expr) {
    tick(expr.line);
    switch (expr.kind) {
        case Expr::Kind::kLiteral: return expr.literal;
        case Expr::Kind::kVar: {
            if (Value* v = find_var(expr.name)) return *v;
            script_fail("undefined variable '" + expr.name + "'", expr.line);
        }
        case Expr::Kind::kBinary: return eval_binary(expr);
        case Expr::Kind::kUnary: {
            Value v = eval(*expr.lhs);
            if (expr.un_op == UnOp::kNot) return Value{!v.truthy()};
            if (v.is_int()) return Value{-v.as_int()};
            if (v.is_real()) return Value{-v.as_real()};
            script_fail("unary '-' expects a number", expr.line);
        }
        case Expr::Kind::kCall: return eval_call(expr);
        case Expr::Kind::kIndex: {
            Value base = eval(*expr.lhs);
            Value idx = eval(*expr.rhs);
            if (base.is_list()) {
                const List& l = base.as_list();
                std::int64_t i = want_int(idx, "index");
                if (i < 0 || i >= static_cast<std::int64_t>(l.size())) {
                    script_fail("list index " + std::to_string(i) + " out of range",
                                expr.line);
                }
                return l[static_cast<std::size_t>(i)];
            }
            if (base.is_dict()) {
                const Value* v = base.as_dict().find(want_str(idx, "dict index"));
                return v ? *v : Value{};  // missing keys read as null
            }
            if (base.is_str()) {
                const std::string& s = base.as_str();
                std::int64_t i = want_int(idx, "index");
                if (i < 0 || i >= static_cast<std::int64_t>(s.size())) {
                    script_fail("string index out of range", expr.line);
                }
                return Value{std::string(1, s[static_cast<std::size_t>(i)])};
            }
            script_fail("cannot index into " + std::string(Value::kind_name(base.kind())),
                        expr.line);
        }
        case Expr::Kind::kMember: {
            Value base = eval(*expr.lhs);
            if (base.is_dict()) {
                const Value* v = base.as_dict().find(expr.name);
                return v ? *v : Value{};
            }
            script_fail("member access needs a dict", expr.line);
        }
        case Expr::Kind::kListLit: {
            List out;
            out.reserve(expr.args.size());
            for (const auto& a : expr.args) out.push_back(eval(*a));
            return Value{std::move(out)};
        }
        case Expr::Kind::kDictLit: {
            Dict out;
            for (const auto& [kexpr, vexpr] : expr.entries) {
                Value key = eval(*kexpr);
                out.set(want_str(key, "dict key"), eval(*vexpr));
            }
            return Value{std::move(out)};
        }
    }
    script_fail("internal: unknown expression kind", expr.line);
}

namespace {
bool numeric_pair(const Value& a, const Value& b) { return a.is_number() && b.is_number(); }
bool both_int(const Value& a, const Value& b) { return a.is_int() && b.is_int(); }
}  // namespace

Value Interpreter::eval_binary(const Expr& expr) {
    // Short-circuit forms first.
    if (expr.bin_op == BinOp::kAnd) {
        return Value{eval(*expr.lhs).truthy() && eval(*expr.rhs).truthy()};
    }
    if (expr.bin_op == BinOp::kOr) {
        return Value{eval(*expr.lhs).truthy() || eval(*expr.rhs).truthy()};
    }

    Value a = eval(*expr.lhs);
    Value b = eval(*expr.rhs);
    switch (expr.bin_op) {
        case BinOp::kAdd:
            if (both_int(a, b)) return Value{a.as_int() + b.as_int()};
            if (numeric_pair(a, b)) return Value{a.as_real() + b.as_real()};
            if (a.is_str() || b.is_str()) return Value{display(a) + display(b)};
            if (a.is_list() && b.is_list()) {
                List out = a.as_list();
                const List& more = b.as_list();
                out.insert(out.end(), more.begin(), more.end());
                return Value{std::move(out)};
            }
            script_fail("'+' expects numbers, strings or lists", expr.line);
        case BinOp::kSub:
            if (both_int(a, b)) return Value{a.as_int() - b.as_int()};
            if (numeric_pair(a, b)) return Value{a.as_real() - b.as_real()};
            script_fail("'-' expects numbers", expr.line);
        case BinOp::kMul:
            if (both_int(a, b)) return Value{a.as_int() * b.as_int()};
            if (numeric_pair(a, b)) return Value{a.as_real() * b.as_real()};
            script_fail("'*' expects numbers", expr.line);
        case BinOp::kDiv:
            if (both_int(a, b)) {
                if (b.as_int() == 0) script_fail("integer division by zero", expr.line);
                return Value{a.as_int() / b.as_int()};
            }
            if (numeric_pair(a, b)) {
                if (b.as_real() == 0.0) script_fail("division by zero", expr.line);
                return Value{a.as_real() / b.as_real()};
            }
            script_fail("'/' expects numbers", expr.line);
        case BinOp::kMod:
            if (both_int(a, b)) {
                if (b.as_int() == 0) script_fail("modulo by zero", expr.line);
                return Value{a.as_int() % b.as_int()};
            }
            script_fail("'%' expects ints", expr.line);
        case BinOp::kEq:
            if (numeric_pair(a, b)) return Value{a.as_real() == b.as_real()};
            return Value{a == b};
        case BinOp::kNe:
            if (numeric_pair(a, b)) return Value{a.as_real() != b.as_real()};
            return Value{!(a == b)};
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
            int cmp;
            if (numeric_pair(a, b)) {
                double da = a.as_real(), db = b.as_real();
                cmp = da < db ? -1 : (da > db ? 1 : 0);
            } else if (a.is_str() && b.is_str()) {
                cmp = a.as_str().compare(b.as_str());
                cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
            } else {
                script_fail("comparison expects two numbers or two strings", expr.line);
            }
            switch (expr.bin_op) {
                case BinOp::kLt: return Value{cmp < 0};
                case BinOp::kLe: return Value{cmp <= 0};
                case BinOp::kGt: return Value{cmp > 0};
                default: return Value{cmp >= 0};
            }
        }
        default: script_fail("internal: unknown binary op", expr.line);
    }
}

Value Interpreter::eval_call(const Expr& expr) {
    List args;
    args.reserve(expr.args.size());
    for (const auto& a : expr.args) args.push_back(eval(*a));

    // User-defined functions shadow builtins of the same (unqualified) name.
    if (const FunctionDecl* fn = program_->find_function(expr.name)) {
        return call_function(*fn, std::move(args));
    }
    if (const BuiltinRegistry::Entry* builtin = builtins_->find(expr.name)) {
        if (!sandbox_.allows(builtin->capability)) {
            throw AccessDenied("extension lacks capability '" + builtin->capability +
                               "' required by " + expr.name);
        }
        return builtin->fn(args);
    }
    script_fail("unknown function '" + expr.name + "'", expr.line);
}

}  // namespace pmp::script
