#include "script/interp.h"

#include "common/error.h"
#include "script/ops.h"

namespace pmp::script {

using ops::display;
using ops::script_fail;
using ops::want_str;
using rt::Dict;
using rt::List;
using rt::Value;

Interpreter::Interpreter(std::shared_ptr<const Program> program, Sandbox sandbox,
                         std::shared_ptr<const BuiltinRegistry> builtins)
    : program_(std::move(program)), sandbox_(std::move(sandbox)), builtins_(std::move(builtins)) {}

void Interpreter::tick(int line) {
    ++steps_;
    ++total_steps_;
    ops::tick_check(sandbox_, steps_, line);
}

void Interpreter::run_top_level() {
    steps_ = 0;
    // No scope is pushed here: with scopes_ empty, top-level `let`s land in
    // the globals map and persist across advice invocations.
    try {
        for (const auto& stmt : program_->top_level) exec(*stmt);
    } catch (ReturnSignal&) {
        throw ScriptError("'return' outside a function");
    } catch (BreakSignal&) {
        throw ScriptError("'break' outside a loop");
    } catch (ContinueSignal&) {
        throw ScriptError("'continue' outside a loop");
    }
}

rt::Value Interpreter::call(std::string_view name, rt::List args) {
    const FunctionDecl* fn = program_->find_function(name);
    if (!fn) throw ScriptError("no function '" + std::string(name) + "'");
    if (call_nesting_ > 0) {
        // Re-entrant call (host builtin calling back into script): one
        // invocation for budget purposes, so don't reset the meter and
        // don't report to the observer twice.
        return call_function(*fn, std::move(args));
    }
    steps_ = 0;
    const std::uint64_t before = total_steps_;
    ++call_nesting_;
    // Report on every exit path — a throwing invocation burned steps too,
    // and the governor must see them.
    struct Guard {
        Interpreter* self;
        std::uint64_t before;
        ~Guard() {
            --self->call_nesting_;
            self->last_call_steps_ = self->total_steps_ - before;
            if (self->step_observer_) self->step_observer_(self->last_call_steps_);
        }
    } guard{this, before};
    return call_function(*fn, std::move(args));
}

const Value* Interpreter::global(const std::string& name) const {
    auto it = globals_.vars.find(name);
    return it == globals_.vars.end() ? nullptr : &it->second;
}

void Interpreter::set_global(const std::string& name, Value value) {
    globals_.vars[name] = std::move(value);
}

Value Interpreter::call_function(const FunctionDecl& fn, List args) {
    if (args.size() != fn.params.size()) {
        throw ScriptError("function '" + fn.name + "' expects " +
                          std::to_string(fn.params.size()) + " args, got " +
                          std::to_string(args.size()));
    }
    if (++depth_ > sandbox_.max_recursion) {
        --depth_;
        throw ResourceExhausted("script recursion limit reached in '" + fn.name + "'");
    }

    // Fresh frame: functions see their locals and globals, not the caller's
    // locals.
    std::vector<Scope> saved = std::move(scopes_);
    scopes_.clear();
    scopes_.emplace_back();
    for (std::size_t i = 0; i < args.size(); ++i) {
        scopes_.back().vars[fn.params[i]] = std::move(args[i]);
    }

    Value result;
    try {
        exec_block(fn.body);
    } catch (ReturnSignal& ret) {
        result = std::move(ret.value);
    } catch (BreakSignal&) {
        // Control-flow signals must not escape a function body into the
        // caller's loops.
        scopes_ = std::move(saved);
        --depth_;
        throw ScriptError("'break' outside a loop in '" + fn.name + "'");
    } catch (ContinueSignal&) {
        scopes_ = std::move(saved);
        --depth_;
        throw ScriptError("'continue' outside a loop in '" + fn.name + "'");
    } catch (...) {
        scopes_ = std::move(saved);
        --depth_;
        throw;
    }
    scopes_ = std::move(saved);
    --depth_;
    return result;
}

Value* Interpreter::find_var(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto found = it->vars.find(name);
        if (found != it->vars.end()) return &found->second;
    }
    auto found = globals_.vars.find(name);
    return found == globals_.vars.end() ? nullptr : &found->second;
}

void Interpreter::exec_block(const std::vector<StmtPtr>& body) {
    scopes_.emplace_back();
    struct ScopeGuard {
        std::vector<Scope>& scopes;
        ~ScopeGuard() { scopes.pop_back(); }
    } guard{scopes_};
    for (const auto& stmt : body) exec(*stmt);
}

void Interpreter::exec(const Stmt& stmt) {
    tick(stmt.line);
    switch (stmt.kind) {
        case Stmt::Kind::kLet: {
            Value v = eval(*stmt.expr);
            // `let` declares in the innermost scope; at top level that is
            // the globals map so state survives across advice invocations.
            if (scopes_.empty()) {
                globals_.vars[stmt.name] = std::move(v);
            } else {
                scopes_.back().vars[stmt.name] = std::move(v);
            }
            return;
        }
        case Stmt::Kind::kAssign: {
            Value v = eval(*stmt.expr);
            Value* slot = resolve_lvalue(*stmt.target);
            *slot = std::move(v);
            return;
        }
        case Stmt::Kind::kExpr: eval(*stmt.expr); return;
        case Stmt::Kind::kIf:
            if (eval(*stmt.expr).truthy()) {
                exec_block(stmt.body);
            } else {
                exec_block(stmt.else_body);
            }
            return;
        case Stmt::Kind::kWhile:
            while (eval(*stmt.expr).truthy()) {
                try {
                    exec_block(stmt.body);
                } catch (BreakSignal&) {
                    break;
                } catch (ContinueSignal&) {
                    continue;
                }
            }
            return;
        case Stmt::Kind::kForIn: {
            List items = ops::foreach_items(eval(*stmt.expr), stmt.line);
            for (Value& item : items) {
                scopes_.emplace_back();
                scopes_.back().vars[stmt.name] = std::move(item);
                struct ScopeGuard {
                    std::vector<Scope>& scopes;
                    ~ScopeGuard() { scopes.pop_back(); }
                } guard{scopes_};
                try {
                    for (const auto& inner : stmt.body) exec(*inner);
                } catch (BreakSignal&) {
                    break;
                } catch (ContinueSignal&) {
                    continue;
                }
            }
            return;
        }
        case Stmt::Kind::kReturn:
            throw ReturnSignal{stmt.expr ? eval(*stmt.expr) : Value{}};
        case Stmt::Kind::kBreak: throw BreakSignal{};
        case Stmt::Kind::kContinue: throw ContinueSignal{};
        case Stmt::Kind::kThrow:
            throw ScriptError(display(eval(*stmt.expr)) + " (line " +
                              std::to_string(stmt.line) + ")");
        case Stmt::Kind::kBlock: exec_block(stmt.body); return;
    }
}

Value* Interpreter::resolve_lvalue(const Expr& target) {
    switch (target.kind) {
        case Expr::Kind::kVar: {
            if (Value* v = find_var(target.name)) return v;
            script_fail("assignment to undeclared variable '" + target.name + "'",
                        target.line);
        }
        case Expr::Kind::kIndex: {
            Value* base = resolve_lvalue(*target.lhs);
            Value idx = eval(*target.rhs);
            return ops::lval_index(base, idx, target.line);
        }
        case Expr::Kind::kMember: {
            Value* base = resolve_lvalue(*target.lhs);
            return ops::lval_member(base, target.name, target.line);
        }
        default: script_fail("expression is not assignable", target.line);
    }
}

Value Interpreter::eval(const Expr& expr) {
    tick(expr.line);
    switch (expr.kind) {
        case Expr::Kind::kLiteral: return expr.literal;
        case Expr::Kind::kVar: {
            if (Value* v = find_var(expr.name)) return *v;
            script_fail("undefined variable '" + expr.name + "'", expr.line);
        }
        case Expr::Kind::kBinary: return eval_binary(expr);
        case Expr::Kind::kUnary: {
            Value v = eval(*expr.lhs);
            if (expr.un_op == UnOp::kNot) return Value{!v.truthy()};
            return ops::negate(v, expr.line);
        }
        case Expr::Kind::kCall: return eval_call(expr);
        case Expr::Kind::kIndex: {
            Value base = eval(*expr.lhs);
            Value idx = eval(*expr.rhs);
            return ops::index_get(base, idx, expr.line);
        }
        case Expr::Kind::kMember: {
            Value base = eval(*expr.lhs);
            return ops::member_get(base, expr.name, expr.line);
        }
        case Expr::Kind::kListLit: {
            List out;
            out.reserve(expr.args.size());
            for (const auto& a : expr.args) out.push_back(eval(*a));
            return Value{std::move(out)};
        }
        case Expr::Kind::kDictLit: {
            Dict out;
            for (const auto& [kexpr, vexpr] : expr.entries) {
                // Fixed evaluation order (key, key check, value): both
                // engines must agree, and unspecified C++ argument order
                // must not decide which error a bad entry raises.
                Value key = eval(*kexpr);
                const std::string& k = want_str(key, "dict key");
                out.set(k, eval(*vexpr));
            }
            return Value{std::move(out)};
        }
    }
    script_fail("internal: unknown expression kind", expr.line);
}

Value Interpreter::eval_binary(const Expr& expr) {
    // Short-circuit forms first.
    if (expr.bin_op == BinOp::kAnd) {
        return Value{eval(*expr.lhs).truthy() && eval(*expr.rhs).truthy()};
    }
    if (expr.bin_op == BinOp::kOr) {
        return Value{eval(*expr.lhs).truthy() || eval(*expr.rhs).truthy()};
    }

    Value a = eval(*expr.lhs);
    Value b = eval(*expr.rhs);
    return ops::binary(expr.bin_op, a, b, expr.line);
}

Value Interpreter::eval_call(const Expr& expr) {
    List args;
    args.reserve(expr.args.size());
    for (const auto& a : expr.args) args.push_back(eval(*a));

    // User-defined functions shadow builtins of the same (unqualified) name.
    if (const FunctionDecl* fn = program_->find_function(expr.name)) {
        return call_function(*fn, std::move(args));
    }
    if (const BuiltinRegistry::Entry* builtin = builtins_->find(expr.name)) {
        if (!sandbox_.allows(builtin->capability)) {
            throw AccessDenied("extension lacks capability '" + builtin->capability +
                               "' required by " + expr.name);
        }
        return builtin->fn(args);
    }
    script_fail("unknown function '" + expr.name + "'", expr.line);
}

}  // namespace pmp::script
