// Static checking of AdviceScript programs.
//
// Extension code arrives over the radio and runs inside other people's
// applications; a receiver wants to reject broken code at *install* time
// with a precise message, not at the first interception with a run-time
// fault. The checker performs the analyses that need no execution:
//
//   * references to variables that can never be defined at that point
//     (mirrors the interpreter's scoping exactly, including the rule that
//     only top-level `let`s create globals)
//   * calls to functions that are neither user-defined nor registered
//     builtins, and wrong arity for user-defined functions
//   * assignment to names never declared
//   * duplicate function names and duplicate parameters
//   * break/continue outside a loop
//   * unreachable statements after return/break/continue/throw
//
// The checker is advisory by design (it must never reject a program the
// interpreter would run), so it reports diagnostics instead of throwing.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "script/ast.h"
#include "script/interp.h"

namespace pmp::script {

struct Diagnostic {
    int line = 0;
    std::string message;
};

/// Analyse `program` against the builtins the host will provide.
/// `predefined` names count as globals (e.g. "config", which the receiver
/// injects before the top level runs). Returns diagnostics, empty if clean.
std::vector<Diagnostic> check(const Program& program, const BuiltinRegistry& builtins,
                              const std::set<std::string>& predefined = {"config"});

/// Render diagnostics as one human-readable block (for rejection messages).
std::string format_diagnostics(const std::vector<Diagnostic>& diagnostics);

}  // namespace pmp::script
