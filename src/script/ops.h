// Shared AdviceScript evaluation semantics.
//
// Every semantic decision an engine makes at runtime — arithmetic and
// comparison rules, index/member access, lvalue resolution, budget
// enforcement, error message formatting — lives here, so the tree-walking
// Interpreter and the bytecode Vm cannot drift apart. The differential
// property suite asserts the two engines are observably identical; this
// module is what makes that a structural guarantee rather than a test
// fixture's hope.
#pragma once

#include <cstdint>
#include <string>

#include "script/ast.h"
#include "script/sandbox.h"

namespace pmp::script::ops {

/// Throw ScriptError("<what> (line <line>)").
[[noreturn]] void script_fail(const std::string& what, int line);

std::int64_t want_int(const rt::Value& v, const char* what);
const std::string& want_str(const rt::Value& v, const char* what);

/// Unquoted string rendering: strings print bare, everything else as
/// Value::to_string. This is what str(x) and string concatenation produce.
std::string display(const rt::Value& v);

/// Per-step budget enforcement: watchdog deadline first (usually far
/// tighter than the sandbox budget), then the step budget. Both count
/// from the same per-invocation step counter.
void tick_check(const Sandbox& sandbox, std::uint64_t steps, int line);

/// Non-short-circuit binary operators (everything except And/Or, which
/// engines implement via control flow). May consume `a`/`b`.
rt::Value binary(BinOp op, rt::Value& a, rt::Value& b, int line);

/// Unary '-' (unary '!' is just !truthy()).
rt::Value negate(const rt::Value& v, int line);

/// Rvalue `base[idx]` with list/dict/str semantics.
rt::Value index_get(const rt::Value& base, const rt::Value& idx, int line);

/// Rvalue `base.name` (missing dict keys read as null).
rt::Value member_get(const rt::Value& base, const std::string& name, int line);

/// Lvalue `(*base)[idx]`: lists append at exactly len, dicts create the
/// missing key. The returned pointer is stable until the next structural
/// change to the container.
rt::Value* lval_index(rt::Value* base, const rt::Value& idx, int line);

/// Lvalue `(*base).name`: dict required, missing key created.
rt::Value* lval_member(rt::Value* base, const std::string& name, int line);

/// Materialize a for-in iterable: a list is copied, a dict yields its
/// keys (already sorted), anything else fails.
rt::List foreach_items(rt::Value iterable, int line);

}  // namespace pmp::script::ops
