#include "script/sandbox.h"

#include <cmath>

#include "common/error.h"
#include "script/ops.h"

namespace pmp::script {

using ops::display;
using ops::want_int;
using ops::want_str;
using rt::Dict;
using rt::List;
using rt::Value;

void BuiltinRegistry::add(const std::string& name, const std::string& capability, Fn fn) {
    entries_[name] = Entry{capability, std::move(fn)};
}

const BuiltinRegistry::Entry* BuiltinRegistry::find(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
}

BuiltinRegistry BuiltinRegistry::with_core() {
    BuiltinRegistry reg;

    reg.add("len", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("len expects 1 arg");
        const Value& v = args[0];
        switch (v.kind()) {
            case Value::Kind::kStr: return Value{static_cast<std::int64_t>(v.as_str().size())};
            case Value::Kind::kBlob: return Value{static_cast<std::int64_t>(v.as_blob().size())};
            case Value::Kind::kList: return Value{static_cast<std::int64_t>(v.as_list().size())};
            case Value::Kind::kDict: return Value{static_cast<std::int64_t>(v.as_dict().size())};
            default: throw ScriptError("len expects str/blob/list/dict");
        }
    });

    reg.add("str", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("str expects 1 arg");
        return Value{display(args[0])};
    });

    reg.add("int", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("int expects 1 arg");
        const Value& v = args[0];
        if (v.is_int()) return v;
        if (v.is_real()) return Value{static_cast<std::int64_t>(v.as_real())};
        if (v.is_bool()) return Value{static_cast<std::int64_t>(v.as_bool() ? 1 : 0)};
        if (v.is_str()) {
            try {
                return Value{static_cast<std::int64_t>(std::stoll(v.as_str()))};
            } catch (...) {
                throw ScriptError("int: cannot parse '" + v.as_str() + "'");
            }
        }
        throw ScriptError("int expects a number, bool or str");
    });

    reg.add("real", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("real expects 1 arg");
        const Value& v = args[0];
        if (v.is_number()) return Value{v.as_real()};
        if (v.is_str()) {
            try {
                return Value{std::stod(v.as_str())};
            } catch (...) {
                throw ScriptError("real: cannot parse '" + v.as_str() + "'");
            }
        }
        throw ScriptError("real expects a number or str");
    });

    reg.add("typeof", "", [](List& args) -> Value {
        if (args.size() != 1) throw ScriptError("typeof expects 1 arg");
        return Value{std::string(Value::kind_name(args[0].kind()))};
    });

    reg.add("push", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("push expects (list, value)");
        if (!args[0].is_list()) throw ScriptError("push expects a list");
        List out = args[0].as_list();
        out.push_back(args[1]);
        return Value{std::move(out)};
    });

    reg.add("concat", "", [](List& args) -> Value {
        List out;
        for (const Value& v : args) {
            if (!v.is_list()) throw ScriptError("concat expects lists");
            const List& l = v.as_list();
            out.insert(out.end(), l.begin(), l.end());
        }
        return Value{std::move(out)};
    });

    reg.add("slice", "", [](List& args) -> Value {
        if (args.size() != 3) throw ScriptError("slice expects (list, start, end)");
        if (!args[0].is_list()) throw ScriptError("slice expects a list");
        const List& l = args[0].as_list();
        auto clamp = [&](std::int64_t i) {
            if (i < 0) i = 0;
            if (i > static_cast<std::int64_t>(l.size())) i = static_cast<std::int64_t>(l.size());
            return static_cast<std::size_t>(i);
        };
        std::size_t start = clamp(want_int(args[1], "slice"));
        std::size_t end = clamp(want_int(args[2], "slice"));
        if (start > end) start = end;
        return Value{List(l.begin() + start, l.begin() + end)};
    });

    reg.add("keys", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_dict()) throw ScriptError("keys expects a dict");
        List out;
        for (const auto& [k, _] : args[0].as_dict()) out.push_back(Value{k});
        return Value{std::move(out)};
    });

    reg.add("contains", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("contains expects 2 args");
        const Value& c = args[0];
        if (c.is_list()) {
            for (const Value& v : c.as_list()) {
                if (v == args[1]) return Value{true};
            }
            return Value{false};
        }
        if (c.is_dict()) return Value{c.as_dict().contains(want_str(args[1], "contains"))};
        if (c.is_str()) {
            return Value{c.as_str().find(want_str(args[1], "contains")) != std::string::npos};
        }
        throw ScriptError("contains expects list/dict/str");
    });

    reg.add("remove", "", [](List& args) -> Value {
        if (args.size() != 2 || !args[0].is_dict()) throw ScriptError("remove expects (dict, key)");
        Dict out = args[0].as_dict();
        out.erase(want_str(args[1], "remove"));
        return Value{std::move(out)};
    });

    reg.add("range", "", [](List& args) -> Value {
        std::int64_t lo = 0, hi = 0;
        if (args.size() == 1) {
            hi = want_int(args[0], "range");
        } else if (args.size() == 2) {
            lo = want_int(args[0], "range");
            hi = want_int(args[1], "range");
        } else {
            throw ScriptError("range expects 1 or 2 args");
        }
        List out;
        for (std::int64_t i = lo; i < hi; ++i) out.push_back(Value{i});
        return Value{std::move(out)};
    });

    reg.add("abs", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_number()) throw ScriptError("abs expects a number");
        if (args[0].is_int()) return Value{args[0].as_int() < 0 ? -args[0].as_int() : args[0].as_int()};
        return Value{std::fabs(args[0].as_real())};
    });

    reg.add("min", "", [](List& args) -> Value {
        if (args.size() < 2) throw ScriptError("min expects >= 2 args");
        Value best = args[0];
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i].as_real() < best.as_real()) best = args[i];
        }
        return best;
    });

    reg.add("max", "", [](List& args) -> Value {
        if (args.size() < 2) throw ScriptError("max expects >= 2 args");
        Value best = args[0];
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i].as_real() > best.as_real()) best = args[i];
        }
        return best;
    });

    reg.add("floor", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_number()) throw ScriptError("floor expects a number");
        return Value{static_cast<std::int64_t>(std::floor(args[0].as_real()))};
    });

    reg.add("sqrt", "", [](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_number()) throw ScriptError("sqrt expects a number");
        return Value{std::sqrt(args[0].as_real())};
    });

    reg.add("substr", "", [](List& args) -> Value {
        if (args.size() != 3) throw ScriptError("substr expects (str, start, len)");
        const std::string& s = want_str(args[0], "substr");
        std::int64_t start = want_int(args[1], "substr");
        std::int64_t count = want_int(args[2], "substr");
        if (start < 0 || start > static_cast<std::int64_t>(s.size()) || count < 0) {
            throw ScriptError("substr out of range");
        }
        return Value{s.substr(static_cast<std::size_t>(start),
                              static_cast<std::size_t>(count))};
    });

    reg.add("find", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("find expects (str, needle)");
        auto pos = want_str(args[0], "find").find(want_str(args[1], "find"));
        return Value{pos == std::string::npos ? std::int64_t{-1}
                                              : static_cast<std::int64_t>(pos)};
    });

    reg.add("split", "", [](List& args) -> Value {
        if (args.size() != 2) throw ScriptError("split expects (str, sep)");
        const std::string& s = want_str(args[0], "split");
        const std::string& sep = want_str(args[1], "split");
        if (sep.empty()) throw ScriptError("split separator must be non-empty");
        List out;
        std::size_t pos = 0;
        for (;;) {
            std::size_t next = s.find(sep, pos);
            if (next == std::string::npos) {
                out.push_back(Value{s.substr(pos)});
                return Value{std::move(out)};
            }
            out.push_back(Value{s.substr(pos, next - pos)});
            pos = next + sep.size();
        }
    });

    reg.add("join", "", [](List& args) -> Value {
        if (args.size() != 2 || !args[0].is_list()) throw ScriptError("join expects (list, sep)");
        const std::string& sep = want_str(args[1], "join");
        std::string out;
        const List& l = args[0].as_list();
        for (std::size_t i = 0; i < l.size(); ++i) {
            if (i) out += sep;
            out += display(l[i]);
        }
        return Value{std::move(out)};
    });

    return reg;
}

}  // namespace pmp::script
