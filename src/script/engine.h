// The AdviceScript execution-engine contract.
//
// Two engines implement it: the tree-walking Interpreter (the reference
// semantics) and the bytecode Vm (the compiled hot path). They are
// observably identical — same results, same typed errors with the same
// messages, same step accounting — which the differential property suite
// enforces. Hosts (ScriptAspect, the MIDAS receiver, tests) program
// against this interface so the engine is a deployment choice, not an
// API fork.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "rt/value.h"
#include "script/sandbox.h"

namespace pmp::script {

/// Which engine a host should construct for a program.
enum class EngineMode {
    kVm,           ///< compiled bytecode (default; the hot path)
    kInterpreter,  ///< tree-walking reference implementation
};

class Engine {
public:
    virtual ~Engine() = default;

    /// Execute top-level statements (global `let`s etc.). Call once.
    virtual void run_top_level() = 0;

    virtual bool has_function(std::string_view name) const = 0;

    /// Invoke a named function. Throws ScriptError for script faults,
    /// AccessDenied for capability violations, ResourceExhausted for
    /// budget overruns, DeadlineExceeded for watchdog overruns.
    virtual rt::Value call(std::string_view name, rt::List args) = 0;

    /// Read/write a global (tests and host glue).
    virtual const rt::Value* global(const std::string& name) const = 0;
    virtual void set_global(const std::string& name, rt::Value value) = 0;

    virtual const Sandbox& sandbox() const = 0;

    /// Fired once per *outermost* call() with the number of steps that
    /// invocation consumed — including on throw, so runaway invocations
    /// are charged too. The MIDAS receiver's resource governor hangs its
    /// cumulative per-lease-window accounting here. The observer runs
    /// inside the engine's unwind path and must not throw.
    using StepObserver = std::function<void(std::uint64_t steps)>;
    virtual void set_step_observer(StepObserver fn) = 0;

    /// Steps consumed by the most recent outermost call().
    virtual std::uint64_t last_call_steps() const = 0;
};

}  // namespace pmp::script
