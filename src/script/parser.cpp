#include "script/parser.h"

#include "common/error.h"
#include "script/token.h"

namespace pmp::script {

namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Program run() {
        Program prog;
        while (!at(Tok::kEof)) {
            if (at(Tok::kFun)) {
                prog.functions.push_back(fundecl());
            } else {
                prog.top_level.push_back(stmt());
            }
        }
        return prog;
    }

private:
    const Token& cur() const { return tokens_[pos_]; }
    bool at(Tok kind) const { return cur().kind == kind; }

    [[noreturn]] void fail(const std::string& what) const {
        throw ParseError(what + " (found " + token_name(cur().kind) + ")", cur().line,
                         cur().column);
    }

    Token eat(Tok kind, const char* what) {
        if (!at(kind)) fail(std::string("expected ") + what);
        return tokens_[pos_++];
    }

    bool eat_if(Tok kind) {
        if (at(kind)) {
            ++pos_;
            return true;
        }
        return false;
    }

    ExprPtr make_expr(Expr::Kind kind) {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = cur().line;
        return e;
    }

    StmtPtr make_stmt(Stmt::Kind kind) {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = cur().line;
        return s;
    }

    // ------------------------------------------------------ declarations --

    FunctionDecl fundecl() {
        FunctionDecl fn;
        fn.line = cur().line;
        eat(Tok::kFun, "'fun'");
        fn.name = eat(Tok::kIdent, "function name").text;
        eat(Tok::kLParen, "'('");
        if (!at(Tok::kRParen)) {
            do {
                fn.params.push_back(eat(Tok::kIdent, "parameter name").text);
            } while (eat_if(Tok::kComma));
        }
        eat(Tok::kRParen, "')'");
        fn.body = block();
        return fn;
    }

    std::vector<StmtPtr> block() {
        eat(Tok::kLBrace, "'{'");
        std::vector<StmtPtr> body;
        while (!at(Tok::kRBrace)) {
            if (at(Tok::kEof)) fail("unterminated block");
            body.push_back(stmt());
        }
        eat(Tok::kRBrace, "'}'");
        return body;
    }

    // -------------------------------------------------------- statements --

    StmtPtr stmt() {
        switch (cur().kind) {
            case Tok::kLet: return let_stmt();
            case Tok::kIf: return if_stmt();
            case Tok::kWhile: return while_stmt();
            case Tok::kFor: return for_stmt();
            case Tok::kReturn: return return_stmt();
            case Tok::kBreak: {
                auto s = make_stmt(Stmt::Kind::kBreak);
                ++pos_;
                eat(Tok::kSemi, "';'");
                return s;
            }
            case Tok::kContinue: {
                auto s = make_stmt(Stmt::Kind::kContinue);
                ++pos_;
                eat(Tok::kSemi, "';'");
                return s;
            }
            case Tok::kThrow: {
                auto s = make_stmt(Stmt::Kind::kThrow);
                ++pos_;
                s->expr = expr();
                eat(Tok::kSemi, "';'");
                return s;
            }
            case Tok::kLBrace: {
                auto s = make_stmt(Stmt::Kind::kBlock);
                s->body = block();
                return s;
            }
            default: return expr_or_assign_stmt();
        }
    }

    StmtPtr let_stmt() {
        auto s = make_stmt(Stmt::Kind::kLet);
        eat(Tok::kLet, "'let'");
        s->name = eat(Tok::kIdent, "variable name").text;
        eat(Tok::kAssign, "'='");
        s->expr = expr();
        eat(Tok::kSemi, "';'");
        return s;
    }

    StmtPtr if_stmt() {
        auto s = make_stmt(Stmt::Kind::kIf);
        eat(Tok::kIf, "'if'");
        eat(Tok::kLParen, "'('");
        s->expr = expr();
        eat(Tok::kRParen, "')'");
        s->body = block();
        if (eat_if(Tok::kElse)) {
            if (at(Tok::kIf)) {
                s->else_body.push_back(if_stmt());
            } else {
                s->else_body = block();
            }
        }
        return s;
    }

    StmtPtr while_stmt() {
        auto s = make_stmt(Stmt::Kind::kWhile);
        eat(Tok::kWhile, "'while'");
        eat(Tok::kLParen, "'('");
        s->expr = expr();
        eat(Tok::kRParen, "')'");
        s->body = block();
        return s;
    }

    StmtPtr for_stmt() {
        auto s = make_stmt(Stmt::Kind::kForIn);
        eat(Tok::kFor, "'for'");
        eat(Tok::kLParen, "'('");
        s->name = eat(Tok::kIdent, "loop variable").text;
        eat(Tok::kIn, "'in'");
        s->expr = expr();
        eat(Tok::kRParen, "')'");
        s->body = block();
        return s;
    }

    StmtPtr return_stmt() {
        auto s = make_stmt(Stmt::Kind::kReturn);
        eat(Tok::kReturn, "'return'");
        if (!at(Tok::kSemi)) s->expr = expr();
        eat(Tok::kSemi, "';'");
        return s;
    }

    StmtPtr expr_or_assign_stmt() {
        ExprPtr first = expr();
        if (eat_if(Tok::kAssign)) {
            if (first->kind != Expr::Kind::kVar && first->kind != Expr::Kind::kIndex &&
                first->kind != Expr::Kind::kMember) {
                fail("left side of '=' is not assignable");
            }
            auto s = make_stmt(Stmt::Kind::kAssign);
            s->target = std::move(first);
            s->expr = expr();
            eat(Tok::kSemi, "';'");
            return s;
        }
        auto s = make_stmt(Stmt::Kind::kExpr);
        s->expr = std::move(first);
        eat(Tok::kSemi, "';'");
        return s;
    }

    // ------------------------------------------------------- expressions --

    ExprPtr expr() { return or_expr(); }

    ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kBinary;
        e->line = lhs->line;
        e->bin_op = op;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        return e;
    }

    ExprPtr or_expr() {
        ExprPtr lhs = and_expr();
        while (eat_if(Tok::kOrOr)) lhs = binary(BinOp::kOr, std::move(lhs), and_expr());
        return lhs;
    }

    ExprPtr and_expr() {
        ExprPtr lhs = cmp_expr();
        while (eat_if(Tok::kAndAnd)) lhs = binary(BinOp::kAnd, std::move(lhs), cmp_expr());
        return lhs;
    }

    ExprPtr cmp_expr() {
        ExprPtr lhs = sum_expr();
        BinOp op;
        switch (cur().kind) {
            case Tok::kEq: op = BinOp::kEq; break;
            case Tok::kNe: op = BinOp::kNe; break;
            case Tok::kLt: op = BinOp::kLt; break;
            case Tok::kLe: op = BinOp::kLe; break;
            case Tok::kGt: op = BinOp::kGt; break;
            case Tok::kGe: op = BinOp::kGe; break;
            default: return lhs;
        }
        ++pos_;
        return binary(op, std::move(lhs), sum_expr());
    }

    ExprPtr sum_expr() {
        ExprPtr lhs = term_expr();
        for (;;) {
            if (eat_if(Tok::kPlus)) {
                lhs = binary(BinOp::kAdd, std::move(lhs), term_expr());
            } else if (eat_if(Tok::kMinus)) {
                lhs = binary(BinOp::kSub, std::move(lhs), term_expr());
            } else {
                return lhs;
            }
        }
    }

    ExprPtr term_expr() {
        ExprPtr lhs = unary_expr();
        for (;;) {
            if (eat_if(Tok::kStar)) {
                lhs = binary(BinOp::kMul, std::move(lhs), unary_expr());
            } else if (eat_if(Tok::kSlash)) {
                lhs = binary(BinOp::kDiv, std::move(lhs), unary_expr());
            } else if (eat_if(Tok::kPercent)) {
                lhs = binary(BinOp::kMod, std::move(lhs), unary_expr());
            } else {
                return lhs;
            }
        }
    }

    ExprPtr unary_expr() {
        if (at(Tok::kMinus) || at(Tok::kBang)) {
            auto e = make_expr(Expr::Kind::kUnary);
            e->un_op = at(Tok::kMinus) ? UnOp::kNeg : UnOp::kNot;
            ++pos_;
            e->lhs = unary_expr();
            return e;
        }
        return postfix_expr();
    }

    ExprPtr postfix_expr() {
        ExprPtr e = primary_expr();
        for (;;) {
            if (at(Tok::kLParen)) {
                // Call: the callee must be a plain name or ns.name chain.
                std::string callee;
                if (e->kind == Expr::Kind::kVar) {
                    callee = e->name;
                } else if (e->kind == Expr::Kind::kMember &&
                           e->lhs->kind == Expr::Kind::kVar) {
                    callee = e->lhs->name + "." + e->name;
                } else {
                    fail("only named functions can be called");
                }
                auto call = make_expr(Expr::Kind::kCall);
                call->name = std::move(callee);
                call->line = e->line;
                ++pos_;  // '('
                if (!at(Tok::kRParen)) {
                    do {
                        call->args.push_back(expr());
                    } while (eat_if(Tok::kComma));
                }
                eat(Tok::kRParen, "')'");
                e = std::move(call);
            } else if (eat_if(Tok::kLBracket)) {
                auto idx = std::make_unique<Expr>();
                idx->kind = Expr::Kind::kIndex;
                idx->line = e->line;
                idx->lhs = std::move(e);
                idx->rhs = expr();
                eat(Tok::kRBracket, "']'");
                e = std::move(idx);
            } else if (eat_if(Tok::kDot)) {
                auto mem = std::make_unique<Expr>();
                mem->kind = Expr::Kind::kMember;
                mem->line = e->line;
                mem->name = eat(Tok::kIdent, "member name").text;
                mem->lhs = std::move(e);
                e = std::move(mem);
            } else {
                return e;
            }
        }
    }

    ExprPtr primary_expr() {
        switch (cur().kind) {
            case Tok::kInt: {
                auto e = make_expr(Expr::Kind::kLiteral);
                e->literal = rt::Value{tokens_[pos_++].int_val};
                return e;
            }
            case Tok::kReal: {
                auto e = make_expr(Expr::Kind::kLiteral);
                e->literal = rt::Value{tokens_[pos_++].real_val};
                return e;
            }
            case Tok::kStr: {
                auto e = make_expr(Expr::Kind::kLiteral);
                e->literal = rt::Value{tokens_[pos_++].text};
                return e;
            }
            case Tok::kTrue: {
                auto e = make_expr(Expr::Kind::kLiteral);
                e->literal = rt::Value{true};
                ++pos_;
                return e;
            }
            case Tok::kFalse: {
                auto e = make_expr(Expr::Kind::kLiteral);
                e->literal = rt::Value{false};
                ++pos_;
                return e;
            }
            case Tok::kNull: {
                auto e = make_expr(Expr::Kind::kLiteral);
                ++pos_;
                return e;
            }
            case Tok::kIdent: {
                auto e = make_expr(Expr::Kind::kVar);
                e->name = tokens_[pos_++].text;
                return e;
            }
            case Tok::kLParen: {
                ++pos_;
                ExprPtr e = expr();
                eat(Tok::kRParen, "')'");
                return e;
            }
            case Tok::kLBracket: {
                auto e = make_expr(Expr::Kind::kListLit);
                ++pos_;
                if (!at(Tok::kRBracket)) {
                    do {
                        e->args.push_back(expr());
                    } while (eat_if(Tok::kComma));
                }
                eat(Tok::kRBracket, "']'");
                return e;
            }
            case Tok::kLBrace: {
                auto e = make_expr(Expr::Kind::kDictLit);
                ++pos_;
                if (!at(Tok::kRBrace)) {
                    do {
                        ExprPtr key = expr();
                        eat(Tok::kColon, "':'");
                        ExprPtr value = expr();
                        e->entries.emplace_back(std::move(key), std::move(value));
                    } while (eat_if(Tok::kComma));
                }
                eat(Tok::kRBrace, "'}'");
                return e;
            }
            default: fail("expected expression");
        }
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) { return Parser(tokenize(source)).run(); }

}  // namespace pmp::script
