#include <cctype>
#include <unordered_map>

#include "common/error.h"
#include "script/token.h"

namespace pmp::script {

const char* token_name(Tok kind) {
    switch (kind) {
        case Tok::kEof: return "end of input";
        case Tok::kIdent: return "identifier";
        case Tok::kInt: return "integer";
        case Tok::kReal: return "real";
        case Tok::kStr: return "string";
        case Tok::kLet: return "'let'";
        case Tok::kFun: return "'fun'";
        case Tok::kIf: return "'if'";
        case Tok::kElse: return "'else'";
        case Tok::kWhile: return "'while'";
        case Tok::kFor: return "'for'";
        case Tok::kIn: return "'in'";
        case Tok::kReturn: return "'return'";
        case Tok::kBreak: return "'break'";
        case Tok::kContinue: return "'continue'";
        case Tok::kThrow: return "'throw'";
        case Tok::kTrue: return "'true'";
        case Tok::kFalse: return "'false'";
        case Tok::kNull: return "'null'";
        case Tok::kLParen: return "'('";
        case Tok::kRParen: return "')'";
        case Tok::kLBrace: return "'{'";
        case Tok::kRBrace: return "'}'";
        case Tok::kLBracket: return "'['";
        case Tok::kRBracket: return "']'";
        case Tok::kComma: return "','";
        case Tok::kSemi: return "';'";
        case Tok::kColon: return "':'";
        case Tok::kDot: return "'.'";
        case Tok::kAssign: return "'='";
        case Tok::kEq: return "'=='";
        case Tok::kNe: return "'!='";
        case Tok::kLt: return "'<'";
        case Tok::kLe: return "'<='";
        case Tok::kGt: return "'>'";
        case Tok::kGe: return "'>='";
        case Tok::kPlus: return "'+'";
        case Tok::kMinus: return "'-'";
        case Tok::kStar: return "'*'";
        case Tok::kSlash: return "'/'";
        case Tok::kPercent: return "'%'";
        case Tok::kAndAnd: return "'&&'";
        case Tok::kOrOr: return "'||'";
        case Tok::kBang: return "'!'";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"let", Tok::kLet},       {"fun", Tok::kFun},         {"if", Tok::kIf},
    {"else", Tok::kElse},     {"while", Tok::kWhile},     {"for", Tok::kFor},
    {"in", Tok::kIn},         {"return", Tok::kReturn},   {"break", Tok::kBreak},
    {"continue", Tok::kContinue}, {"throw", Tok::kThrow}, {"true", Tok::kTrue},
    {"false", Tok::kFalse},   {"null", Tok::kNull},
};

class Lexer {
public:
    explicit Lexer(std::string_view source) : src_(source) {}

    std::vector<Token> run() {
        std::vector<Token> out;
        for (;;) {
            skip_trivia();
            Token tok = next_token();
            bool done = tok.kind == Tok::kEof;
            out.push_back(std::move(tok));
            if (done) return out;
        }
    }

private:
    [[noreturn]] void fail(const std::string& what) const { throw ParseError(what, line_, col_); }

    bool eof() const { return pos_ >= src_.size(); }
    char peek(std::size_t ahead = 0) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }
    char advance() {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    void skip_trivia() {
        for (;;) {
            if (eof()) return;
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (!eof() && peek() != '\n') advance();
            } else if (c == '/' && peek(1) == '*') {
                advance();
                advance();
                while (!eof() && !(peek() == '*' && peek(1) == '/')) advance();
                if (eof()) fail("unterminated block comment");
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    Token make(Tok kind) {
        Token t;
        t.kind = kind;
        t.line = tok_line_;
        t.column = tok_col_;
        return t;
    }

    Token next_token() {
        tok_line_ = line_;
        tok_col_ = col_;
        if (eof()) return make(Tok::kEof);
        char c = advance();

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return ident(c);
        if (std::isdigit(static_cast<unsigned char>(c))) return number(c);
        if (c == '"') return string_literal();

        switch (c) {
            case '(': return make(Tok::kLParen);
            case ')': return make(Tok::kRParen);
            case '{': return make(Tok::kLBrace);
            case '}': return make(Tok::kRBrace);
            case '[': return make(Tok::kLBracket);
            case ']': return make(Tok::kRBracket);
            case ',': return make(Tok::kComma);
            case ';': return make(Tok::kSemi);
            case ':': return make(Tok::kColon);
            case '.': return make(Tok::kDot);
            case '+': return make(Tok::kPlus);
            case '-': return make(Tok::kMinus);
            case '*': return make(Tok::kStar);
            case '/': return make(Tok::kSlash);
            case '%': return make(Tok::kPercent);
            case '=':
                if (peek() == '=') {
                    advance();
                    return make(Tok::kEq);
                }
                return make(Tok::kAssign);
            case '!':
                if (peek() == '=') {
                    advance();
                    return make(Tok::kNe);
                }
                return make(Tok::kBang);
            case '<':
                if (peek() == '=') {
                    advance();
                    return make(Tok::kLe);
                }
                return make(Tok::kLt);
            case '>':
                if (peek() == '=') {
                    advance();
                    return make(Tok::kGe);
                }
                return make(Tok::kGt);
            case '&':
                if (peek() == '&') {
                    advance();
                    return make(Tok::kAndAnd);
                }
                fail("stray '&'");
            case '|':
                if (peek() == '|') {
                    advance();
                    return make(Tok::kOrOr);
                }
                fail("stray '|'");
            default: fail(std::string("unexpected character '") + c + "'");
        }
    }

    Token ident(char first) {
        std::string text(1, first);
        while (!eof() &&
               (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
            text.push_back(advance());
        }
        if (auto it = kKeywords.find(text); it != kKeywords.end()) {
            return make(it->second);
        }
        Token t = make(Tok::kIdent);
        t.text = std::move(text);
        return t;
    }

    Token number(char first) {
        std::string text(1, first);
        bool real = false;
        while (!eof()) {
            char c = peek();
            if (std::isdigit(static_cast<unsigned char>(c))) {
                text.push_back(advance());
            } else if (c == '.' && !real &&
                       std::isdigit(static_cast<unsigned char>(peek(1)))) {
                real = true;
                text.push_back(advance());
            } else {
                break;
            }
        }
        if (real) {
            Token t = make(Tok::kReal);
            t.real_val = std::stod(text);
            return t;
        }
        Token t = make(Tok::kInt);
        t.int_val = std::stoll(text);
        return t;
    }

    Token string_literal() {
        std::string text;
        for (;;) {
            if (eof()) fail("unterminated string literal");
            char c = advance();
            if (c == '"') break;
            if (c == '\\') {
                if (eof()) fail("unterminated escape");
                char esc = advance();
                switch (esc) {
                    case 'n': text.push_back('\n'); break;
                    case 't': text.push_back('\t'); break;
                    case '"': text.push_back('"'); break;
                    case '\\': text.push_back('\\'); break;
                    default: fail(std::string("unknown escape '\\") + esc + "'");
                }
            } else {
                text.push_back(c);
            }
        }
        Token t = make(Tok::kStr);
        t.text = std::move(text);
        return t;
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    int tok_line_ = 1;
    int tok_col_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) { return Lexer(source).run(); }

}  // namespace pmp::script
