#include "script/check.h"

namespace pmp::script {

namespace {

class Checker {
public:
    Checker(const Program& program, const BuiltinRegistry& builtins,
            const std::set<std::string>& predefined)
        : program_(program), builtins_(builtins) {
        globals_ = predefined;
    }

    std::vector<Diagnostic> run() {
        // Pass 0: function table (duplicates, duplicate params).
        for (const FunctionDecl& fn : program_.functions) {
            if (!functions_.insert(fn.name).second) {
                report(fn.line, "duplicate function '" + fn.name + "'");
            }
            std::set<std::string> params;
            for (const std::string& p : fn.params) {
                if (!params.insert(p).second) {
                    report(fn.line, "duplicate parameter '" + p + "' in '" + fn.name + "'");
                }
            }
        }

        // Pass 1: top level, sequentially (a global exists only below its
        // `let`). Top-level code runs outside any loop or function.
        scopes_.clear();
        check_stmts(program_.top_level, /*top_level=*/true, /*in_loop=*/false,
                    /*in_function=*/false);

        // Pass 2: function bodies see every global the top level defines.
        for (const FunctionDecl& fn : program_.functions) {
            scopes_.clear();
            scopes_.emplace_back();
            for (const std::string& p : fn.params) scopes_.back().insert(p);
            check_stmts(fn.body, /*top_level=*/false, /*in_loop=*/false,
                        /*in_function=*/true);
        }
        return std::move(diagnostics_);
    }

private:
    void report(int line, std::string message) {
        diagnostics_.push_back(Diagnostic{line, std::move(message)});
    }

    bool var_defined(const std::string& name) const {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (it->contains(name)) return true;
        }
        return globals_.contains(name);
    }

    /// True if the statement unconditionally transfers control.
    static bool terminates(const Stmt& stmt) {
        return stmt.kind == Stmt::Kind::kReturn || stmt.kind == Stmt::Kind::kBreak ||
               stmt.kind == Stmt::Kind::kContinue || stmt.kind == Stmt::Kind::kThrow;
    }

    void check_stmts(const std::vector<StmtPtr>& body, bool top_level, bool in_loop,
                     bool in_function) {
        bool dead = false;
        for (const StmtPtr& stmt : body) {
            if (dead) {
                report(stmt->line, "unreachable statement");
                dead = false;  // one report per dead region
            }
            check_stmt(*stmt, top_level, in_loop, in_function);
            if (terminates(*stmt)) dead = true;
        }
    }

    void check_block(const std::vector<StmtPtr>& body, bool in_loop, bool in_function) {
        scopes_.emplace_back();
        check_stmts(body, /*top_level=*/false, in_loop, in_function);
        scopes_.pop_back();
    }

    void check_stmt(const Stmt& stmt, bool top_level, bool in_loop, bool in_function) {
        switch (stmt.kind) {
            case Stmt::Kind::kLet:
                check_expr(*stmt.expr);
                if (top_level && scopes_.empty()) {
                    globals_.insert(stmt.name);
                } else if (!scopes_.empty()) {
                    scopes_.back().insert(stmt.name);
                }
                return;
            case Stmt::Kind::kAssign:
                check_expr(*stmt.expr);
                check_lvalue(*stmt.target);
                return;
            case Stmt::Kind::kExpr: check_expr(*stmt.expr); return;
            case Stmt::Kind::kIf:
                check_expr(*stmt.expr);
                check_block(stmt.body, in_loop, in_function);
                check_block(stmt.else_body, in_loop, in_function);
                return;
            case Stmt::Kind::kWhile:
                check_expr(*stmt.expr);
                check_block(stmt.body, /*in_loop=*/true, in_function);
                return;
            case Stmt::Kind::kForIn: {
                check_expr(*stmt.expr);
                scopes_.emplace_back();
                scopes_.back().insert(stmt.name);
                check_stmts(stmt.body, /*top_level=*/false, /*in_loop=*/true, in_function);
                scopes_.pop_back();
                return;
            }
            case Stmt::Kind::kReturn:
                if (stmt.expr) check_expr(*stmt.expr);
                if (!in_function) report(stmt.line, "'return' outside a function");
                return;
            case Stmt::Kind::kBreak:
                if (!in_loop) report(stmt.line, "'break' outside a loop");
                return;
            case Stmt::Kind::kContinue:
                if (!in_loop) report(stmt.line, "'continue' outside a loop");
                return;
            case Stmt::Kind::kThrow: check_expr(*stmt.expr); return;
            case Stmt::Kind::kBlock: check_block(stmt.body, in_loop, in_function); return;
        }
    }

    void check_lvalue(const Expr& target) {
        switch (target.kind) {
            case Expr::Kind::kVar:
                if (!var_defined(target.name)) {
                    report(target.line,
                           "assignment to undeclared variable '" + target.name + "'");
                }
                return;
            case Expr::Kind::kIndex:
                check_lvalue(*target.lhs);
                check_expr(*target.rhs);
                return;
            case Expr::Kind::kMember: check_lvalue(*target.lhs); return;
            default: return;  // the parser already rejects other targets
        }
    }

    void check_expr(const Expr& expr) {
        switch (expr.kind) {
            case Expr::Kind::kLiteral: return;
            case Expr::Kind::kVar:
                if (!var_defined(expr.name)) {
                    report(expr.line, "undefined variable '" + expr.name + "'");
                }
                return;
            case Expr::Kind::kBinary:
                check_expr(*expr.lhs);
                check_expr(*expr.rhs);
                return;
            case Expr::Kind::kUnary: check_expr(*expr.lhs); return;
            case Expr::Kind::kCall: {
                for (const ExprPtr& a : expr.args) check_expr(*a);
                const FunctionDecl* fn = program_.find_function(expr.name);
                if (fn) {
                    if (fn->params.size() != expr.args.size()) {
                        report(expr.line, "function '" + expr.name + "' expects " +
                                              std::to_string(fn->params.size()) +
                                              " args, got " +
                                              std::to_string(expr.args.size()));
                    }
                    return;
                }
                if (!builtins_.find(expr.name)) {
                    report(expr.line, "unknown function '" + expr.name + "'");
                }
                return;
            }
            case Expr::Kind::kIndex:
                check_expr(*expr.lhs);
                check_expr(*expr.rhs);
                return;
            case Expr::Kind::kMember: check_expr(*expr.lhs); return;
            case Expr::Kind::kListLit:
                for (const ExprPtr& a : expr.args) check_expr(*a);
                return;
            case Expr::Kind::kDictLit:
                for (const auto& [k, v] : expr.entries) {
                    check_expr(*k);
                    check_expr(*v);
                }
                return;
        }
    }

    const Program& program_;
    const BuiltinRegistry& builtins_;
    std::set<std::string> globals_;
    std::set<std::string> functions_;
    std::vector<std::set<std::string>> scopes_;
    std::vector<Diagnostic> diagnostics_;
};

}  // namespace

std::vector<Diagnostic> check(const Program& program, const BuiltinRegistry& builtins,
                              const std::set<std::string>& predefined) {
    return Checker(program, builtins, predefined).run();
}

std::string format_diagnostics(const std::vector<Diagnostic>& diagnostics) {
    std::string out;
    for (const Diagnostic& d : diagnostics) {
        if (!out.empty()) out += "; ";
        out += "line " + std::to_string(d.line) + ": " + d.message;
    }
    return out;
}

}  // namespace pmp::script
