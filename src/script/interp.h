// AdviceScript tree-walking interpreter — the reference implementation.
//
// The bytecode Vm (script/vm.h) is the hot path used in production; this
// interpreter defines the semantics the Vm must reproduce bit-for-bit
// (results, typed errors, step accounting). It stays wired behind the
// differential-testing flag (EngineMode::kInterpreter) and the property
// suite compares the two on random programs every build.
//
// The Sandbox / BuiltinRegistry contract lives in script/sandbox.h and is
// shared by both engines; the shared runtime semantics live in
// script/ops.h.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "script/ast.h"
#include "script/engine.h"
#include "script/sandbox.h"

namespace pmp::script {

/// Tree-walking evaluator over one Program.
///
/// The top-level statements run once (run_top_level) and populate the
/// extension's global state; advice entry points are then invoked with
/// call(). Globals persist across calls — that is how, e.g., the
/// monitoring extension accumulates a local buffer between interceptions.
class Interpreter final : public Engine {
public:
    Interpreter(std::shared_ptr<const Program> program, Sandbox sandbox,
                std::shared_ptr<const BuiltinRegistry> builtins);

    /// Execute top-level statements (global `let`s etc.). Call once.
    void run_top_level() override;

    bool has_function(std::string_view name) const override {
        return program_->find_function(name) != nullptr;
    }

    /// Invoke a named function. Throws ScriptError for script faults,
    /// AccessDenied for capability violations, ResourceExhausted for
    /// budget overruns.
    rt::Value call(std::string_view name, rt::List args) override;

    /// Read/write a global (tests and host glue).
    const rt::Value* global(const std::string& name) const override;
    void set_global(const std::string& name, rt::Value value) override;

    const Sandbox& sandbox() const override { return sandbox_; }

    void set_step_observer(StepObserver fn) override { step_observer_ = std::move(fn); }

    /// Steps consumed by the most recent outermost call().
    std::uint64_t last_call_steps() const override { return last_call_steps_; }

private:
    struct Scope {
        std::unordered_map<std::string, rt::Value> vars;
    };

    // Control-flow signals (internal).
    struct ReturnSignal {
        rt::Value value;
    };
    struct BreakSignal {};
    struct ContinueSignal {};

    void tick(int line);
    rt::Value* find_var(const std::string& name);

    void exec_block(const std::vector<StmtPtr>& body);
    void exec(const Stmt& stmt);
    rt::Value eval(const Expr& expr);
    rt::Value eval_binary(const Expr& expr);
    rt::Value eval_call(const Expr& expr);
    rt::Value* resolve_lvalue(const Expr& target);
    rt::Value call_function(const FunctionDecl& fn, rt::List args);

    std::shared_ptr<const Program> program_;
    Sandbox sandbox_;
    std::shared_ptr<const BuiltinRegistry> builtins_;

    Scope globals_;
    std::vector<Scope> scopes_;  // current frame's lexical scopes
    std::uint64_t steps_ = 0;
    std::uint64_t total_steps_ = 0;  ///< lifetime; never reset (accounting)
    std::uint64_t last_call_steps_ = 0;
    int call_nesting_ = 0;
    int depth_ = 0;
    StepObserver step_observer_;
};

}  // namespace pmp::script
