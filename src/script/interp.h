// AdviceScript interpreter and sandbox.
//
// Extension code arrives from the network, so it runs inside a sandbox
// (paper §3.1, "addressing secure execution"): every host facility it can
// touch is a registered builtin gated by a capability string, and the
// interpreter enforces step and recursion budgets so a buggy or hostile
// extension cannot wedge the node. The hosting layer (MIDAS receiver)
// decides which capabilities a package gets.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "script/ast.h"

namespace pmp::script {

/// Execution limits and capability grants for one extension instance.
struct Sandbox {
    std::set<std::string> capabilities;
    std::uint64_t step_budget = 1'000'000;  ///< per entry-point invocation
    int max_recursion = 64;
    /// Watchdog deadline, in steps, per entry-point invocation (0 = off).
    /// Distinct from step_budget: the budget is the sandbox's generosity
    /// bound (ResourceExhausted), the deadline is the governor's latency
    /// bound priced from virtual time (DeadlineExceeded) — typically far
    /// tighter, and counted toward quarantine by the MIDAS receiver.
    std::uint64_t deadline_steps = 0;

    bool allows(const std::string& capability) const {
        return capability.empty() || capabilities.contains(capability);
    }
};

/// Host functions callable from script. A builtin with an empty capability
/// is part of the core library and always available; anything touching the
/// node (logging, network, database, robot control, the current join
/// point) declares the capability it needs.
class BuiltinRegistry {
public:
    using Fn = std::function<rt::Value(rt::List& args)>;

    struct Entry {
        std::string capability;
        Fn fn;
    };

    /// Register `name` (e.g. "net.post"); replaces an existing entry.
    void add(const std::string& name, const std::string& capability, Fn fn);

    const Entry* find(const std::string& name) const;

    /// The core library: len, str, push, keys, range, math and string
    /// helpers — no capabilities required.
    static BuiltinRegistry with_core();

private:
    std::unordered_map<std::string, Entry> entries_;
};

/// Tree-walking evaluator over one Program.
///
/// The top-level statements run once (run_top_level) and populate the
/// extension's global state; advice entry points are then invoked with
/// call(). Globals persist across calls — that is how, e.g., the
/// monitoring extension accumulates a local buffer between interceptions.
class Interpreter {
public:
    Interpreter(std::shared_ptr<const Program> program, Sandbox sandbox,
                std::shared_ptr<const BuiltinRegistry> builtins);

    /// Execute top-level statements (global `let`s etc.). Call once.
    void run_top_level();

    bool has_function(std::string_view name) const {
        return program_->find_function(name) != nullptr;
    }

    /// Invoke a named function. Throws ScriptError for script faults,
    /// AccessDenied for capability violations, ResourceExhausted for
    /// budget overruns.
    rt::Value call(std::string_view name, rt::List args);

    /// Read/write a global (tests and host glue).
    const rt::Value* global(const std::string& name) const;
    void set_global(const std::string& name, rt::Value value);

    const Sandbox& sandbox() const { return sandbox_; }

    /// Fired once per *outermost* call() with the number of interpreter
    /// steps that invocation consumed — including on throw, so runaway
    /// invocations are charged too. The MIDAS receiver's resource governor
    /// hangs its cumulative per-lease-window accounting here. The observer
    /// runs inside the interpreter's unwind path and must not throw.
    using StepObserver = std::function<void(std::uint64_t steps)>;
    void set_step_observer(StepObserver fn) { step_observer_ = std::move(fn); }

    /// Steps consumed by the most recent outermost call().
    std::uint64_t last_call_steps() const { return last_call_steps_; }

private:
    struct Scope {
        std::unordered_map<std::string, rt::Value> vars;
    };

    // Control-flow signals (internal).
    struct ReturnSignal {
        rt::Value value;
    };
    struct BreakSignal {};
    struct ContinueSignal {};

    void tick(int line);
    rt::Value* find_var(const std::string& name);

    void exec_block(const std::vector<StmtPtr>& body);
    void exec(const Stmt& stmt);
    rt::Value eval(const Expr& expr);
    rt::Value eval_binary(const Expr& expr);
    rt::Value eval_call(const Expr& expr);
    rt::Value* resolve_lvalue(const Expr& target);
    rt::Value call_function(const FunctionDecl& fn, rt::List args);

    std::shared_ptr<const Program> program_;
    Sandbox sandbox_;
    std::shared_ptr<const BuiltinRegistry> builtins_;

    Scope globals_;
    std::vector<Scope> scopes_;  // current frame's lexical scopes
    std::uint64_t steps_ = 0;
    std::uint64_t total_steps_ = 0;  ///< lifetime; never reset (accounting)
    std::uint64_t last_call_steps_ = 0;
    int call_nesting_ = 0;
    int depth_ = 0;
    StepObserver step_observer_;
};

}  // namespace pmp::script
