#include "script/vm.h"

#include "common/error.h"
#include "script/ops.h"

namespace pmp::script {

using rt::Dict;
using rt::List;
using rt::Value;

Vm::Vm(std::shared_ptr<const CompiledUnit> unit, Sandbox sandbox,
       std::shared_ptr<const BuiltinRegistry> builtins)
    : unit_(std::move(unit)), sandbox_(std::move(sandbox)), builtins_(std::move(builtins)) {
    // Resolve every distinct builtin callee once. Unknown names stay as
    // null entries and fail at execution time with the interpreter's
    // message; capability verdicts are precomputed against the fixed
    // sandbox so the hot loop does a single bool test.
    resolved_.reserve(unit_->builtin_names.size());
    for (const std::string& name : unit_->builtin_names) {
        const BuiltinRegistry::Entry* entry = builtins_->find(name);
        resolved_.push_back(ResolvedBuiltin{
            entry, entry != nullptr && sandbox_.allows(entry->capability), &name});
    }
    step_limit_ = sandbox_.step_budget;
    if (sandbox_.deadline_steps != 0 && sandbox_.deadline_steps < step_limit_) {
        step_limit_ = sandbox_.deadline_steps;
    }
}

void Vm::run_top_level() {
    steps_ = 0;
    invoke(unit_->top_level, {}, /*counts_depth=*/false);
}

Value Vm::call(std::string_view name, List args) {
    const Chunk* chunk = unit_->find_function(name);
    if (!chunk) throw ScriptError("no function '" + std::string(name) + "'");
    if (call_nesting_ > 0) {
        // Re-entrant call (host builtin calling back into script): one
        // invocation for budget purposes, so don't reset the meter and
        // don't report to the observer twice.
        return invoke(*chunk, std::move(args), /*counts_depth=*/true);
    }
    steps_ = 0;
    const std::uint64_t before = total_steps_;
    ++call_nesting_;
    // Report on every exit path — a throwing invocation burned steps too,
    // and the governor must see them.
    struct Guard {
        Vm* self;
        std::uint64_t before;
        ~Guard() {
            --self->call_nesting_;
            self->last_call_steps_ = self->total_steps_ - before;
            if (self->step_observer_) self->step_observer_(self->last_call_steps_);
        }
    } guard{this, before};
    return invoke(*chunk, std::move(args), /*counts_depth=*/true);
}

const Value* Vm::global(const std::string& name) const {
    auto it = globals_.find(name);
    return it == globals_.end() ? nullptr : &it->second;
}

void Vm::set_global(const std::string& name, Value value) {
    globals_[name] = std::move(value);
}

Value Vm::invoke(const Chunk& chunk, List args, bool counts_depth) {
    if (static_cast<int>(args.size()) != chunk.n_params) {
        throw ScriptError("function '" + chunk.name + "' expects " +
                          std::to_string(chunk.n_params) + " args, got " +
                          std::to_string(args.size()));
    }
    const std::size_t entry_frames = frames_.size();
    const std::size_t entry_stack = stack_.size();
    const std::size_t entry_lstack = lstack_.size();
    try {
        for (Value& a : args) stack_.push_back(std::move(a));
        push_frame(chunk, args.size(), counts_depth);
        return run(entry_frames);
    } catch (...) {
        unwind(entry_frames, entry_stack, entry_lstack);
        throw;
    }
}

void Vm::push_frame(const Chunk& chunk, std::size_t argc, bool counts_depth) {
    if (counts_depth) {
        if (++depth_ > sandbox_.max_recursion) {
            --depth_;
            throw ResourceExhausted("script recursion limit reached in '" + chunk.name +
                                    "'");
        }
    }
    std::vector<Value> slots = acquire_slots(static_cast<std::size_t>(chunk.n_slots));
    for (std::size_t i = 0; i < argc; ++i) {
        slots[i] = std::move(stack_[stack_.size() - argc + i]);
    }
    stack_.resize(stack_.size() - argc);
    frames_.push_back(Frame{&chunk, 0, stack_.size(), std::move(slots), counts_depth});
}

void Vm::unwind(std::size_t entry_frames, std::size_t entry_stack,
                std::size_t entry_lstack) {
    while (frames_.size() > entry_frames) {
        if (frames_.back().counts_depth) --depth_;
        release_slots(std::move(frames_.back().slots));
        frames_.pop_back();
    }
    stack_.resize(entry_stack);
    lstack_.resize(entry_lstack);
}

std::vector<Value> Vm::acquire_slots(std::size_t n) {
    std::vector<Value> slots;
    if (!slot_pool_.empty()) {
        slots = std::move(slot_pool_.back());
        slot_pool_.pop_back();
    }
    slots.clear();
    slots.resize(n);
    return slots;
}

void Vm::release_slots(std::vector<Value> slots) {
    slots.clear();
    if (slot_pool_.size() < 64) slot_pool_.push_back(std::move(slots));
}

List& Vm::lease_args() {
    if (arg_pool_top_ == arg_pool_.size()) {
        arg_pool_.push_back(std::make_unique<List>());
    }
    return *arg_pool_[arg_pool_top_++];
}

/// RAII lease of a pooled builtin-argument list; entries are unique_ptrs
/// so references stay valid when re-entrant calls grow the pool.
struct Vm::ArgLease {
    Vm& vm;
    List& args;
    explicit ArgLease(Vm& v) : vm(v), args(v.lease_args()) {}
    ~ArgLease() {
        args.clear();
        --vm.arg_pool_top_;
    }
};

Value Vm::run(std::size_t entry_frames) {
    // The dispatch registers: the current frame's code, instruction pointer
    // and local slots are cached in locals instead of re-read through
    // frames_.back() on every instruction. `ip` is written back to the
    // frame only at the points that can suspend this frame (script calls,
    // builtins that may re-enter the VM); `reload` re-derives the cache
    // after any operation that may have switched frames or reallocated
    // frames_. A frame's slot buffer is heap-stable (pooled vector), so
    // `slots` survives pushes and pops of other frames.
    Frame* f;
    const Insn* code;
    Value* slots;
    std::size_t ip;
    auto reload = [&] {
        f = &frames_.back();
        code = f->chunk->code.data();
        slots = f->slots.data();
        ip = f->ip;
    };
    reload();
    for (;;) {
        const Insn in = code[ip++];
        switch (in.op) {
            case Op::kTick:
                // Fast path: two increments and one compare. Past the
                // precomputed limit, tick_check raises the correct typed
                // error (deadline before budget, like the interpreter).
                ++steps_;
                ++total_steps_;
                if (steps_ > step_limit_) [[unlikely]] {
                    ops::tick_check(sandbox_, steps_, in.line);
                }
                break;
            case Op::kConst: stack_.push_back(unit_->constants[in.a]); break;
            case Op::kLoadLocal: stack_.push_back(slots[in.a]); break;
            case Op::kStoreLocal:
                slots[in.a] = std::move(stack_.back());
                stack_.pop_back();
                break;
            case Op::kLoadGlobal: {
                auto it = globals_.find(unit_->names[in.a]);
                if (it == globals_.end()) {
                    ops::script_fail("undefined variable '" + unit_->names[in.a] + "'",
                                     in.line);
                }
                stack_.push_back(it->second);
                break;
            }
            case Op::kLetGlobal:
                globals_[unit_->names[in.a]] = std::move(stack_.back());
                stack_.pop_back();
                break;
            case Op::kStoreGlobal: {
                auto it = globals_.find(unit_->names[in.a]);
                if (it == globals_.end()) {
                    ops::script_fail("assignment to undeclared variable '" +
                                         unit_->names[in.a] + "'",
                                     in.line);
                }
                it->second = std::move(stack_.back());
                stack_.pop_back();
                break;
            }
            case Op::kPop: stack_.pop_back(); break;
            case Op::kJump: ip = static_cast<std::size_t>(in.a); break;
            case Op::kJumpIfFalse: {
                const bool t = stack_.back().truthy();
                stack_.pop_back();
                if (!t) ip = static_cast<std::size_t>(in.a);
                break;
            }
            case Op::kAndShort: {
                const bool t = stack_.back().truthy();
                stack_.pop_back();
                if (!t) {
                    stack_.push_back(Value{false});
                    ip = static_cast<std::size_t>(in.a);
                }
                break;
            }
            case Op::kOrShort: {
                const bool t = stack_.back().truthy();
                stack_.pop_back();
                if (t) {
                    stack_.push_back(Value{true});
                    ip = static_cast<std::size_t>(in.a);
                }
                break;
            }
            case Op::kToBool: stack_.back() = Value{stack_.back().truthy()}; break;
            case Op::kNot: stack_.back() = Value{!stack_.back().truthy()}; break;
            case Op::kNeg: stack_.back() = ops::negate(stack_.back(), in.line); break;
            case Op::kBinary: {
                // Int fast path, inline. Comparisons go through double like
                // ops::binary does (numeric_pair + as_real), so results are
                // bit-identical to the interpreter's; div/mod fall back on a
                // zero divisor for the exact error message.
                const std::size_t top = stack_.size();
                const std::int64_t* ia = stack_[top - 2].if_int();
                const std::int64_t* ib = stack_[top - 1].if_int();
                if (ia && ib) {
                    Value out;
                    bool handled = true;
                    switch (static_cast<BinOp>(in.a)) {
                        case BinOp::kAdd: out = Value{*ia + *ib}; break;
                        case BinOp::kSub: out = Value{*ia - *ib}; break;
                        case BinOp::kMul: out = Value{*ia * *ib}; break;
                        case BinOp::kDiv:
                            if (*ib == 0) handled = false;
                            else out = Value{*ia / *ib};
                            break;
                        case BinOp::kMod:
                            if (*ib == 0) handled = false;
                            else out = Value{*ia % *ib};
                            break;
                        case BinOp::kEq:
                            out = Value{static_cast<double>(*ia) == static_cast<double>(*ib)};
                            break;
                        case BinOp::kNe:
                            out = Value{static_cast<double>(*ia) != static_cast<double>(*ib)};
                            break;
                        case BinOp::kLt:
                            out = Value{static_cast<double>(*ia) < static_cast<double>(*ib)};
                            break;
                        case BinOp::kLe:
                            out = Value{static_cast<double>(*ia) <= static_cast<double>(*ib)};
                            break;
                        case BinOp::kGt:
                            out = Value{static_cast<double>(*ia) > static_cast<double>(*ib)};
                            break;
                        case BinOp::kGe:
                            out = Value{static_cast<double>(*ia) >= static_cast<double>(*ib)};
                            break;
                        default: handled = false; break;
                    }
                    if (handled) {
                        stack_.pop_back();
                        stack_.back() = std::move(out);
                        break;
                    }
                }
                Value b = std::move(stack_.back());
                stack_.pop_back();
                Value a = std::move(stack_.back());
                stack_.pop_back();
                stack_.push_back(ops::binary(static_cast<BinOp>(in.a), a, b, in.line));
                break;
            }
            case Op::kIndexGet: {
                Value idx = std::move(stack_.back());
                stack_.pop_back();
                Value base = std::move(stack_.back());
                stack_.pop_back();
                stack_.push_back(ops::index_get(base, idx, in.line));
                break;
            }
            case Op::kMemberGet: {
                Value base = std::move(stack_.back());
                stack_.pop_back();
                stack_.push_back(ops::member_get(base, unit_->names[in.a], in.line));
                break;
            }
            case Op::kMakeList: {
                const std::size_t n = static_cast<std::size_t>(in.a);
                List out;
                out.reserve(n);
                for (std::size_t i = stack_.size() - n; i < stack_.size(); ++i) {
                    out.push_back(std::move(stack_[i]));
                }
                stack_.resize(stack_.size() - n);
                stack_.push_back(Value{std::move(out)});
                break;
            }
            case Op::kNewDict: stack_.push_back(Value{Dict{}}); break;
            case Op::kDictKeyCheck:
                ops::want_str(stack_.back(), "dict key");
                break;
            case Op::kDictInsert: {
                Value v = std::move(stack_.back());
                stack_.pop_back();
                Value k = std::move(stack_.back());
                stack_.pop_back();
                stack_.back().as_dict().set(k.as_str(), std::move(v));
                break;
            }
            case Op::kCallFn:
                f->ip = ip;
                push_frame(unit_->functions[in.a], static_cast<std::size_t>(in.b),
                           /*counts_depth=*/true);
                reload();
                break;
            case Op::kCallBuiltin: {
                const ResolvedBuiltin& rb = resolved_[in.a];
                if (!rb.entry) {
                    ops::script_fail("unknown function '" + *rb.name + "'", in.line);
                }
                if (!rb.allowed) {
                    throw AccessDenied("extension lacks capability '" +
                                       rb.entry->capability + "' required by " +
                                       *rb.name);
                }
                const std::size_t n = static_cast<std::size_t>(in.b);
                ArgLease lease(*this);
                lease.args.reserve(n);
                for (std::size_t i = stack_.size() - n; i < stack_.size(); ++i) {
                    lease.args.push_back(std::move(stack_[i]));
                }
                stack_.resize(stack_.size() - n);
                // The builtin may re-enter the VM (host callback into
                // script), pushing frames and reallocating frames_.
                f->ip = ip;
                Value result = rb.entry->fn(lease.args);
                stack_.push_back(std::move(result));
                reload();
                break;
            }
            case Op::kReturn:
            case Op::kReturnNull: {
                Value result;
                if (in.op == Op::kReturn) {
                    result = std::move(stack_.back());
                    stack_.pop_back();
                }
                stack_.resize(f->stack_base);
                const bool counted = f->counts_depth;
                release_slots(std::move(f->slots));
                frames_.pop_back();
                if (counted) --depth_;
                if (frames_.size() == entry_frames) return result;
                stack_.push_back(std::move(result));
                reload();
                break;
            }
            case Op::kFail: throw ScriptError(unit_->names[in.a]);
            case Op::kThrow: {
                Value v = std::move(stack_.back());
                stack_.pop_back();
                throw ScriptError(ops::display(v) + " (line " + std::to_string(in.line) +
                                  ")");
            }
            case Op::kLvalLocal: lstack_.push_back(&slots[in.a]); break;
            case Op::kLvalGlobal: {
                auto it = globals_.find(unit_->names[in.a]);
                if (it == globals_.end()) {
                    ops::script_fail("assignment to undeclared variable '" +
                                         unit_->names[in.a] + "'",
                                     in.line);
                }
                lstack_.push_back(&it->second);
                break;
            }
            case Op::kLvalIndex: {
                Value idx = std::move(stack_.back());
                stack_.pop_back();
                lstack_.back() = ops::lval_index(lstack_.back(), idx, in.line);
                break;
            }
            case Op::kLvalMember:
                lstack_.back() =
                    ops::lval_member(lstack_.back(), unit_->names[in.a], in.line);
                break;
            case Op::kLvalStore: {
                Value* target = lstack_.back();
                lstack_.pop_back();
                *target = std::move(stack_.back());
                stack_.pop_back();
                break;
            }
            case Op::kForPrep: {
                Value iterable = std::move(stack_.back());
                stack_.pop_back();
                List items = ops::foreach_items(std::move(iterable), in.line);
                slots[in.a] = Value{std::move(items)};
                slots[in.a + 1] = Value{std::int64_t{0}};
                break;
            }
            case Op::kForNext: {
                const std::int64_t i = slots[in.b + 1].as_int();
                List& items = slots[in.b].as_list();
                if (i >= static_cast<std::int64_t>(items.size())) {
                    ip = static_cast<std::size_t>(in.a);
                } else {
                    slots[in.b + 2] = std::move(items[static_cast<std::size_t>(i)]);
                    slots[in.b + 1] = Value{i + 1};
                }
                break;
            }
        }
    }
}

}  // namespace pmp::script
