#include "script/ops.h"

#include "common/error.h"

namespace pmp::script::ops {

using rt::Dict;
using rt::List;
using rt::Value;

void script_fail(const std::string& what, int line) {
    throw ScriptError(what + " (line " + std::to_string(line) + ")");
}

std::int64_t want_int(const Value& v, const char* what) {
    if (!v.is_int()) throw ScriptError(std::string(what) + " expects an int");
    return v.as_int();
}

const std::string& want_str(const Value& v, const char* what) {
    if (!v.is_str()) throw ScriptError(std::string(what) + " expects a str");
    return v.as_str();
}

std::string display(const Value& v) {
    return v.is_str() ? v.as_str() : v.to_string();
}

void tick_check(const Sandbox& sandbox, std::uint64_t steps, int line) {
    if (sandbox.deadline_steps != 0 && steps > sandbox.deadline_steps) {
        throw DeadlineExceeded("advice overran its watchdog deadline at line " +
                               std::to_string(line));
    }
    if (steps > sandbox.step_budget) {
        throw ResourceExhausted("script exceeded step budget at line " +
                                std::to_string(line));
    }
}

namespace {
bool numeric_pair(const Value& a, const Value& b) { return a.is_number() && b.is_number(); }
bool both_int(const Value& a, const Value& b) { return a.is_int() && b.is_int(); }
}  // namespace

Value binary(BinOp op, Value& a, Value& b, int line) {
    switch (op) {
        case BinOp::kAdd:
            if (both_int(a, b)) return Value{a.as_int() + b.as_int()};
            if (numeric_pair(a, b)) return Value{a.as_real() + b.as_real()};
            if (a.is_str() || b.is_str()) return Value{display(a) + display(b)};
            if (a.is_list() && b.is_list()) {
                List out = a.as_list();
                const List& more = b.as_list();
                out.insert(out.end(), more.begin(), more.end());
                return Value{std::move(out)};
            }
            script_fail("'+' expects numbers, strings or lists", line);
        case BinOp::kSub:
            if (both_int(a, b)) return Value{a.as_int() - b.as_int()};
            if (numeric_pair(a, b)) return Value{a.as_real() - b.as_real()};
            script_fail("'-' expects numbers", line);
        case BinOp::kMul:
            if (both_int(a, b)) return Value{a.as_int() * b.as_int()};
            if (numeric_pair(a, b)) return Value{a.as_real() * b.as_real()};
            script_fail("'*' expects numbers", line);
        case BinOp::kDiv:
            if (both_int(a, b)) {
                if (b.as_int() == 0) script_fail("integer division by zero", line);
                return Value{a.as_int() / b.as_int()};
            }
            if (numeric_pair(a, b)) {
                if (b.as_real() == 0.0) script_fail("division by zero", line);
                return Value{a.as_real() / b.as_real()};
            }
            script_fail("'/' expects numbers", line);
        case BinOp::kMod:
            if (both_int(a, b)) {
                if (b.as_int() == 0) script_fail("modulo by zero", line);
                return Value{a.as_int() % b.as_int()};
            }
            script_fail("'%' expects ints", line);
        case BinOp::kEq:
            if (numeric_pair(a, b)) return Value{a.as_real() == b.as_real()};
            return Value{a == b};
        case BinOp::kNe:
            if (numeric_pair(a, b)) return Value{a.as_real() != b.as_real()};
            return Value{!(a == b)};
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
            int cmp;
            if (numeric_pair(a, b)) {
                double da = a.as_real(), db = b.as_real();
                cmp = da < db ? -1 : (da > db ? 1 : 0);
            } else if (a.is_str() && b.is_str()) {
                cmp = a.as_str().compare(b.as_str());
                cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
            } else {
                script_fail("comparison expects two numbers or two strings", line);
            }
            switch (op) {
                case BinOp::kLt: return Value{cmp < 0};
                case BinOp::kLe: return Value{cmp <= 0};
                case BinOp::kGt: return Value{cmp > 0};
                default: return Value{cmp >= 0};
            }
        }
        default: script_fail("internal: unknown binary op", line);
    }
}

Value negate(const Value& v, int line) {
    if (v.is_int()) return Value{-v.as_int()};
    if (v.is_real()) return Value{-v.as_real()};
    script_fail("unary '-' expects a number", line);
}

Value index_get(const Value& base, const Value& idx, int line) {
    if (base.is_list()) {
        const List& l = base.as_list();
        std::int64_t i = want_int(idx, "index");
        if (i < 0 || i >= static_cast<std::int64_t>(l.size())) {
            script_fail("list index " + std::to_string(i) + " out of range", line);
        }
        return l[static_cast<std::size_t>(i)];
    }
    if (base.is_dict()) {
        const Value* v = base.as_dict().find(want_str(idx, "dict index"));
        return v ? *v : Value{};  // missing keys read as null
    }
    if (base.is_str()) {
        const std::string& s = base.as_str();
        std::int64_t i = want_int(idx, "index");
        if (i < 0 || i >= static_cast<std::int64_t>(s.size())) {
            script_fail("string index out of range", line);
        }
        return Value{std::string(1, s[static_cast<std::size_t>(i)])};
    }
    script_fail("cannot index into " + std::string(Value::kind_name(base.kind())), line);
}

Value member_get(const Value& base, const std::string& name, int line) {
    if (base.is_dict()) {
        const Value* v = base.as_dict().find(name);
        return v ? *v : Value{};
    }
    script_fail("member access needs a dict", line);
}

Value* lval_index(Value* base, const Value& idx, int line) {
    if (base->is_list()) {
        List& l = base->as_list();
        std::int64_t i = want_int(idx, "index");
        if (i == static_cast<std::int64_t>(l.size())) {
            l.push_back(Value{});  // l[len(l)] = v appends
            return &l.back();
        }
        if (i < 0 || i > static_cast<std::int64_t>(l.size())) {
            script_fail("list index " + std::to_string(i) + " out of range", line);
        }
        return &l[static_cast<std::size_t>(i)];
    }
    if (base->is_dict()) {
        Dict& d = base->as_dict();
        const std::string& key = want_str(idx, "dict index");
        if (!d.contains(key)) d.set(key, Value{});
        // set() keeps the vector sorted; find() returns a stable pointer
        // valid until the next structural change.
        return const_cast<Value*>(d.find(key));
    }
    script_fail("cannot index into " + std::string(Value::kind_name(base->kind())), line);
}

Value* lval_member(Value* base, const std::string& name, int line) {
    if (!base->is_dict()) {
        script_fail("member assignment needs a dict", line);
    }
    Dict& d = base->as_dict();
    if (!d.contains(name)) d.set(name, Value{});
    return const_cast<Value*>(d.find(name));
}

List foreach_items(Value iterable, int line) {
    List items;
    if (iterable.is_list()) {
        items = std::move(iterable.as_list());
    } else if (iterable.is_dict()) {
        for (const auto& [k, _] : iterable.as_dict()) items.push_back(Value{k});
    } else {
        script_fail("for-in expects a list or dict", line);
    }
    return items;
}

}  // namespace pmp::script::ops
