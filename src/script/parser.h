// Recursive-descent parser for AdviceScript.
#pragma once

#include <string_view>

#include "script/ast.h"

namespace pmp::script {

/// Parse a compilation unit. Throws ParseError with line/column on syntax
/// errors. The grammar (expressions listed loosest-binding first):
///
///   program   := (fundecl | stmt)*
///   fundecl   := 'fun' IDENT '(' params? ')' block
///   stmt      := 'let' IDENT '=' expr ';'
///              | 'if' '(' expr ')' block ('else' (block | ifstmt))?
///              | 'while' '(' expr ')' block
///              | 'for' '(' IDENT 'in' expr ')' block
///              | 'return' expr? ';' | 'break' ';' | 'continue' ';'
///              | 'throw' expr ';'
///              | expr ('=' expr)? ';'        -- assignment or expression
///   expr      := or ; or := and ('||' and)* ; and := cmp ('&&' cmp)*
///   cmp       := sum (('=='|'!='|'<'|'<='|'>'|'>=') sum)?
///   sum       := term (('+'|'-') term)* ; term := unary (('*'|'/'|'%') unary)*
///   unary     := ('-'|'!') unary | postfix
///   postfix   := primary ( '(' args? ')' | '[' expr ']' | '.' IDENT )*
///   primary   := INT | REAL | STRING | 'true' | 'false' | 'null'
///              | IDENT | '(' expr ')' | '[' args? ']' | '{' entries? '}'
///
/// Calls are restricted to named callees: `f(x)` or `ns.f(x)` — functions
/// are not first-class values, which keeps the sandbox easy to reason
/// about.
Program parse(std::string_view source);

}  // namespace pmp::script
