// Token stream for AdviceScript.
//
// AdviceScript is the little language extension bodies are written in. A
// base station ships source text inside a signed package; the receiving
// node compiles it on arrival and runs it inside a capability sandbox —
// the C++ equivalent of the paper shipping Java classes compiled at the
// base station (Fig 5) into the PROSE aspect sandbox.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmp::script {

enum class Tok : std::uint8_t {
    kEof,
    kIdent,
    kInt,
    kReal,
    kStr,
    // keywords
    kLet,
    kFun,
    kIf,
    kElse,
    kWhile,
    kFor,
    kIn,
    kReturn,
    kBreak,
    kContinue,
    kThrow,
    kTrue,
    kFalse,
    kNull,
    // punctuation / operators
    kLParen,
    kRParen,
    kLBrace,
    kRBrace,
    kLBracket,
    kRBracket,
    kComma,
    kSemi,
    kColon,
    kDot,
    kAssign,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kPlus,
    kMinus,
    kStar,
    kSlash,
    kPercent,
    kAndAnd,
    kOrOr,
    kBang,
};

struct Token {
    Tok kind = Tok::kEof;
    std::string text;       // identifier / string contents
    std::int64_t int_val = 0;
    double real_val = 0;
    int line = 1;
    int column = 1;
};

const char* token_name(Tok kind);

/// Tokenize `source`; throws ParseError on malformed input. The returned
/// vector always ends with a kEof token.
std::vector<Token> tokenize(std::string_view source);

}  // namespace pmp::script
