// AdviceScript sandbox policy and the builtin (host function) registry.
//
// Extension code arrives from the network, so it runs inside a sandbox
// (paper §3.1, "addressing secure execution"): every host facility it can
// touch is a registered builtin gated by a capability string, and the
// execution engines enforce step and recursion budgets so a buggy or
// hostile extension cannot wedge the node. The hosting layer (MIDAS
// receiver) decides which capabilities a package gets.
//
// Both AdviceScript engines — the tree-walking Interpreter (reference
// implementation) and the bytecode Vm (hot path) — share this contract.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <unordered_map>

#include "rt/value.h"

namespace pmp::script {

/// Execution limits and capability grants for one extension instance.
struct Sandbox {
    std::set<std::string> capabilities;
    std::uint64_t step_budget = 1'000'000;  ///< per entry-point invocation
    int max_recursion = 64;
    /// Watchdog deadline, in steps, per entry-point invocation (0 = off).
    /// Distinct from step_budget: the budget is the sandbox's generosity
    /// bound (ResourceExhausted), the deadline is the governor's latency
    /// bound priced from virtual time (DeadlineExceeded) — typically far
    /// tighter, and counted toward quarantine by the MIDAS receiver.
    std::uint64_t deadline_steps = 0;

    bool allows(const std::string& capability) const {
        return capability.empty() || capabilities.contains(capability);
    }
};

/// Host functions callable from script. A builtin with an empty capability
/// is part of the core library and always available; anything touching the
/// node (logging, network, database, robot control, the current join
/// point) declares the capability it needs.
///
/// Entries are stable once added: add() replaces the Entry in place, so an
/// `Entry*` resolved at Vm construction stays valid (and picks up the new
/// fn) for the registry's lifetime. Engines snapshot the registry via
/// shared_ptr; entries must all be registered before an engine is built.
class BuiltinRegistry {
public:
    using Fn = std::function<rt::Value(rt::List& args)>;

    struct Entry {
        std::string capability;
        Fn fn;
    };

    /// Register `name` (e.g. "net.post"); replaces an existing entry.
    void add(const std::string& name, const std::string& capability, Fn fn);

    const Entry* find(const std::string& name) const;

    /// The core library: len, str, push, keys, range, math and string
    /// helpers — no capabilities required.
    static BuiltinRegistry with_core();

private:
    std::unordered_map<std::string, Entry> entries_;
};

}  // namespace pmp::script
