#include "script/compile.h"

#include <bit>
#include <utility>

namespace pmp::script {

namespace {

/// Interning tables shared by every chunk of one unit.
class UnitBuilder {
public:
    explicit UnitBuilder(std::shared_ptr<const Program> program)
        : unit_(std::make_shared<CompiledUnit>()) {
        unit_->program = std::move(program);
    }

    CompiledUnit& unit() { return *unit_; }
    const Program& program() const { return *unit_->program; }

    std::int32_t constant(rt::Value v) {
        // Literals are null/bool/int/real/str; intern by a type-tagged key
        // so 1, 1.0 and "1" stay distinct (reals keyed by bit pattern).
        std::string key;
        if (v.is_null()) {
            key = "n";
        } else if (v.is_bool()) {
            key = v.as_bool() ? "b1" : "b0";
        } else if (v.is_int()) {
            key = "i" + std::to_string(v.as_int());
        } else if (v.is_real()) {
            key = "d" + std::to_string(std::bit_cast<std::uint64_t>(v.as_real()));
        } else if (v.is_str()) {
            key = "s" + v.as_str();
        } else {
            unit_->constants.push_back(std::move(v));
            return static_cast<std::int32_t>(unit_->constants.size() - 1);
        }
        auto [it, fresh] = constant_index_.try_emplace(key, unit_->constants.size());
        if (fresh) unit_->constants.push_back(std::move(v));
        return static_cast<std::int32_t>(it->second);
    }

    std::int32_t name(const std::string& s) {
        auto [it, fresh] = name_index_.try_emplace(s, unit_->names.size());
        if (fresh) unit_->names.push_back(s);
        return static_cast<std::int32_t>(it->second);
    }

    std::int32_t builtin(const std::string& s) {
        auto [it, fresh] = builtin_index_.try_emplace(s, unit_->builtin_names.size());
        if (fresh) unit_->builtin_names.push_back(s);
        return static_cast<std::int32_t>(it->second);
    }

    /// First function with this name, mirroring Program::find_function.
    std::int32_t fn_index(const std::string& s) const {
        const auto& fns = unit_->program->functions;
        for (std::size_t i = 0; i < fns.size(); ++i) {
            if (fns[i].name == s) return static_cast<std::int32_t>(i);
        }
        return -1;
    }

    std::shared_ptr<CompiledUnit> take() { return std::move(unit_); }

private:
    std::shared_ptr<CompiledUnit> unit_;
    std::unordered_map<std::string, std::size_t> constant_index_;
    std::unordered_map<std::string, std::size_t> name_index_;
    std::unordered_map<std::string, std::size_t> builtin_index_;
};

/// Compiles one Chunk (a function body or the top level).
///
/// Lexical blocks map to slot ranges: entering a block records the slot
/// watermark, leaving it rewinds, so sibling blocks reuse slots. A read
/// that lexically precedes any `let` of that name compiles to a by-name
/// global access — exactly the interpreter's scope-walk fallback — and a
/// read after a `let` compiles to the slot, which is sound because within
/// a block, reaching a statement after a `let` implies the `let` ran.
class ChunkCompiler {
public:
    ChunkCompiler(UnitBuilder& u, bool top_level) : u_(u), top_(top_level) {}

    Chunk compile_function(const FunctionDecl& fn) {
        chunk_.name = fn.name;
        chunk_.n_params = static_cast<int>(fn.params.size());
        fn_name_ = fn.name;
        enter_block();  // parameter scope
        for (const auto& p : fn.params) declare(p);
        enter_block();  // body block (Interpreter::call_function + exec_block)
        for (const auto& s : fn.body) stmt(*s);
        exit_block();
        exit_block();
        emit(Op::kReturnNull);
        chunk_.n_slots = max_slots_;
        return std::move(chunk_);
    }

    Chunk compile_top(const std::vector<StmtPtr>& stmts) {
        for (const auto& s : stmts) stmt(*s);
        emit(Op::kReturnNull);
        chunk_.n_slots = max_slots_;
        return std::move(chunk_);
    }

private:
    struct Local {
        std::string name;
        int slot;
    };
    struct Block {
        std::size_t locals_base;
        int slot_base;
    };
    struct Loop {
        std::size_t continue_target;
        std::vector<std::size_t> break_fixups;
    };

    std::size_t here() const { return chunk_.code.size(); }

    std::size_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0, std::int32_t line = 0) {
        chunk_.code.push_back(Insn{op, a, b, line});
        return chunk_.code.size() - 1;
    }

    void patch(std::size_t at, std::size_t target) {
        chunk_.code[at].a = static_cast<std::int32_t>(target);
    }

    void enter_block() { blocks_.push_back(Block{locals_.size(), next_slot_}); }

    void exit_block() {
        locals_.resize(blocks_.back().locals_base);
        next_slot_ = blocks_.back().slot_base;
        blocks_.pop_back();
    }

    int new_slot() {
        int s = next_slot_++;
        if (next_slot_ > max_slots_) max_slots_ = next_slot_;
        return s;
    }

    /// Declare in the current block; a repeated `let` of the same name in
    /// the same block overwrites the same variable, so reuse its slot.
    int declare(const std::string& name) {
        for (std::size_t i = locals_.size(); i-- > blocks_.back().locals_base;) {
            if (locals_[i].name == name) return locals_[i].slot;
        }
        int s = new_slot();
        locals_.push_back(Local{name, s});
        return s;
    }

    /// Bind `name` to a pre-reserved slot (for-in loop variable).
    void declare_fixed(const std::string& name, int slot) {
        locals_.push_back(Local{name, slot});
    }

    int resolve(const std::string& name) const {
        for (std::size_t i = locals_.size(); i-- > 0;) {
            if (locals_[i].name == name) return locals_[i].slot;
        }
        return -1;
    }

    std::string in_fn_suffix() const {
        return top_ ? std::string{} : " in '" + fn_name_ + "'";
    }

    void compile_block(const std::vector<StmtPtr>& body) {
        enter_block();
        for (const auto& s : body) stmt(*s);
        exit_block();
    }

    void stmt(const Stmt& s) {
        emit(Op::kTick, 0, 0, s.line);
        switch (s.kind) {
            case Stmt::Kind::kLet: {
                expr(*s.expr);
                if (top_ && blocks_.empty()) {
                    emit(Op::kLetGlobal, u_.name(s.name));
                } else {
                    emit(Op::kStoreLocal, declare(s.name));
                }
                return;
            }
            case Stmt::Kind::kAssign: {
                expr(*s.expr);
                compile_store(*s.target);
                return;
            }
            case Stmt::Kind::kExpr:
                expr(*s.expr);
                emit(Op::kPop);
                return;
            case Stmt::Kind::kIf: {
                expr(*s.expr);
                std::size_t jf = emit(Op::kJumpIfFalse);
                compile_block(s.body);
                std::size_t j = emit(Op::kJump);
                patch(jf, here());
                compile_block(s.else_body);
                patch(j, here());
                return;
            }
            case Stmt::Kind::kWhile: {
                std::size_t cond_ip = here();
                expr(*s.expr);
                std::size_t jf = emit(Op::kJumpIfFalse);
                loops_.push_back(Loop{cond_ip, {}});
                compile_block(s.body);
                emit(Op::kJump, static_cast<std::int32_t>(cond_ip));
                std::size_t end = here();
                patch(jf, end);
                for (std::size_t brk : loops_.back().break_fixups) patch(brk, end);
                loops_.pop_back();
                return;
            }
            case Stmt::Kind::kForIn: {
                expr(*s.expr);
                // Three consecutive slots: items, cursor, loop variable.
                int base = next_slot_;
                next_slot_ += 3;
                if (next_slot_ > max_slots_) max_slots_ = next_slot_;
                emit(Op::kForPrep, base, 0, s.line);
                std::size_t next_ip = here();
                std::size_t fn = emit(Op::kForNext, 0, base);
                loops_.push_back(Loop{next_ip, {}});
                enter_block();
                declare_fixed(s.name, base + 2);
                for (const auto& inner : s.body) stmt(*inner);
                exit_block();
                emit(Op::kJump, static_cast<std::int32_t>(next_ip));
                std::size_t end = here();
                patch(fn, end);
                for (std::size_t brk : loops_.back().break_fixups) patch(brk, end);
                loops_.pop_back();
                next_slot_ = base;
                return;
            }
            case Stmt::Kind::kReturn: {
                if (top_) {
                    // The interpreter evaluates the returned expression
                    // before the signal unwinds to run_top_level's catch.
                    if (s.expr) expr(*s.expr);
                    emit(Op::kFail, u_.name("'return' outside a function"));
                } else if (s.expr) {
                    expr(*s.expr);
                    emit(Op::kReturn);
                } else {
                    emit(Op::kReturnNull);
                }
                return;
            }
            case Stmt::Kind::kBreak: {
                if (loops_.empty()) {
                    emit(Op::kFail, u_.name("'break' outside a loop" + in_fn_suffix()));
                } else {
                    loops_.back().break_fixups.push_back(emit(Op::kJump));
                }
                return;
            }
            case Stmt::Kind::kContinue: {
                if (loops_.empty()) {
                    emit(Op::kFail, u_.name("'continue' outside a loop" + in_fn_suffix()));
                } else {
                    emit(Op::kJump,
                         static_cast<std::int32_t>(loops_.back().continue_target));
                }
                return;
            }
            case Stmt::Kind::kThrow:
                expr(*s.expr);
                emit(Op::kThrow, 0, 0, s.line);
                return;
            case Stmt::Kind::kBlock: compile_block(s.body); return;
        }
    }

    /// Store the value on top of the stack into `target` (the value was
    /// evaluated first, matching Interpreter::exec kAssign order).
    void compile_store(const Expr& target) {
        switch (target.kind) {
            case Expr::Kind::kVar: {
                int slot = resolve(target.name);
                if (slot >= 0) {
                    emit(Op::kStoreLocal, slot);
                } else {
                    emit(Op::kStoreGlobal, u_.name(target.name), 0, target.line);
                }
                return;
            }
            case Expr::Kind::kIndex:
            case Expr::Kind::kMember:
                compile_lval(target);
                emit(Op::kLvalStore);
                return;
            default:
                emit(Op::kFail, u_.name("expression is not assignable (line " +
                                        std::to_string(target.line) + ")"));
                return;
        }
    }

    /// Push a pointer to the storage `target` denotes onto the lval stack,
    /// root-first then one level per index/member — the interpreter's
    /// resolve_lvalue order (base resolved before the index expression).
    void compile_lval(const Expr& target) {
        switch (target.kind) {
            case Expr::Kind::kVar: {
                int slot = resolve(target.name);
                if (slot >= 0) {
                    emit(Op::kLvalLocal, slot);
                } else {
                    emit(Op::kLvalGlobal, u_.name(target.name), 0, target.line);
                }
                return;
            }
            case Expr::Kind::kIndex:
                compile_lval(*target.lhs);
                expr(*target.rhs);
                emit(Op::kLvalIndex, 0, 0, target.line);
                return;
            case Expr::Kind::kMember:
                compile_lval(*target.lhs);
                emit(Op::kLvalMember, u_.name(target.name), 0, target.line);
                return;
            default:
                emit(Op::kFail, u_.name("expression is not assignable (line " +
                                        std::to_string(target.line) + ")"));
                return;
        }
    }

    void expr(const Expr& e) {
        emit(Op::kTick, 0, 0, e.line);
        switch (e.kind) {
            case Expr::Kind::kLiteral: emit(Op::kConst, u_.constant(e.literal)); return;
            case Expr::Kind::kVar: {
                int slot = resolve(e.name);
                if (slot >= 0) {
                    emit(Op::kLoadLocal, slot);
                } else {
                    emit(Op::kLoadGlobal, u_.name(e.name), 0, e.line);
                }
                return;
            }
            case Expr::Kind::kBinary: {
                if (e.bin_op == BinOp::kAnd) {
                    expr(*e.lhs);
                    std::size_t sc = emit(Op::kAndShort);
                    expr(*e.rhs);
                    emit(Op::kToBool);
                    patch(sc, here());
                    return;
                }
                if (e.bin_op == BinOp::kOr) {
                    expr(*e.lhs);
                    std::size_t sc = emit(Op::kOrShort);
                    expr(*e.rhs);
                    emit(Op::kToBool);
                    patch(sc, here());
                    return;
                }
                expr(*e.lhs);
                expr(*e.rhs);
                emit(Op::kBinary, static_cast<std::int32_t>(e.bin_op), 0, e.line);
                return;
            }
            case Expr::Kind::kUnary:
                expr(*e.lhs);
                emit(e.un_op == UnOp::kNot ? Op::kNot : Op::kNeg, 0, 0, e.line);
                return;
            case Expr::Kind::kCall: {
                for (const auto& a : e.args) expr(*a);
                const std::int32_t argc = static_cast<std::int32_t>(e.args.size());
                std::int32_t fi = u_.fn_index(e.name);
                if (fi >= 0) {
                    const FunctionDecl& fn = u_.program().functions[fi];
                    if (fn.params.size() != e.args.size()) {
                        // Dynamic semantics: the fault fires only if the
                        // call executes, after its arguments ran.
                        emit(Op::kFail,
                             u_.name("function '" + fn.name + "' expects " +
                                     std::to_string(fn.params.size()) + " args, got " +
                                     std::to_string(e.args.size())));
                    } else {
                        emit(Op::kCallFn, fi, argc);
                    }
                } else {
                    emit(Op::kCallBuiltin, u_.builtin(e.name), argc, e.line);
                }
                return;
            }
            case Expr::Kind::kIndex:
                expr(*e.lhs);
                expr(*e.rhs);
                emit(Op::kIndexGet, 0, 0, e.line);
                return;
            case Expr::Kind::kMember:
                expr(*e.lhs);
                emit(Op::kMemberGet, u_.name(e.name), 0, e.line);
                return;
            case Expr::Kind::kListLit:
                for (const auto& a : e.args) expr(*a);
                emit(Op::kMakeList, static_cast<std::int32_t>(e.args.size()));
                return;
            case Expr::Kind::kDictLit:
                emit(Op::kNewDict);
                for (const auto& [k, v] : e.entries) {
                    expr(*k);
                    emit(Op::kDictKeyCheck);
                    expr(*v);
                    emit(Op::kDictInsert);
                }
                return;
        }
    }

    UnitBuilder& u_;
    Chunk chunk_;
    bool top_;
    std::string fn_name_;
    std::vector<Local> locals_;
    std::vector<Block> blocks_;
    std::vector<Loop> loops_;
    int next_slot_ = 0;
    int max_slots_ = 0;
};

}  // namespace

std::shared_ptr<const CompiledUnit> compile(std::shared_ptr<const Program> program) {
    UnitBuilder b(std::move(program));
    CompiledUnit& u = b.unit();
    const auto& fns = b.program().functions;
    u.functions.reserve(fns.size());
    for (std::size_t i = 0; i < fns.size(); ++i) {
        ChunkCompiler c(b, /*top_level=*/false);
        u.functions.push_back(c.compile_function(fns[i]));
        u.function_index.try_emplace(fns[i].name, i);  // first decl wins
    }
    ChunkCompiler top(b, /*top_level=*/true);
    u.top_level = top.compile_top(b.program().top_level);
    return b.take();
}

const char* op_name(Op op) {
    switch (op) {
        case Op::kTick: return "tick";
        case Op::kConst: return "const";
        case Op::kLoadLocal: return "load_local";
        case Op::kStoreLocal: return "store_local";
        case Op::kLoadGlobal: return "load_global";
        case Op::kLetGlobal: return "let_global";
        case Op::kStoreGlobal: return "store_global";
        case Op::kPop: return "pop";
        case Op::kJump: return "jump";
        case Op::kJumpIfFalse: return "jump_if_false";
        case Op::kAndShort: return "and_short";
        case Op::kOrShort: return "or_short";
        case Op::kToBool: return "to_bool";
        case Op::kNot: return "not";
        case Op::kNeg: return "neg";
        case Op::kBinary: return "binary";
        case Op::kIndexGet: return "index_get";
        case Op::kMemberGet: return "member_get";
        case Op::kMakeList: return "make_list";
        case Op::kNewDict: return "new_dict";
        case Op::kDictKeyCheck: return "dict_key_check";
        case Op::kDictInsert: return "dict_insert";
        case Op::kCallFn: return "call_fn";
        case Op::kCallBuiltin: return "call_builtin";
        case Op::kReturn: return "return";
        case Op::kReturnNull: return "return_null";
        case Op::kFail: return "fail";
        case Op::kThrow: return "throw";
        case Op::kLvalLocal: return "lval_local";
        case Op::kLvalGlobal: return "lval_global";
        case Op::kLvalIndex: return "lval_index";
        case Op::kLvalMember: return "lval_member";
        case Op::kLvalStore: return "lval_store";
        case Op::kForPrep: return "for_prep";
        case Op::kForNext: return "for_next";
    }
    return "?";
}

namespace {

void list_chunk(const CompiledUnit& unit, const Chunk& chunk, std::string& out) {
    out += chunk.name.empty() ? std::string("<top>") : chunk.name;
    out += " (params " + std::to_string(chunk.n_params) + ", slots " +
           std::to_string(chunk.n_slots) + ")\n";
    for (std::size_t i = 0; i < chunk.code.size(); ++i) {
        const Insn& in = chunk.code[i];
        out += "  " + std::to_string(i) + ": " + op_name(in.op);
        switch (in.op) {
            case Op::kConst:
                out += " " + unit.constants[in.a].to_string();
                break;
            case Op::kLoadGlobal:
            case Op::kLetGlobal:
            case Op::kStoreGlobal:
            case Op::kLvalGlobal:
            case Op::kMemberGet:
            case Op::kLvalMember:
            case Op::kFail:
                out += " '" + unit.names[in.a] + "'";
                break;
            case Op::kCallFn:
                out += " " + unit.functions[in.a].name + "/" + std::to_string(in.b);
                break;
            case Op::kCallBuiltin:
                out += " " + unit.builtin_names[in.a] + "/" + std::to_string(in.b);
                break;
            case Op::kTick:
                out += " line " + std::to_string(in.line);
                break;
            default:
                if (in.a || in.b) {
                    out += " " + std::to_string(in.a);
                    if (in.b) out += " " + std::to_string(in.b);
                }
                break;
        }
        out += "\n";
    }
}

}  // namespace

std::string disassemble(const CompiledUnit& unit) {
    std::string out;
    list_chunk(unit, unit.top_level, out);
    for (const Chunk& c : unit.functions) list_chunk(unit, c, out);
    return out;
}

}  // namespace pmp::script
