// Abstract syntax tree for AdviceScript.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rt/value.h"

namespace pmp::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinOp {
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
};

enum class UnOp { kNeg, kNot };

struct Expr {
    enum class Kind {
        kLiteral,   // value
        kVar,       // name
        kBinary,    // op, lhs, rhs
        kUnary,     // op, operand
        kCall,      // callee name (possibly "ns.fn"), args
        kIndex,     // target[index]
        kMember,    // target.name  (dict field shorthand)
        kListLit,   // [a, b, c]
        kDictLit,   // {"k": v, ...}
    };

    Kind kind;
    int line = 0;

    rt::Value literal;                      // kLiteral
    std::string name;                       // kVar, kCall (callee), kMember (field)
    BinOp bin_op{};                         // kBinary
    UnOp un_op{};                           // kUnary
    ExprPtr lhs, rhs;                       // kBinary; kIndex uses lhs=target rhs=index;
                                            // kUnary and kMember use lhs
    std::vector<ExprPtr> args;              // kCall, kListLit
    std::vector<std::pair<ExprPtr, ExprPtr>> entries;  // kDictLit (key, value)
};

struct Stmt {
    enum class Kind {
        kLet,       // name = expr
        kAssign,    // target (Var/Index/Member chain) = expr
        kExpr,      // expression statement
        kIf,        // cond, then_block, else_block
        kWhile,     // cond, body
        kForIn,     // name, iterable, body
        kReturn,    // optional expr
        kBreak,
        kContinue,
        kThrow,     // expr
        kBlock,     // body
    };

    Kind kind;
    int line = 0;

    std::string name;           // kLet, kForIn loop variable
    ExprPtr target;             // kAssign target (lvalue expression)
    ExprPtr expr;               // initializer / condition / thrown / returned
    std::vector<StmtPtr> body;  // blocks
    std::vector<StmtPtr> else_body;
};

struct FunctionDecl {
    std::string name;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
    int line = 0;
};

/// A parsed compilation unit: top-level statements (run once, populate the
/// extension's global state) plus named functions (the advice entry points
/// such as onEntry / onExit / onShutdown, and any helpers).
struct Program {
    std::vector<StmtPtr> top_level;
    std::vector<FunctionDecl> functions;

    const FunctionDecl* find_function(std::string_view name) const {
        for (const auto& f : functions) {
            if (f.name == name) return &f;
        }
        return nullptr;
    }
};

}  // namespace pmp::script
