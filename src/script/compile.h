// AdviceScript bytecode: the compiled form executed by script/vm.h.
//
// A Program is compiled once (at package install; the MIDAS receiver
// caches CompiledUnits by script hash) into flat instruction streams —
// one Chunk per function plus one for the top level. The compiler:
//
//   * allocates locals to frame slots statically (block-scoped, slots
//     reused between sibling blocks), so the Vm never touches a hash map
//     for a local variable;
//   * resolves builtin call sites to dense indices into a per-unit
//     builtin-name table, so the Vm resolves each distinct callee to an
//     Entry* + capability verdict exactly once at construction — the
//     per-call BuiltinRegistry::find string hash leaves the hot loop;
//   * lowers statically-detectable faults (arity mismatch, break/continue
//     outside a loop, return at top level, non-assignable targets) to
//     kFail instructions carrying the interpreter's exact message, so the
//     error surfaces at the same dynamic point with the same text;
//   * emits an explicit kTick at every point the reference interpreter
//     ticks (each statement execution, each expression evaluation), so
//     step counts — and therefore budget/deadline error lines — are
//     identical between engines.
//
// Names lexically outside any local scope compile to by-name global
// accesses, which is exactly the interpreter's scope-walk fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "script/ast.h"

namespace pmp::script {

enum class Op : std::uint8_t {
    kTick,          // step accounting; line = source line charged
    kConst,         // push constants[a]
    kLoadLocal,     // push slots[a]
    kStoreLocal,    // slots[a] = pop
    kLoadGlobal,    // push globals[names[a]]; fails "undefined variable"
    kLetGlobal,     // globals[names[a]] = pop (declare/overwrite)
    kStoreGlobal,   // existing globals[names[a]] = pop; fails "undeclared"
    kPop,           // discard top
    kJump,          // ip = a
    kJumpIfFalse,   // if !truthy(pop) ip = a
    kAndShort,      // if !truthy(pop) { push false; ip = a }
    kOrShort,       // if truthy(pop) { push true; ip = a }
    kToBool,        // top = truthy(top)
    kNot,           // top = !truthy(top)
    kNeg,           // top = -top (numbers only)
    kBinary,        // a = BinOp; rhs = pop, lhs = pop, push lhs <op> rhs
    kIndexGet,      // idx = pop, base = pop, push base[idx]
    kMemberGet,     // base = pop, push base.names[a]
    kMakeList,      // pop a values, push list
    kNewDict,       // push {}
    kDictKeyCheck,  // top must be a str ("dict key expects a str")
    kDictInsert,    // v = pop, k = pop, dict at top: set(k, v)
    kCallFn,        // call functions[a] with b args popped from the stack
    kCallBuiltin,   // call builtin slot a with b args
    kReturn,        // return pop to caller
    kReturnNull,    // return null to caller
    kFail,          // throw ScriptError(names[a]) — message preformatted
    kThrow,         // throw ScriptError(display(pop) + " (line N)")
    kLvalLocal,     // lval-push &slots[a]
    kLvalGlobal,    // lval-push &existing global names[a]; fails "undeclared"
    kLvalIndex,     // idx = pop; lval-top = &(*lval-top)[idx] (append/create)
    kLvalMember,    // lval-top = &(*lval-top).names[a] (create missing)
    kLvalStore,     // *(lval-pop) = pop
    kForPrep,       // iterable = pop; slots[a] = items, slots[a+1] = 0
    kForNext,       // if idx == len jump a else slots[b+2] = items[idx++]
};

const char* op_name(Op op);

struct Insn {
    Op op;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t line = 0;
};

/// One straight-line instruction stream: a function body or the top level.
struct Chunk {
    std::string name;  ///< function name; empty for the top level
    std::vector<Insn> code;
    int n_params = 0;
    int n_slots = 0;  ///< frame slot count (params + deepest live locals)
};

/// The compiled form of one Program. Immutable after compile(); shared
/// between any number of Vm instances (the receiver's compile cache hands
/// the same unit to every install of the same script).
struct CompiledUnit {
    std::shared_ptr<const Program> program;  ///< reference AST, kept alive
    std::vector<rt::Value> constants;
    std::vector<std::string> names;          ///< identifiers + kFail messages
    std::vector<std::string> builtin_names;  ///< distinct non-user callees
    Chunk top_level;
    std::vector<Chunk> functions;  ///< parallel to program->functions
    std::unordered_map<std::string, std::size_t> function_index;

    const Chunk* find_function(std::string_view name) const {
        auto it = function_index.find(std::string(name));
        return it == function_index.end() ? nullptr : &functions[it->second];
    }
};

/// Compile a parsed program. Never throws for valid parser output; all
/// script-level faults are lowered to runtime instructions so they keep
/// the interpreter's dynamic semantics (e.g. an arity mismatch only
/// fires if the call executes, after its arguments were evaluated).
std::shared_ptr<const CompiledUnit> compile(std::shared_ptr<const Program> program);

/// Human-readable listing (docs, debugging, compile_test).
std::string disassemble(const CompiledUnit& unit);

}  // namespace pmp::script
