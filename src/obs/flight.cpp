#include "obs/flight.h"

#include <utility>

namespace pmp::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

FlightRecorder& FlightRecorder::global() {
    static FlightRecorder recorder;
    return recorder;
}

void FlightRecorder::observe(const TraceEvent& ev) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ < ring_.size()) ++size_;
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
}

std::vector<TraceEvent> FlightRecorder::tail() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tail_locked();
}

std::vector<TraceEvent> FlightRecorder::tail_locked() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    std::size_t start = size_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

const FlightRecorder::Dump& FlightRecorder::dump(std::string node, std::string reason,
                                                 SimTime at) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dumps_.size() >= kMaxDumps) dumps_.erase(dumps_.begin());
    dumps_.push_back(Dump{std::move(node), std::move(reason), at, tail_locked()});
    return dumps_.back();
}

void FlightRecorder::set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
    head_ = 0;
    size_ = 0;
}

void FlightRecorder::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    head_ = 0;
    size_ = 0;
    dumps_.clear();
}

}  // namespace pmp::obs
