// Canonical component names shared by logs, metrics, and traces.
//
// Historically every subsystem invented its own log tag ("receiver",
// "midas@robot", "rpc") while metrics would want dotted hierarchical names
// ("midas.receiver"). This registry is the single authority: it maps legacy
// aliases onto canonical dotted names, splits off per-instance suffixes
// ("base@hall" -> component "midas.base", instance "hall"), and interns
// each canonical name to a small integer id so a log line and its metrics
// provably refer to the same component.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pmp::obs {

class ComponentRegistry {
public:
    static ComponentRegistry& global();

    /// Canonical form of a raw tag. An "@instance" suffix is preserved:
    /// only the part before '@' is run through the alias table.
    ///   "receiver"   -> "midas.receiver"
    ///   "base@hall"  -> "midas.base@hall"
    ///   "rt.rpc"     -> "rt.rpc" (already canonical; unknown tags pass through)
    std::string canonical(std::string_view tag) const;

    /// Canonical name with any "@instance" suffix removed — the metric
    /// family a tag belongs to.
    std::string family(std::string_view tag) const;

    /// Intern a canonical name; stable small id, first come first served.
    std::uint32_t id(std::string_view canonical_name);

    /// Name for an interned id ("?" if out of range).
    const std::string& name(std::uint32_t id) const;

    /// Register an alias (legacy tag -> canonical). Later registrations
    /// overwrite earlier ones; the built-in table covers the seed tree.
    void alias(std::string_view tag, std::string_view canonical_name);

    std::size_t interned() const {
        std::lock_guard<std::mutex> lock(mu_);
        return names_.size();
    }

private:
    ComponentRegistry();

    /// Guards both tables: log lines arrive from every shard worker.
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, std::string>> aliases_;  // tag -> canonical
    /// deque, not vector: name() hands out references that must survive
    /// a concurrent intern.
    std::deque<std::string> names_;  // id -> canonical
};

}  // namespace pmp::obs
