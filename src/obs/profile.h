// Per-extension cost attribution and causal-tree analysis.
//
// Independently authored extensions share one node; when the node's
// budget burns, someone must be billable. The Profiler owns that ledger:
// the weaver's dispatch gate feeds it one latency sample per advice
// execution, keyed (extension, pointcut) — so "which extension" and
// "which join point of it" are both answerable — and the script engines'
// step observer feeds it interpreter steps per extension (the same feed
// the resource governor meters; both now draw from one observer).
//
// The second half operates on *finished traces*: build_trace_trees folds
// a TraceEvent stream (live buffer, JSON dump, flight-recorder tail) into
// causal trees using the trace/parent fields, render_tree prints one
// deterministically (seed replays compare byte-identical), critical_path
// extracts the chain of spans that actually bounded a trace's latency,
// and to_chrome_trace emits the Chrome trace-event format for
// chrome://tracing / Perfetto.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmp::obs {

class Profiler {
public:
    static Profiler& global();

    /// Pinned registry slots for one (extension, pointcut) dispatch site,
    /// resolved once at weave time; the woven hooks carry the Site by
    /// value and record without any lookup.
    struct Site {
        Counter* calls = nullptr;
        Histogram* advice_ns = nullptr;

        void record(double ns) const {
            calls->inc();
            advice_ns->observe(ns);
        }
    };

    /// Resolve the slots for a dispatch site. Registered as
    /// `profile.advice_calls` / `profile.advice_ns` with the label
    /// "<extension>|<pointcut>".
    Site site(const std::string& extension, const std::string& pointcut);

    /// Pinned per-extension step counter (`profile.steps`). The script
    /// engine's step observer increments it once per outermost call — the
    /// same observation the receiver's resource governor charges windows
    /// from.
    Counter* step_counter(const std::string& extension);
};

/// One dispatch site's cost, decoded from a snapshot.
struct SiteCost {
    std::string extension;
    std::string pointcut;
    std::uint64_t invocations = 0;
    double total_ns = 0;
    double p95_ns = 0;
};

/// One extension's bill: everything its advice cost this node.
struct ExtensionCost {
    std::string extension;
    std::uint64_t invocations = 0;
    double total_ns = 0;
    std::uint64_t steps = 0;
    std::vector<SiteCost> sites;  ///< by descending total_ns
};

/// Fold `profile.*` samples out of a snapshot (live or parsed from JSON)
/// into per-extension bills, by descending total_ns.
std::vector<ExtensionCost> attribution_from(const Snapshot& snap);

// ---------------------------------------------------------------------------
// Causal trees over finished traces.

struct SpanNode {
    std::uint64_t span = 0;
    std::uint64_t parent = 0;  ///< 0 = root position
    std::uint64_t trace = 0;
    SimTime begin;
    SimTime end;
    bool ended = false;
    std::string component;
    std::string name;
    KeyValues kv;  ///< begin kv, then end kv
    std::vector<std::size_t> children;  ///< indices into TraceTree::spans

    Duration duration() const { return ended ? end - begin : Duration{0}; }
};

struct TreeInstant {
    SimTime at;
    std::uint64_t parent = 0;
    std::string component;
    std::string name;
    KeyValues kv;
};

struct TraceTree {
    std::uint64_t trace_id = 0;
    std::vector<SpanNode> spans;        ///< ascending span id
    std::vector<std::size_t> roots;     ///< spans with no in-tree parent
    std::vector<TreeInstant> instants;  ///< in recording order
};

/// Group a TraceEvent stream into causal trees, ascending trace id.
/// Events with trace 0 (recorded before causal tracing, or synthetic) are
/// ignored; span ends whose begin is absent are ignored (the begin event
/// carries the linkage).
std::vector<TraceTree> build_trace_trees(const std::vector<TraceEvent>& events);

/// Deterministic indented rendering of one tree — identical input events
/// produce identical bytes, which is what the seed-replay tests compare.
std::string render_tree(const TraceTree& tree);

/// One hop of a trace's critical path.
struct CriticalHop {
    std::uint64_t span = 0;
    std::string component;
    std::string name;
    Duration total{0};  ///< the span's own duration
    Duration self{0};   ///< total minus the next hop's duration
};

/// Walk from the longest finished root span down through whichever child
/// finished last (the child that bounded its parent's completion). The
/// `self` column is where the time actually went.
std::vector<CriticalHop> critical_path(const TraceTree& tree);

/// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
/// Traces become processes, spans complete ("X") events, instants "i".
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

}  // namespace pmp::obs
