#include "obs/component.h"

#include <algorithm>

namespace pmp::obs {

ComponentRegistry& ComponentRegistry::global() {
    static ComponentRegistry registry;
    return registry;
}

ComponentRegistry::ComponentRegistry() {
    // Legacy log tags used across the seed tree -> canonical dotted names.
    alias("rpc", "rt.rpc");
    alias("router", "net.router");
    alias("net", "net.network");
    alias("disco", "disco.lookup");
    alias("registrar", "disco.registrar");
    alias("tspace-pull", "tspace.pull");
    alias("tspace", "tspace.space");
    alias("midas", "midas.receiver");
    alias("receiver", "midas.receiver");
    alias("ext", "midas.ext");
    alias("base", "midas.base");
    alias("weaver", "prose.weaver");
    alias("robot", "robot.controller");
}

void ComponentRegistry::alias(std::string_view tag, std::string_view canonical_name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [t, c] : aliases_) {
        if (t == tag) {
            c = std::string(canonical_name);
            return;
        }
    }
    aliases_.emplace_back(std::string(tag), std::string(canonical_name));
}

std::string ComponentRegistry::canonical(std::string_view tag) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string_view base = tag;
    std::string_view instance;
    if (auto at = tag.find('@'); at != std::string_view::npos) {
        base = tag.substr(0, at);
        instance = tag.substr(at + 1);
    }
    std::string_view mapped = base;
    for (const auto& [t, c] : aliases_) {
        if (t == base) {
            mapped = c;
            break;
        }
    }
    std::string out(mapped);
    if (!instance.empty()) {
        out += '@';
        out += instance;
    }
    return out;
}

std::string ComponentRegistry::family(std::string_view tag) const {
    std::string full = canonical(tag);
    if (auto at = full.find('@'); at != std::string::npos) full.resize(at);
    return full;
}

std::uint32_t ComponentRegistry::id(std::string_view canonical_name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(names_.begin(), names_.end(), canonical_name);
    if (it != names_.end()) return static_cast<std::uint32_t>(it - names_.begin());
    names_.emplace_back(canonical_name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

const std::string& ComponentRegistry::name(std::uint32_t id) const {
    static const std::string kUnknown = "?";
    std::lock_guard<std::mutex> lock(mu_);
    return id < names_.size() ? names_[id] : kUnknown;
}

}  // namespace pmp::obs
