#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pmp::obs {

// ------------------------------------------------------------ snapshot ----

std::uint64_t Snapshot::counter(std::string_view name, std::string_view label) const {
    for (const auto& c : counters) {
        if (c.name == name && c.label == label) return c.value;
    }
    return 0;
}

Snapshot snapshot_metrics(const Registry& reg) {
    Snapshot snap;
    reg.visit_counters([&](const std::string& name, const std::string& label, const Counter& c) {
        snap.counters.push_back({name, label, c.value()});
    });
    reg.visit_gauges([&](const std::string& name, const std::string& label, const Gauge& g) {
        snap.gauges.push_back({name, label, g.value()});
    });
    reg.visit_histograms(
        [&](const std::string& name, const std::string& label, const Histogram& h) {
            snap.histograms.push_back({name, label, h.count(), h.sum(), h.bounds(), h.buckets(),
                                       h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)});
        });
    return snap;
}

Snapshot snapshot(const Registry& reg, const TraceBuffer& trace) {
    Snapshot snap = snapshot_metrics(reg);
    snap.trace_dropped = trace.dropped();
    snap.trace = trace.events();
    return snap;
}

// ------------------------------------------------------------- to_text ----

namespace {

std::string fmt_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string fmt_double_short(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

std::string full_name(const std::string& name, const std::string& label) {
    return label.empty() ? name : name + "{" + label + "}";
}

}  // namespace

std::string to_text(const Snapshot& snap) {
    std::ostringstream out;
    if (!snap.counters.empty()) {
        out << "counters:\n";
        for (const auto& c : snap.counters) {
            out << "  " << full_name(c.name, c.label) << " = " << c.value << "\n";
        }
    }
    if (!snap.gauges.empty()) {
        out << "gauges:\n";
        for (const auto& g : snap.gauges) {
            out << "  " << full_name(g.name, g.label) << " = " << g.value << "\n";
        }
    }
    if (!snap.histograms.empty()) {
        out << "histograms:\n";
        for (const auto& h : snap.histograms) {
            out << "  " << full_name(h.name, h.label) << ": count=" << h.count
                << " mean=" << fmt_double_short(h.count ? h.sum / static_cast<double>(h.count) : 0)
                << " p50=" << fmt_double_short(h.p50) << " p95=" << fmt_double_short(h.p95)
                << " p99=" << fmt_double_short(h.p99) << "\n";
        }
    }
    if (!snap.trace.empty() || snap.trace_dropped != 0) {
        out << "trace (" << snap.trace.size() << " events, " << snap.trace_dropped
            << " dropped):\n";
        for (const auto& ev : snap.trace) {
            out << "  [" << to_string(ev.at) << "] " << event_kind_name(ev.kind);
            if (ev.span != 0) out << " #" << ev.span;
            if (ev.trace != 0) {
                out << " t" << ev.trace;
                if (ev.parent != 0) out << "<#" << ev.parent;
            }
            if (!ev.component.empty()) out << " " << ev.component;
            if (!ev.name.empty()) out << " " << ev.name;
            for (const auto& [k, v] : ev.kv) out << " " << k << "=" << v;
            out << "\n";
        }
    }
    return out.str();
}

// ------------------------------------------------------------- to_json ----

namespace {

void json_string(std::ostringstream& out, std::string_view s) {
    out << '"';
    for (char ch : s) {
        switch (ch) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            case '\r': out << "\\r"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                    out << buf;
                } else {
                    out << ch;
                }
        }
    }
    out << '"';
}

template <typename T, typename Fn>
void json_array(std::ostringstream& out, const std::vector<T>& items, Fn fn) {
    out << '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out << ',';
        fn(items[i]);
    }
    out << ']';
}

}  // namespace

std::string to_json(const Snapshot& snap) {
    std::ostringstream out;
    out << "{\"counters\":";
    json_array(out, snap.counters, [&](const CounterSample& c) {
        out << "{\"name\":";
        json_string(out, c.name);
        out << ",\"label\":";
        json_string(out, c.label);
        out << ",\"value\":" << c.value << "}";
    });
    out << ",\"gauges\":";
    json_array(out, snap.gauges, [&](const GaugeSample& g) {
        out << "{\"name\":";
        json_string(out, g.name);
        out << ",\"label\":";
        json_string(out, g.label);
        out << ",\"value\":" << g.value << "}";
    });
    out << ",\"histograms\":";
    json_array(out, snap.histograms, [&](const HistogramSample& h) {
        out << "{\"name\":";
        json_string(out, h.name);
        out << ",\"label\":";
        json_string(out, h.label);
        out << ",\"count\":" << h.count << ",\"sum\":" << fmt_double(h.sum) << ",\"bounds\":";
        json_array(out, h.bounds, [&](double b) { out << fmt_double(b); });
        out << ",\"buckets\":";
        json_array(out, h.buckets, [&](std::uint64_t b) { out << b; });
        out << ",\"p50\":" << fmt_double(h.p50) << ",\"p95\":" << fmt_double(h.p95)
            << ",\"p99\":" << fmt_double(h.p99) << "}";
    });
    out << ",\"trace_dropped\":" << snap.trace_dropped << ",\"trace\":";
    json_array(out, snap.trace, [&](const TraceEvent& ev) {
        out << "{\"at_ns\":" << ev.at.ns << ",\"kind\":";
        json_string(out, event_kind_name(ev.kind));
        out << ",\"span\":" << ev.span << ",\"trace\":" << ev.trace
            << ",\"parent\":" << ev.parent << ",\"component\":";
        json_string(out, ev.component);
        out << ",\"name\":";
        json_string(out, ev.name);
        out << ",\"kv\":[";
        for (std::size_t i = 0; i < ev.kv.size(); ++i) {
            if (i) out << ',';
            out << '[';
            json_string(out, ev.kv[i].first);
            out << ',';
            json_string(out, ev.kv[i].second);
            out << ']';
        }
        out << "]}";
    });
    out << "}";
    return out.str();
}

// --------------------------------------------------- snapshot_from_json ----
//
// Minimal recursive-descent JSON parser — enough for our own renderer's
// output plus harmless whitespace. Not a general-purpose JSON library.

namespace {

class JsonCursor {
public:
    explicit JsonCursor(std::string_view text) : text_(text) {}

    void skip_ws() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char ch) {
        if (peek() != ch) fail(std::string("expected '") + ch + "'");
        ++pos_;
    }

    bool consume(char ch) {
        if (pos_ < text_.size() && peek() == ch) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char ch = text_[pos_++];
            if (ch == '"') return out;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size()) fail("dangling escape");
            char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // Our renderer only emits \u for control bytes.
                    out += static_cast<char>(code & 0xFF);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    /// Raw number token; callers convert with strtoull/strtoll/strtod so
    /// 64-bit counters survive without a double round-trip.
    std::string parse_number_token() {
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < text_.size()) {
            char ch = text_[pos_];
            if ((ch >= '0' && ch <= '9') || ch == '-' || ch == '+' || ch == '.' || ch == 'e' ||
                ch == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected number");
        return std::string(text_.substr(start, pos_ - start));
    }

    std::uint64_t parse_u64() { return std::strtoull(parse_number_token().c_str(), nullptr, 10); }
    std::int64_t parse_i64() { return std::strtoll(parse_number_token().c_str(), nullptr, 10); }
    double parse_double() { return std::strtod(parse_number_token().c_str(), nullptr); }

    /// Iterate "key": <value> pairs of an object; fn must consume the value.
    template <typename Fn>
    void parse_object(Fn fn) {
        expect('{');
        if (consume('}')) return;
        while (true) {
            std::string key = parse_string();
            expect(':');
            fn(key);
            if (consume(',')) continue;
            expect('}');
            return;
        }
    }

    /// Iterate elements of an array; fn must consume each element.
    template <typename Fn>
    void parse_array(Fn fn) {
        expect('[');
        if (consume(']')) return;
        while (true) {
            fn();
            if (consume(',')) continue;
            expect(']');
            return;
        }
    }

    [[noreturn]] void fail(const std::string& what) {
        throw std::runtime_error("snapshot json parse error at offset " + std::to_string(pos_) +
                                 ": " + what);
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

EventKind parse_event_kind(const std::string& s, JsonCursor& cur) {
    if (s == "span_begin") return EventKind::kSpanBegin;
    if (s == "span_end") return EventKind::kSpanEnd;
    if (s == "instant") return EventKind::kInstant;
    cur.fail("unknown event kind '" + s + "'");
}

}  // namespace

Snapshot snapshot_from_json(std::string_view json) {
    Snapshot snap;
    JsonCursor cur(json);
    cur.parse_object([&](const std::string& key) {
        if (key == "counters") {
            cur.parse_array([&] {
                CounterSample c;
                cur.parse_object([&](const std::string& k) {
                    if (k == "name") c.name = cur.parse_string();
                    else if (k == "label") c.label = cur.parse_string();
                    else if (k == "value") c.value = cur.parse_u64();
                    else cur.fail("unknown counter field '" + k + "'");
                });
                snap.counters.push_back(std::move(c));
            });
        } else if (key == "gauges") {
            cur.parse_array([&] {
                GaugeSample g;
                cur.parse_object([&](const std::string& k) {
                    if (k == "name") g.name = cur.parse_string();
                    else if (k == "label") g.label = cur.parse_string();
                    else if (k == "value") g.value = cur.parse_i64();
                    else cur.fail("unknown gauge field '" + k + "'");
                });
                snap.gauges.push_back(std::move(g));
            });
        } else if (key == "histograms") {
            cur.parse_array([&] {
                HistogramSample h;
                cur.parse_object([&](const std::string& k) {
                    if (k == "name") h.name = cur.parse_string();
                    else if (k == "label") h.label = cur.parse_string();
                    else if (k == "count") h.count = cur.parse_u64();
                    else if (k == "sum") h.sum = cur.parse_double();
                    else if (k == "bounds") cur.parse_array([&] { h.bounds.push_back(cur.parse_double()); });
                    else if (k == "buckets") cur.parse_array([&] { h.buckets.push_back(cur.parse_u64()); });
                    else if (k == "p50") h.p50 = cur.parse_double();
                    else if (k == "p95") h.p95 = cur.parse_double();
                    else if (k == "p99") h.p99 = cur.parse_double();
                    else cur.fail("unknown histogram field '" + k + "'");
                });
                snap.histograms.push_back(std::move(h));
            });
        } else if (key == "trace_dropped") {
            snap.trace_dropped = cur.parse_u64();
        } else if (key == "trace") {
            cur.parse_array([&] {
                TraceEvent ev;
                cur.parse_object([&](const std::string& k) {
                    if (k == "at_ns") ev.at.ns = cur.parse_i64();
                    else if (k == "kind") ev.kind = parse_event_kind(cur.parse_string(), cur);
                    else if (k == "span") ev.span = cur.parse_u64();
                    else if (k == "trace") ev.trace = cur.parse_u64();
                    else if (k == "parent") ev.parent = cur.parse_u64();
                    else if (k == "component") ev.component = cur.parse_string();
                    else if (k == "name") ev.name = cur.parse_string();
                    else if (k == "kv") {
                        cur.parse_array([&] {
                            std::pair<std::string, std::string> kv;
                            cur.expect('[');
                            kv.first = cur.parse_string();
                            cur.expect(',');
                            kv.second = cur.parse_string();
                            cur.expect(']');
                            ev.kv.push_back(std::move(kv));
                        });
                    } else {
                        cur.fail("unknown trace field '" + k + "'");
                    }
                });
                snap.trace.push_back(std::move(ev));
            });
        } else {
            cur.fail("unknown snapshot field '" + key + "'");
        }
    });
    return snap;
}

}  // namespace pmp::obs
