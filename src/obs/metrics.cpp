#include "obs/metrics.h"

#include <algorithm>
#include <tuple>

namespace pmp::obs {

// ----------------------------------------------------------- Histogram ----

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.empty()) bounds_ = latency_ns_bounds();
    buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
    if (!detail::g_enabled) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
}

double Histogram::quantile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(count_);
    double cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double next = cumulative + static_cast<double>(buckets_[i]);
        if (next >= rank && buckets_[i] > 0) {
            if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
            double lo = i == 0 ? 0.0 : bounds_[i - 1];
            double hi = bounds_[i];
            double fraction = (rank - cumulative) / static_cast<double>(buckets_[i]);
            return lo + fraction * (hi - lo);
        }
        cumulative = next;
    }
    return bounds_.back();
}

void Histogram::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
}

namespace {
std::vector<double> exponential_edges(double lo, double hi) {
    // 1 / 2.5 / 5 per decade, the classic log-friendly ladder.
    std::vector<double> out;
    for (double decade = lo; decade <= hi; decade *= 10) {
        out.push_back(decade);
        if (decade * 2.5 <= hi) out.push_back(decade * 2.5);
        if (decade * 5 <= hi) out.push_back(decade * 5);
    }
    return out;
}
}  // namespace

const std::vector<double>& Histogram::latency_ns_bounds() {
    static const std::vector<double> kBounds = exponential_edges(50, 1e8);
    return kBounds;
}

const std::vector<double>& Histogram::latency_ms_bounds() {
    static const std::vector<double> kBounds = exponential_edges(0.1, 60'000);
    return kBounds;
}

// ------------------------------------------------------------ Registry ----

Registry& Registry::global() {
    static Registry registry;
    return registry;
}

template <typename T>
Registry::Slot<T>& Registry::slot(std::map<std::string, Family<T>, std::less<>>& families,
                                  std::string_view name, std::string_view label, bool pin) {
    auto fam_it = families.find(name);
    if (fam_it == families.end()) {
        fam_it = families.emplace(std::string(name), Family<T>{}).first;
    }
    Family<T>& family = fam_it->second;
    auto it = family.find(label);
    if (it == family.end()) {
        // Cardinality cap: overflow labels share one slot per family. The
        // unlabelled slot does not count against the cap.
        if (!label.empty() && family.size() >= kLabelCap) {
            it = family.find(kOverflowLabel);
            if (it == family.end()) {
                it = family.emplace(std::string(kOverflowLabel), Slot<T>{}).first;
            }
        } else {
            it = family.emplace(std::string(label), Slot<T>{}).first;
        }
    }
    if (!it->second.metric) it->second.metric = std::make_unique<T>();
    if (pin) it->second.pinned = true;
    return it->second;
}

// Histogram has no default constructor; specialise slot creation.
template <>
Registry::Slot<Histogram>& Registry::slot<Histogram>(
    std::map<std::string, Family<Histogram>, std::less<>>& families, std::string_view name,
    std::string_view label, bool pin) {
    auto fam_it = families.find(name);
    if (fam_it == families.end()) {
        fam_it = families.emplace(std::string(name), Family<Histogram>{}).first;
    }
    Family<Histogram>& family = fam_it->second;
    auto it = family.find(label);
    if (it == family.end()) {
        if (!label.empty() && family.size() >= kLabelCap) {
            it = family.find(kOverflowLabel);
            if (it == family.end()) {
                it = family.emplace(std::string(kOverflowLabel), Slot<Histogram>{}).first;
            }
        } else {
            it = family.emplace(std::string(label), Slot<Histogram>{}).first;
        }
    }
    if (pin) it->second.pinned = true;
    return it->second;
}

template <typename T>
void Registry::release(std::map<std::string, Family<T>, std::less<>>& families,
                       std::string_view name, std::string_view label) {
    auto fam_it = families.find(name);
    if (fam_it == families.end()) return;
    auto it = fam_it->second.find(label);
    if (it == fam_it->second.end()) return;
    if (--it->second.owners <= 0 && !it->second.pinned) {
        fam_it->second.erase(it);
        if (fam_it->second.empty()) families.erase(fam_it);
    }
}

Counter& Registry::counter(std::string_view name, std::string_view label) {
    std::lock_guard<std::mutex> lock(mu_);
    return *slot(counters_, name, label, /*pin=*/true).metric;
}

Gauge& Registry::gauge(std::string_view name, std::string_view label) {
    std::lock_guard<std::mutex> lock(mu_);
    return *slot(gauges_, name, label, /*pin=*/true).metric;
}

Histogram& Registry::histogram(std::string_view name, std::string_view label,
                               std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    Slot<Histogram>& s = slot(histograms_, name, label, /*pin=*/true);
    if (!s.metric) s.metric = std::make_unique<Histogram>(std::move(bounds));
    return *s.metric;
}

Counter& Registry::acquire_counter(std::string_view name, std::string_view label) {
    std::lock_guard<std::mutex> lock(mu_);
    Slot<Counter>& s = slot(counters_, name, label, /*pin=*/false);
    ++s.owners;
    return *s.metric;
}

void Registry::release_counter(std::string_view name, std::string_view label) {
    std::lock_guard<std::mutex> lock(mu_);
    release(counters_, name, label);
}

Gauge& Registry::acquire_gauge(std::string_view name, std::string_view label) {
    std::lock_guard<std::mutex> lock(mu_);
    Slot<Gauge>& s = slot(gauges_, name, label, /*pin=*/false);
    ++s.owners;
    return *s.metric;
}

void Registry::release_gauge(std::string_view name, std::string_view label) {
    std::lock_guard<std::mutex> lock(mu_);
    release(gauges_, name, label);
}

void Registry::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [_, family] : counters_) {
        for (auto& [__, s] : family) s.metric->reset();
    }
    for (auto& [_, family] : gauges_) {
        for (auto& [__, s] : family) s.metric->reset();
    }
    for (auto& [_, family] : histograms_) {
        for (auto& [__, s] : family) {
            if (s.metric) s.metric->reset();
        }
    }
}

// Visitors gather (name, label, metric) under the lock, then run the
// callback outside it: the metrics are slot-pinned so the pointers stay
// valid, and a callback that re-enters the registry cannot deadlock.
void Registry::visit_counters(
    const std::function<void(const std::string&, const std::string&, const Counter&)>& fn)
    const {
    std::vector<std::tuple<const std::string*, const std::string*, const Counter*>> items;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [name, family] : counters_) {
            for (const auto& [label, s] : family) items.emplace_back(&name, &label, s.metric.get());
        }
    }
    for (const auto& [name, label, c] : items) fn(*name, *label, *c);
}

void Registry::visit_gauges(
    const std::function<void(const std::string&, const std::string&, const Gauge&)>& fn) const {
    std::vector<std::tuple<const std::string*, const std::string*, const Gauge*>> items;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [name, family] : gauges_) {
            for (const auto& [label, s] : family) items.emplace_back(&name, &label, s.metric.get());
        }
    }
    for (const auto& [name, label, g] : items) fn(*name, *label, *g);
}

void Registry::visit_histograms(
    const std::function<void(const std::string&, const std::string&, const Histogram&)>& fn)
    const {
    std::vector<std::tuple<const std::string*, const std::string*, const Histogram*>> items;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [name, family] : histograms_) {
            for (const auto& [label, s] : family) {
                if (s.metric) items.emplace_back(&name, &label, s.metric.get());
            }
        }
    }
    for (const auto& [name, label, h] : items) fn(*name, *label, *h);
}

std::size_t Registry::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& [_, family] : counters_) n += family.size();
    for (const auto& [_, family] : gauges_) n += family.size();
    for (const auto& [_, family] : histograms_) n += family.size();
    return n;
}

}  // namespace pmp::obs
