// Process-wide metrics registry (counters, gauges, histograms).
//
// The paper's evaluation is all about *measuring* the platform — the ~7%
// carrying cost, weaving latency, monitoring traffic — so measurement is a
// first-class subsystem, not ad-hoc structs scattered through the code.
// Metrics are keyed by a dotted `component.name` plus an optional label
// (per-aspect, per-node, per-network). Recording is one relaxed atomic
// increment behind one global enable flag: cheap enough to live on the
// interception hot path even when the sharded simulator records from
// several worker threads at once (relaxed suffices — counters are summed,
// never ordered against other memory), and the flag lets benchmarks price
// the instrumentation itself (enabled vs. compiled-in-but-idle).
//
// Lifetime: metrics obtained through `Registry::counter()` (and friends)
// are pinned — they live as long as the registry. Per-instance metrics
// (one network, one adaptation service) are *acquired* instead; releasing
// the slot when the instance dies lets a successor with the same label
// start from zero, which is what keeps the legacy `stats()` views exact
// across sequential test scenarios. `Owned*` RAII handles do the
// acquire/release pairing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pmp::obs {

namespace detail {
/// One global switch for every registry and trace buffer in the process.
/// Inline so the hot-path check compiles to a load + predictable branch.
inline bool g_enabled = true;
}  // namespace detail

inline bool enabled() { return detail::g_enabled; }
inline void set_enabled(bool on) { detail::g_enabled = on; }

/// Monotonic event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) {
        if (detail::g_enabled) value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (extensions active, tuples stored, ...).
class Gauge {
public:
    void set(std::int64_t v) {
        if (detail::g_enabled) value_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t d) {
        if (detail::g_enabled) value_.fetch_add(d, std::memory_order_relaxed);
    }
    std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges of the finite
/// buckets, strictly increasing; one implicit overflow bucket follows.
/// Quantiles interpolate linearly inside the bucket that crosses the rank,
/// which is exact enough for latency reporting (p50/p95/p99) without ever
/// storing samples.
/// Writes from concurrent shard workers are serialized by a per-histogram
/// mutex (histograms are off the per-dispatch fast path). The aggregate
/// read accessors lock too; `bounds()`/`buckets()` return references and
/// are for quiesced readers (exporters between windows, tests after run).
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    std::uint64_t count() const {
        std::lock_guard<std::mutex> lock(mu_);
        return count_;
    }
    double sum() const {
        std::lock_guard<std::mutex> lock(mu_);
        return sum_;
    }
    const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket counts; size == bounds().size() + 1 (last = overflow).
    const std::vector<std::uint64_t>& buckets() const { return buckets_; }

    /// q in [0,1]. Returns 0 when empty; clamps to the largest finite bound
    /// for ranks landing in the overflow bucket.
    double quantile(double q) const;

    double mean() const {
        std::lock_guard<std::mutex> lock(mu_);
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    void reset();

    /// Exponential edges suited to nanosecond latencies (50ns .. 100ms).
    static const std::vector<double>& latency_ns_bounds();
    /// Exponential edges suited to millisecond round-trips (0.1ms .. 60s).
    static const std::vector<double>& latency_ms_bounds();

private:
    mutable std::mutex mu_;
    std::vector<double> bounds_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
};

/// The registry: name -> label -> metric. `Registry::global()` is the
/// process-wide instance everything reports into; tests may build private
/// ones. Label cardinality is capped per metric name: once a family holds
/// `kLabelCap` distinct labels, further labels collapse into the
/// `kOverflowLabel` slot so a misbehaving caller (per-request labels, say)
/// degrades the metric instead of growing memory without bound.
class Registry {
public:
    static constexpr std::size_t kLabelCap = 64;
    static constexpr const char* kOverflowLabel = "~other";

    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    static Registry& global();

    /// Pinned lookup-or-create. References stay valid for the registry's
    /// lifetime; hot paths should cache them.
    Counter& counter(std::string_view name, std::string_view label = {});
    Gauge& gauge(std::string_view name, std::string_view label = {});
    /// `bounds` is used on first creation only; empty selects the ns
    /// latency edges.
    Histogram& histogram(std::string_view name, std::string_view label = {},
                         std::vector<double> bounds = {});

    /// Instance-owned lookup-or-create: refcounted, the slot is erased when
    /// the last owner releases it (unless a pinned user also holds it).
    Counter& acquire_counter(std::string_view name, std::string_view label);
    void release_counter(std::string_view name, std::string_view label);
    Gauge& acquire_gauge(std::string_view name, std::string_view label);
    void release_gauge(std::string_view name, std::string_view label);

    /// Zero every metric (registrations and pins stay).
    void reset();

    /// Deterministic iteration for exporters: families sorted by name,
    /// slots sorted by label.
    void visit_counters(
        const std::function<void(const std::string& name, const std::string& label,
                                 const Counter&)>& fn) const;
    void visit_gauges(const std::function<void(const std::string& name, const std::string& label,
                                               const Gauge&)>& fn) const;
    void visit_histograms(
        const std::function<void(const std::string& name, const std::string& label,
                                 const Histogram&)>& fn) const;

    /// Number of distinct (name, label) slots across all metric kinds.
    std::size_t size() const;

private:
    template <typename T>
    struct Slot {
        std::unique_ptr<T> metric;
        int owners = 0;    ///< acquire_*/release_* refcount
        bool pinned = false;  ///< ever handed out via the pinned accessors
    };
    template <typename T>
    using Family = std::map<std::string, Slot<T>, std::less<>>;

    template <typename T>
    Slot<T>& slot(std::map<std::string, Family<T>, std::less<>>& families,
                  std::string_view name, std::string_view label, bool pin);
    template <typename T>
    void release(std::map<std::string, Family<T>, std::less<>>& families,
                 std::string_view name, std::string_view label);

    /// Guards the family maps (lookup-or-create, release, visits). The
    /// metrics themselves are not guarded by this: Counter/Gauge are
    /// atomic, Histogram carries its own mutex, and handed-out references
    /// stay valid regardless (slots are unique_ptr-pinned).
    mutable std::mutex mu_;
    std::map<std::string, Family<Counter>, std::less<>> counters_;
    std::map<std::string, Family<Gauge>, std::less<>> gauges_;
    std::map<std::string, Family<Histogram>, std::less<>> histograms_;
};

/// RAII owner of a per-instance counter slot (see class comment above).
class OwnedCounter {
public:
    OwnedCounter(Registry& reg, std::string name, std::string label)
        : reg_(&reg),
          name_(std::move(name)),
          label_(std::move(label)),
          c_(&reg_->acquire_counter(name_, label_)) {}
    OwnedCounter(std::string name, std::string label = {})
        : OwnedCounter(Registry::global(), std::move(name), std::move(label)) {}
    ~OwnedCounter() {
        if (reg_) reg_->release_counter(name_, label_);
    }
    OwnedCounter(const OwnedCounter&) = delete;
    OwnedCounter& operator=(const OwnedCounter&) = delete;

    Counter& operator*() const { return *c_; }
    Counter* operator->() const { return c_; }
    std::uint64_t value() const { return c_->value(); }
    void inc(std::uint64_t n = 1) { c_->inc(n); }
    void reset() { c_->reset(); }

private:
    Registry* reg_;
    std::string name_;
    std::string label_;
    Counter* c_;
};

/// RAII owner of a per-instance gauge slot.
class OwnedGauge {
public:
    OwnedGauge(Registry& reg, std::string name, std::string label)
        : reg_(&reg),
          name_(std::move(name)),
          label_(std::move(label)),
          g_(&reg_->acquire_gauge(name_, label_)) {}
    OwnedGauge(std::string name, std::string label = {})
        : OwnedGauge(Registry::global(), std::move(name), std::move(label)) {}
    ~OwnedGauge() {
        if (reg_) reg_->release_gauge(name_, label_);
    }
    OwnedGauge(const OwnedGauge&) = delete;
    OwnedGauge& operator=(const OwnedGauge&) = delete;

    Gauge& operator*() const { return *g_; }
    Gauge* operator->() const { return g_; }
    std::int64_t value() const { return g_->value(); }

private:
    Registry* reg_;
    std::string name_;
    std::string label_;
    Gauge* g_;
};

}  // namespace pmp::obs
