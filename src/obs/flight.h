// The flight recorder: a second bounded ring for post-mortems.
//
// The main TraceBuffer is a diagnostic window — exporters read it while
// the system is healthy. The flight recorder models the black box: it
// passively mirrors every event the global trace ring records into its
// own (smaller) ring, and the moment something dies — midas::Supervisor
// cutting a node's power, the adaptation service quarantining an
// extension — the tail is *dumped*: frozen into a named Dump that
// eviction can no longer touch.
//
// Durability is split the way real black boxes split it: a quarantine
// happens while the node is alive, so the receiver journals its dump
// alongside the rest of its durable state (midas::ReceiverDurableState)
// and a restart recovers it — the post-mortem survives the power cord. A
// crash-restart gives no such opportunity (power first, then nothing);
// there the supervisor reads the chip at the moment of impact, so the
// dump survives the *node* but lives in supervisor memory, not a journal.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/trace.h"

namespace pmp::obs {

class FlightRecorder {
public:
    explicit FlightRecorder(std::size_t capacity = 256);

    static FlightRecorder& global();

    /// Mirror one event (called by the global TraceBuffer on every push).
    void observe(const TraceEvent& ev);

    /// Retained tail, oldest first.
    std::vector<TraceEvent> tail() const;

private:
    std::vector<TraceEvent> tail_locked() const;

public:

    /// One frozen post-mortem: who died, why, when, and the event tail
    /// leading up to it.
    struct Dump {
        std::string node;    ///< label of the dying node (or "" for global)
        std::string reason;  ///< e.g. "crash", "quarantine:hall/rogue"
        SimTime at;
        std::vector<TraceEvent> events;
    };

    /// Freeze the current tail. Dumps are kept newest-last, bounded at
    /// kMaxDumps (oldest forgotten first).
    const Dump& dump(std::string node, std::string reason, SimTime at);

    const std::vector<Dump>& dumps() const { return dumps_; }

    std::size_t size() const {
        std::lock_guard<std::mutex> lock(mu_);
        return size_;
    }
    std::size_t capacity() const {
        std::lock_guard<std::mutex> lock(mu_);
        return ring_.size();
    }
    /// Resize the ring (drops retained events; dumps are untouched).
    void set_capacity(std::size_t capacity);

    /// Forget retained events and dumps (tests).
    void clear();

    static constexpr std::size_t kMaxDumps = 32;

private:
    /// Crashes and quarantines can fire from any shard worker; the black
    /// box is one shared ring, so it locks (it is never on a hot path).
    mutable std::mutex mu_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::vector<Dump> dumps_;
};

}  // namespace pmp::obs
