#include "obs/trace.h"

#include "obs/flight.h"
#include "obs/metrics.h"

namespace pmp::obs {

const char* event_kind_name(EventKind k) {
    switch (k) {
        case EventKind::kSpanBegin: return "span_begin";
        case EventKind::kSpanEnd: return "span_end";
        case EventKind::kInstant: return "instant";
    }
    return "?";
}

namespace {
// Per-thread redirect target (see TraceBuffer::Redirect).
thread_local TraceBuffer* tl_redirect = nullptr;
}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

TraceBuffer& TraceBuffer::root() {
    static TraceBuffer buffer;
    return buffer;
}

TraceBuffer& TraceBuffer::global() { return tl_redirect != nullptr ? *tl_redirect : root(); }

TraceBuffer::Redirect::Redirect(TraceBuffer& target) : saved_(tl_redirect) {
    tl_redirect = &target;
}

TraceBuffer::Redirect::~Redirect() { tl_redirect = saved_; }

void TraceBuffer::push(TraceEvent ev) {
    if (size_ == ring_.size()) {
        ++dropped_;  // overwrite the oldest
        // If the evictee is a begin whose end has not been recorded yet,
        // forget its open-span entry: a later end_span is then an orphan
        // and says so, instead of silently claiming a linkage the ring no
        // longer holds.
        const TraceEvent& evicted = ring_[head_];
        if (evicted.kind == EventKind::kSpanBegin) {
            auto it = open_spans_.find(evicted.span);
            if (it != open_spans_.end() && it->second.slot == head_) open_spans_.erase(it);
        }
    } else {
        ++size_;
    }
    // Only the process-wide root buffer feeds the flight recorder; scratch
    // buffers in tests and per-shard buffers stay out of the black box.
    // (Compared against root(), not global(): a thread-local redirect must
    // not accidentally feed its shard's events into the black box.)
    if (this == &TraceBuffer::root()) FlightRecorder::global().observe(ev);
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % ring_.size();
    ++recorded_;
}

std::uint64_t TraceBuffer::begin_span(std::string component, std::string name, KeyValues kv) {
    return begin_span_at(now(), std::move(component), std::move(name), std::move(kv));
}

void TraceBuffer::end_span(std::uint64_t span, KeyValues kv) {
    end_span_at(now(), span, std::move(kv));
}

void TraceBuffer::instant(std::string component, std::string name, KeyValues kv) {
    instant_at(now(), std::move(component), std::move(name), std::move(kv));
}

TraceContext TraceBuffer::context_of(std::uint64_t span) const {
    auto it = open_spans_.find(span);
    if (span == 0 || it == open_spans_.end()) return TraceContext{};
    return TraceContext{it->second.trace, span};
}

TraceContext TraceBuffer::new_root() {
    if (!detail::g_enabled) return TraceContext{};
    return TraceContext{id_base_ + ++next_trace_, 0};
}

std::uint64_t TraceBuffer::begin_span_at(SimTime at, std::string component, std::string name,
                                         KeyValues kv) {
    if (!detail::g_enabled) return 0;
    std::uint64_t id = id_base_ + ++next_span_;
    TraceEvent ev{at,  EventKind::kSpanBegin,    id, 0, 0, std::move(component),
                  std::move(name), std::move(kv)};
    if (current_.valid()) {
        ev.trace = current_.trace_id;
        ev.parent = current_.parent_span;
    } else {
        ev.trace = id_base_ + ++next_trace_;  // no caller: this span roots a new trace
    }
    open_spans_.emplace(id, OpenSpan{ev.trace, ev.parent, head_});
    push(std::move(ev));
    return id;
}

void TraceBuffer::end_span_at(SimTime at, std::uint64_t span, KeyValues kv) {
    if (!detail::g_enabled || span == 0) return;
    TraceEvent ev{at, EventKind::kSpanEnd, span, 0, 0, {}, {}, std::move(kv)};
    auto it = open_spans_.find(span);
    if (it != open_spans_.end()) {
        ev.trace = it->second.trace;
        ev.parent = it->second.parent;
        open_spans_.erase(it);
    } else {
        // The begin was evicted (or never recorded): account for it
        // honestly rather than emitting a dangling linkage.
        ++orphan_ends_;
        static Counter& orphans = Registry::global().counter("obs.trace.orphan_ends");
        orphans.inc();
        ev.kv.emplace_back("orphan", "true");
    }
    push(std::move(ev));
}

void TraceBuffer::instant_at(SimTime at, std::string component, std::string name, KeyValues kv) {
    if (!detail::g_enabled) return;
    TraceEvent ev{at,  EventKind::kInstant,      0, current_.trace_id, current_.parent_span,
                  std::move(component), std::move(name), std::move(kv)};
    push(std::move(ev));
}

std::vector<TraceEvent> TraceBuffer::events() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest event sits at head_ when full, at 0 otherwise.
    std::size_t start = size_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

void TraceBuffer::clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    recorded_ = 0;
    orphan_ends_ = 0;
    next_span_ = 0;
    next_trace_ = 0;
    open_spans_.clear();
    // current_ is deliberately left alone: it belongs to live ContextScope
    // frames on the stack, not to the ring's contents.
}

std::uint64_t TraceBuffer::set_clock(std::function<SimTime()> clock) {
    std::uint64_t token = ++next_clock_token_;
    clocks_.push_back(ClockEntry{token, std::move(clock)});
    return token;
}

void TraceBuffer::clear_clock(std::uint64_t token) {
    std::erase_if(clocks_, [token](const ClockEntry& e) { return e.token == token; });
}

}  // namespace pmp::obs
