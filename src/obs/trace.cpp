#include "obs/trace.h"

#include "obs/metrics.h"

namespace pmp::obs {

const char* event_kind_name(EventKind k) {
    switch (k) {
        case EventKind::kSpanBegin: return "span_begin";
        case EventKind::kSpanEnd: return "span_end";
        case EventKind::kInstant: return "instant";
    }
    return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

TraceBuffer& TraceBuffer::global() {
    static TraceBuffer buffer;
    return buffer;
}

void TraceBuffer::push(TraceEvent ev) {
    if (size_ == ring_.size()) {
        ++dropped_;  // overwrite the oldest
    } else {
        ++size_;
    }
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % ring_.size();
    ++recorded_;
}

std::uint64_t TraceBuffer::begin_span(std::string component, std::string name, KeyValues kv) {
    return begin_span_at(now(), std::move(component), std::move(name), std::move(kv));
}

void TraceBuffer::end_span(std::uint64_t span, KeyValues kv) {
    end_span_at(now(), span, std::move(kv));
}

void TraceBuffer::instant(std::string component, std::string name, KeyValues kv) {
    instant_at(now(), std::move(component), std::move(name), std::move(kv));
}

std::uint64_t TraceBuffer::begin_span_at(SimTime at, std::string component, std::string name,
                                         KeyValues kv) {
    if (!detail::g_enabled) return 0;
    std::uint64_t id = ++next_span_;
    push(TraceEvent{at, EventKind::kSpanBegin, id, std::move(component), std::move(name),
                    std::move(kv)});
    return id;
}

void TraceBuffer::end_span_at(SimTime at, std::uint64_t span, KeyValues kv) {
    if (!detail::g_enabled || span == 0) return;
    push(TraceEvent{at, EventKind::kSpanEnd, span, {}, {}, std::move(kv)});
}

void TraceBuffer::instant_at(SimTime at, std::string component, std::string name, KeyValues kv) {
    if (!detail::g_enabled) return;
    push(TraceEvent{at, EventKind::kInstant, 0, std::move(component), std::move(name),
                    std::move(kv)});
}

std::vector<TraceEvent> TraceBuffer::events() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest event sits at head_ when full, at 0 otherwise.
    std::size_t start = size_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

void TraceBuffer::clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    recorded_ = 0;
    next_span_ = 0;
}

std::uint64_t TraceBuffer::set_clock(std::function<SimTime()> clock) {
    clock_ = std::move(clock);
    return ++clock_token_;
}

void TraceBuffer::clear_clock(std::uint64_t token) {
    if (token == clock_token_) clock_ = nullptr;
}

}  // namespace pmp::obs
