// Snapshot + exporters for the observability layer.
//
// A Snapshot is a value-type copy of everything the registry and trace ring
// hold at one instant: benches take one before and one after a phase, diff
// them, and examples dump one at exit. Two renderers: `to_text` for humans
// (aligned columns, histograms as p50/p95/p99), `to_json` for tools.
// `snapshot_from_json` parses the JSON renderer's own output back into a
// Snapshot — the round-trip is tested, which keeps the wire format honest.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmp::obs {

struct CounterSample {
    std::string name;
    std::string label;
    std::uint64_t value = 0;

    bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
    std::string name;
    std::string label;
    std::int64_t value = 0;

    bool operator==(const GaugeSample&) const = default;
};

struct HistogramSample {
    std::string name;
    std::string label;
    std::uint64_t count = 0;
    double sum = 0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;

    bool operator==(const HistogramSample&) const = default;
};

struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
    std::uint64_t trace_dropped = 0;
    std::vector<TraceEvent> trace;

    bool operator==(const Snapshot&) const = default;

    /// Value of a counter sample, 0 when absent — convenient in asserts.
    std::uint64_t counter(std::string_view name, std::string_view label = {}) const;
};

/// Copy the current state of a registry and trace ring.
Snapshot snapshot(const Registry& reg = Registry::global(),
                  const TraceBuffer& trace = TraceBuffer::global());

/// Metrics only (skips the trace ring) — what benches usually diff.
Snapshot snapshot_metrics(const Registry& reg = Registry::global());

/// Human-readable rendering.
std::string to_text(const Snapshot& snap);

/// JSON rendering; stable field order, doubles printed to full precision.
std::string to_json(const Snapshot& snap);

/// Parse `to_json` output back into a Snapshot. Throws std::runtime_error
/// on malformed input.
Snapshot snapshot_from_json(std::string_view json);

}  // namespace pmp::obs
