// Bounded trace ring of structured events, with causal context.
//
// Where the metrics registry answers "how many / how fast", the trace ring
// answers "what happened, in what order": span begin/end pairs for the
// platform's long operations (weave, withdraw, RPC round-trips, package
// push/verify) and instant events for point occurrences (lease renew,
// lease expire, signature rejection). Events carry the virtual SimTime,
// a canonical component name, and a small key/value payload.
//
// Causality: every event additionally carries a trace id and a parent
// span. The buffer holds one *ambient* TraceContext — installed with the
// RAII ContextScope by whatever is currently executing on behalf of a
// span (an rpc dispatch, a delivered message's handler) — and stamps it
// onto events as they are recorded. A begin_span with no ambient context
// roots a fresh trace. Both span and trace ids are plain counters, so a
// deterministic simulation replays to byte-identical causal trees.
//
// The buffer is a fixed-capacity ring: recording never allocates beyond
// the high-water mark and old events are evicted oldest-first, so tracing
// can stay on permanently — the cost of a busy system is forgetting the
// distant past, not growing without bound. An end_span whose begin was
// already evicted is counted (`obs.trace.orphan_ends`) and tagged
// `orphan=true` so exporters render it honestly instead of silently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"

namespace pmp::obs {

enum class EventKind : std::uint8_t { kSpanBegin, kSpanEnd, kInstant };

const char* event_kind_name(EventKind k);

/// Key/value payload: small, ordered, stringly — render-friendly.
using KeyValues = std::vector<std::pair<std::string, std::string>>;

/// Causal position: which trace new events belong to and which span caused
/// them. Carried ambiently by the TraceBuffer and across the simulated
/// radio by net::Message, so cross-node chains share one trace id.
struct TraceContext {
    std::uint64_t trace_id = 0;    ///< 0 = no trace (events root fresh ones)
    std::uint64_t parent_span = 0; ///< 0 = root position within the trace

    bool valid() const { return trace_id != 0; }
    bool operator==(const TraceContext&) const = default;
};

struct TraceEvent {
    SimTime at;
    EventKind kind = EventKind::kInstant;
    std::uint64_t span = 0;    ///< nonzero links a begin to its end
    std::uint64_t trace = 0;   ///< causal tree this event belongs to
    std::uint64_t parent = 0;  ///< span that caused it (0 = root)
    std::string component;     ///< canonical component name (see component.h)
    std::string name;          ///< operation, e.g. "weave", "rpc.call"
    KeyValues kv;

    bool operator==(const TraceEvent&) const = default;
};

/// A TraceBuffer is confined to one thread at a time: the root buffer to
/// whichever thread runs the sequential world (or the sharded kernel's
/// coordinator), a shard's buffer to whichever worker is running that
/// shard's window. The window barrier publishes writes between owners, so
/// the buffer itself carries no locks.
class TraceBuffer {
public:
    explicit TraceBuffer(std::size_t capacity = 1024);

    /// The thread's redirect target when one is installed (sharded
    /// workers), else the process-wide root buffer.
    static TraceBuffer& global();

    /// While alive, TraceBuffer::global() *on this thread* resolves to
    /// `target` — how a simulation shard records into its own buffer
    /// without threading a TraceBuffer& through every subsystem. Nests
    /// (strictly scoped, per thread).
    class Redirect {
    public:
        explicit Redirect(TraceBuffer& target);
        ~Redirect();
        Redirect(const Redirect&) = delete;
        Redirect& operator=(const Redirect&) = delete;

    private:
        TraceBuffer* saved_;
    };

    /// Partition span/trace ids: every id handed out after this call is
    /// `base + n`. Each shard's buffer gets a disjoint namespace so merged
    /// causal trees never collide; the base survives clear().
    void set_id_namespace(std::uint64_t base) { id_base_ = base; }
    std::uint64_t id_namespace() const { return id_base_; }

    /// Begin a span; returns its id for end_span. Timestamps come from the
    /// installed clock (the live simulator); SimTime::zero() without one.
    /// The span joins the ambient trace (parented under its parent_span),
    /// or roots a fresh trace when no context is installed.
    std::uint64_t begin_span(std::string component, std::string name, KeyValues kv = {});
    void end_span(std::uint64_t span, KeyValues kv = {});
    void instant(std::string component, std::string name, KeyValues kv = {});

    /// Explicit-time variants for callers that carry their own SimTime.
    std::uint64_t begin_span_at(SimTime at, std::string component, std::string name,
                                KeyValues kv = {});
    void end_span_at(SimTime at, std::uint64_t span, KeyValues kv = {});
    void instant_at(SimTime at, std::string component, std::string name, KeyValues kv = {});

    /// The ambient causal context (invalid when nothing is executing on
    /// behalf of a span).
    TraceContext current() const { return current_; }

    /// Context that makes `span` the parent of subsequent events — what a
    /// caller installs (via ContextScope) while work caused by the span
    /// runs. Invalid for span 0 or a span the ring no longer tracks.
    TraceContext context_of(std::uint64_t span) const;

    /// Allocate a fresh trace root without recording an event — used by
    /// retry drivers that must pin every attempt to one trace before the
    /// first attempt's span exists. Invalid while obs is disabled.
    TraceContext new_root();

    /// RAII ambient-context switch. Single-threaded (like the simulator):
    /// scopes nest, never interleave.
    class ContextScope {
    public:
        ContextScope(TraceBuffer& buf, TraceContext ctx) : buf_(buf), saved_(buf.current_) {
            buf_.current_ = ctx;
        }
        ~ContextScope() { buf_.current_ = saved_; }
        ContextScope(const ContextScope&) = delete;
        ContextScope& operator=(const ContextScope&) = delete;

    private:
        TraceBuffer& buf_;
        TraceContext saved_;
    };

    /// All retained events, oldest first.
    std::vector<TraceEvent> events() const;

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    /// Events evicted so far to make room.
    std::uint64_t dropped() const { return dropped_; }
    /// Total events ever recorded.
    std::uint64_t recorded() const { return recorded_; }
    /// end_span calls whose begin had already been evicted from the ring
    /// (also counted globally as `obs.trace.orphan_ends`).
    std::uint64_t orphan_ends() const { return orphan_ends_; }

    void clear();

    /// High-volume spans (per-advice execution) are gated behind this
    /// extra switch so the default-on trace does not tax interception
    /// microbenchmarks. Flip on when debugging advice behaviour.
    bool detail() const { return detail_; }
    void set_detail(bool on) { detail_ = on; }

    /// Install a time source (the live simulator registers itself; see
    /// Simulator's scoped binding). Sources *stack*: the newest wins, and
    /// clear_clock removes by token from anywhere in the stack — so a
    /// bench that builds a scratch world inside a live one restores the
    /// outer simulator's clock instead of leaving a stale or null clock
    /// ("most recently constructed wins" is gone).
    std::uint64_t set_clock(std::function<SimTime()> clock);
    void clear_clock(std::uint64_t token);
    SimTime now() const { return clocks_.empty() ? SimTime::zero() : clocks_.back().fn(); }

private:
    /// The process-wide buffer (redirects resolve here by default). Only
    /// this one feeds the flight recorder.
    static TraceBuffer& root();

    void push(TraceEvent ev);

    /// Book-keeping for spans whose begin is still in the ring: lets
    /// end_span inherit the begin's context and detect orphans honestly.
    struct OpenSpan {
        std::uint64_t trace = 0;
        std::uint64_t parent = 0;
        std::size_t slot = 0;  ///< ring slot of the begin event
    };

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  ///< next write position
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t orphan_ends_ = 0;
    std::uint64_t next_span_ = 0;
    std::uint64_t next_trace_ = 0;
    std::uint64_t id_base_ = 0;  ///< namespace offset; survives clear()
    TraceContext current_;
    std::map<std::uint64_t, OpenSpan> open_spans_;  ///< bounded by ring capacity
    bool detail_ = false;
    struct ClockEntry {
        std::uint64_t token;
        std::function<SimTime()> fn;
    };
    std::vector<ClockEntry> clocks_;  ///< stack: back() is live
    std::uint64_t next_clock_token_ = 0;
};

}  // namespace pmp::obs
