// Bounded trace ring of structured events.
//
// Where the metrics registry answers "how many / how fast", the trace ring
// answers "what happened, in what order": span begin/end pairs for the
// platform's long operations (weave, withdraw, RPC round-trips, package
// push/verify) and instant events for point occurrences (lease renew,
// lease expire, signature rejection). Events carry the virtual SimTime,
// a canonical component name, and a small key/value payload.
//
// The buffer is a fixed-capacity ring: recording never allocates beyond
// the high-water mark and old events are evicted oldest-first, so tracing
// can stay on permanently — the cost of a busy system is forgetting the
// distant past, not growing without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"

namespace pmp::obs {

enum class EventKind : std::uint8_t { kSpanBegin, kSpanEnd, kInstant };

const char* event_kind_name(EventKind k);

/// Key/value payload: small, ordered, stringly — render-friendly.
using KeyValues = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
    SimTime at;
    EventKind kind = EventKind::kInstant;
    std::uint64_t span = 0;  ///< nonzero links a begin to its end
    std::string component;   ///< canonical component name (see component.h)
    std::string name;        ///< operation, e.g. "weave", "rpc.call"
    KeyValues kv;

    bool operator==(const TraceEvent&) const = default;
};

class TraceBuffer {
public:
    explicit TraceBuffer(std::size_t capacity = 1024);

    static TraceBuffer& global();

    /// Begin a span; returns its id for end_span. Timestamps come from the
    /// installed clock (the live simulator); SimTime::zero() without one.
    std::uint64_t begin_span(std::string component, std::string name, KeyValues kv = {});
    void end_span(std::uint64_t span, KeyValues kv = {});
    void instant(std::string component, std::string name, KeyValues kv = {});

    /// Explicit-time variants for callers that carry their own SimTime.
    std::uint64_t begin_span_at(SimTime at, std::string component, std::string name,
                                KeyValues kv = {});
    void end_span_at(SimTime at, std::uint64_t span, KeyValues kv = {});
    void instant_at(SimTime at, std::string component, std::string name, KeyValues kv = {});

    /// All retained events, oldest first.
    std::vector<TraceEvent> events() const;

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    /// Events evicted so far to make room.
    std::uint64_t dropped() const { return dropped_; }
    /// Total events ever recorded.
    std::uint64_t recorded() const { return recorded_; }

    void clear();

    /// High-volume spans (per-advice execution) are gated behind this
    /// extra switch so the default-on trace does not tax interception
    /// microbenchmarks. Flip on when debugging advice behaviour.
    bool detail() const { return detail_; }
    void set_detail(bool on) { detail_ = on; }

    /// Install the time source (the live simulator registers itself).
    /// Returns a token; clear_clock ignores stale tokens so a destroyed
    /// simulator cannot yank a successor's clock.
    std::uint64_t set_clock(std::function<SimTime()> clock);
    void clear_clock(std::uint64_t token);
    SimTime now() const { return clock_ ? clock_() : SimTime::zero(); }

private:
    void push(TraceEvent ev);

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  ///< next write position
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t next_span_ = 0;
    bool detail_ = false;
    std::function<SimTime()> clock_;
    std::uint64_t clock_token_ = 0;
};

}  // namespace pmp::obs
