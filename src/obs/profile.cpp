#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace pmp::obs {

Profiler& Profiler::global() {
    static Profiler profiler;
    return profiler;
}

namespace {

std::string site_label(const std::string& extension, const std::string& pointcut) {
    return extension + "|" + pointcut;
}

}  // namespace

Profiler::Site Profiler::site(const std::string& extension, const std::string& pointcut) {
    std::string label = site_label(extension, pointcut);
    auto& reg = Registry::global();
    return Site{&reg.counter("profile.advice_calls", label),
                &reg.histogram("profile.advice_ns", label)};
}

Counter* Profiler::step_counter(const std::string& extension) {
    return &Registry::global().counter("profile.steps", extension);
}

std::vector<ExtensionCost> attribution_from(const Snapshot& snap) {
    std::map<std::string, ExtensionCost> by_ext;
    auto split = [](const std::string& label) {
        auto bar = label.find('|');
        return std::pair<std::string, std::string>{label.substr(0, bar),
                                                   bar == std::string::npos
                                                       ? std::string{}
                                                       : label.substr(bar + 1)};
    };
    for (const HistogramSample& h : snap.histograms) {
        if (h.name != "profile.advice_ns") continue;
        auto [ext, pointcut] = split(h.label);
        ExtensionCost& cost = by_ext[ext];
        cost.extension = ext;
        cost.invocations += h.count;
        cost.total_ns += h.sum;
        cost.sites.push_back(SiteCost{ext, pointcut, h.count, h.sum, h.p95});
    }
    for (const CounterSample& c : snap.counters) {
        if (c.name != "profile.steps") continue;
        ExtensionCost& cost = by_ext[c.label];
        cost.extension = c.label;
        cost.steps += c.value;
    }
    std::vector<ExtensionCost> out;
    out.reserve(by_ext.size());
    for (auto& [_, cost] : by_ext) {
        std::sort(cost.sites.begin(), cost.sites.end(),
                  [](const SiteCost& a, const SiteCost& b) { return a.total_ns > b.total_ns; });
        out.push_back(std::move(cost));
    }
    std::sort(out.begin(), out.end(), [](const ExtensionCost& a, const ExtensionCost& b) {
        return a.total_ns > b.total_ns;
    });
    return out;
}

// ------------------------------------------------------------- trees ----

std::vector<TraceTree> build_trace_trees(const std::vector<TraceEvent>& events) {
    // trace id -> (span id -> index into that tree's spans).
    std::map<std::uint64_t, TraceTree> trees;
    std::map<std::uint64_t, std::map<std::uint64_t, std::size_t>> index;

    for (const TraceEvent& ev : events) {
        if (ev.trace == 0) continue;
        TraceTree& tree = trees[ev.trace];
        tree.trace_id = ev.trace;
        switch (ev.kind) {
            case EventKind::kSpanBegin: {
                SpanNode node;
                node.span = ev.span;
                node.parent = ev.parent;
                node.trace = ev.trace;
                node.begin = ev.at;
                node.component = ev.component;
                node.name = ev.name;
                node.kv = ev.kv;
                index[ev.trace][ev.span] = tree.spans.size();
                tree.spans.push_back(std::move(node));
                break;
            }
            case EventKind::kSpanEnd: {
                auto& spans = index[ev.trace];
                auto it = spans.find(ev.span);
                if (it == spans.end()) break;  // begin evicted: orphan end
                SpanNode& node = tree.spans[it->second];
                node.end = ev.at;
                node.ended = true;
                node.kv.insert(node.kv.end(), ev.kv.begin(), ev.kv.end());
                break;
            }
            case EventKind::kInstant:
                tree.instants.push_back(
                    TreeInstant{ev.at, ev.parent, ev.component, ev.name, ev.kv});
                break;
        }
    }

    std::vector<TraceTree> out;
    out.reserve(trees.size());
    for (auto& [trace_id, tree] : trees) {
        // Spans arrive in begin order; sort by span id for a stable shape
        // independent of interleaving, then link children.
        std::vector<std::size_t> order(tree.spans.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return tree.spans[a].span < tree.spans[b].span;
        });
        TraceTree sorted;
        sorted.trace_id = tree.trace_id;
        sorted.instants = std::move(tree.instants);
        std::map<std::uint64_t, std::size_t> at;
        for (std::size_t i : order) {
            at[tree.spans[i].span] = sorted.spans.size();
            sorted.spans.push_back(std::move(tree.spans[i]));
        }
        for (std::size_t i = 0; i < sorted.spans.size(); ++i) {
            SpanNode& node = sorted.spans[i];
            auto parent = node.parent ? at.find(node.parent) : at.end();
            if (parent != at.end()) {
                sorted.spans[parent->second].children.push_back(i);
            } else {
                sorted.roots.push_back(i);
            }
        }
        out.push_back(std::move(sorted));
    }
    return out;
}

namespace {

std::string fmt_ms(Duration d) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(d.count()) / 1e6);
    return buf;
}

std::string fmt_at(SimTime t) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(t.ns) / 1e6);
    return buf;
}

void render_span(const TraceTree& tree, std::size_t idx, int depth, std::ostringstream& out) {
    const SpanNode& node = tree.spans[idx];
    for (int i = 0; i < depth; ++i) out << "  ";
    out << "#" << node.span << " " << node.component << " " << node.name << " [at "
        << fmt_at(node.begin);
    if (node.ended) {
        out << " +" << fmt_ms(node.duration());
    } else {
        out << " unfinished";
    }
    out << "]";
    for (const auto& [k, v] : node.kv) out << " " << k << "=" << v;
    out << "\n";
    // Instants caused by this span, in recording order.
    for (const TreeInstant& inst : tree.instants) {
        if (inst.parent != node.span) continue;
        for (int i = 0; i < depth + 1; ++i) out << "  ";
        out << "· " << inst.component << " " << inst.name << " [at " << fmt_at(inst.at) << "]";
        for (const auto& [k, v] : inst.kv) out << " " << k << "=" << v;
        out << "\n";
    }
    for (std::size_t child : node.children) render_span(tree, child, depth + 1, out);
}

}  // namespace

std::string render_tree(const TraceTree& tree) {
    std::ostringstream out;
    out << "trace " << tree.trace_id << " (" << tree.spans.size() << " spans, "
        << tree.instants.size() << " instants)\n";
    for (std::size_t root : tree.roots) render_span(tree, root, 1, out);
    for (const TreeInstant& inst : tree.instants) {
        if (inst.parent != 0) continue;
        out << "  · " << inst.component << " " << inst.name << " [at " << fmt_at(inst.at) << "]";
        for (const auto& [k, v] : inst.kv) out << " " << k << "=" << v;
        out << "\n";
    }
    return out.str();
}

std::vector<CriticalHop> critical_path(const TraceTree& tree) {
    std::vector<CriticalHop> out;
    // Start from the longest finished root: the span that bounded the
    // whole trace.
    const SpanNode* current = nullptr;
    for (std::size_t root : tree.roots) {
        const SpanNode& node = tree.spans[root];
        if (!node.ended) continue;
        if (!current || node.duration() > current->duration()) current = &node;
    }
    while (current) {
        // The child that finished last is the one the parent waited for.
        const SpanNode* next = nullptr;
        for (std::size_t child : current->children) {
            const SpanNode& node = tree.spans[child];
            if (!node.ended) continue;
            if (!next || node.end > next->end) next = &node;
        }
        Duration self = current->duration();
        if (next && next->duration() < self) self = self - next->duration();
        else if (next) self = Duration{0};
        out.push_back(
            CriticalHop{current->span, current->component, current->name,
                        current->duration(), self});
        current = next;
    }
    return out;
}

// ------------------------------------------------------ chrome export ----

namespace {

void chrome_string(std::ostringstream& out, const std::string& s) {
    out << '"';
    for (char ch : s) {
        switch (ch) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            case '\r': out << "\\r"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                    out << buf;
                } else {
                    out << ch;
                }
        }
    }
    out << '"';
}

void chrome_args(std::ostringstream& out, const KeyValues& kv) {
    out << "\"args\":{";
    for (std::size_t i = 0; i < kv.size(); ++i) {
        if (i) out << ',';
        chrome_string(out, kv[i].first);
        out << ':';
        chrome_string(out, kv[i].second);
    }
    out << '}';
}

double us(SimTime t) { return static_cast<double>(t.ns) / 1e3; }

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
    std::vector<TraceTree> trees = build_trace_trees(events);
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first) out << ',';
        first = false;
    };
    for (const TraceTree& tree : trees) {
        sep();
        out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << tree.trace_id
            << ",\"tid\":0,\"args\":{\"name\":\"trace " << tree.trace_id << "\"}}";
        for (const SpanNode& node : tree.spans) {
            sep();
            // One lane (tid) per span: sibling spans may overlap in time
            // (concurrent rpcs of one trace), which a shared lane would
            // render as a malformed stack.
            out << "{\"ph\":\"X\",\"pid\":" << tree.trace_id << ",\"tid\":" << node.span
                << ",\"ts\":" << us(node.begin) << ",\"dur\":"
                << (node.ended ? us(node.end) - us(node.begin) : 0.0) << ",\"name\":";
            chrome_string(out, node.name);
            out << ",\"cat\":";
            chrome_string(out, node.component);
            out << ',';
            chrome_args(out, node.kv);
            out << '}';
        }
        for (const TreeInstant& inst : tree.instants) {
            sep();
            out << "{\"ph\":\"i\",\"s\":\"p\",\"pid\":" << tree.trace_id
                << ",\"tid\":" << inst.parent << ",\"ts\":" << us(inst.at) << ",\"name\":";
            chrome_string(out, inst.name);
            out << ",\"cat\":";
            chrome_string(out, inst.component);
            out << ',';
            chrome_args(out, inst.kv);
            out << '}';
        }
    }
    out << "]}";
    return out.str();
}

}  // namespace pmp::obs
