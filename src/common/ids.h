// Strongly typed identifiers.
//
// Every entity that crosses a module boundary (nodes, services, leases,
// extensions, aspects) is addressed by its own id type so that, e.g., a
// LeaseId can never be passed where an ExtensionId is expected
// (Core Guidelines I.4: make interfaces precisely and strongly typed).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace pmp {

/// CRTP base for numeric id types. Distinct Tag types produce distinct,
/// non-convertible id types that still share comparison/hash machinery.
template <typename Tag>
struct Id {
    std::uint64_t value = 0;

    constexpr Id() = default;
    constexpr explicit Id(std::uint64_t v) : value(v) {}

    constexpr bool valid() const { return value != 0; }
    constexpr auto operator<=>(const Id&) const = default;

    std::string str() const { return std::to_string(value); }
};

struct NodeTag {};
struct ServiceTag {};
struct LeaseTag {};
struct ExtensionTag {};
struct AspectTag {};
struct EventTag {};
struct CellTag {};
struct CallTag {};

/// Identifies a device (mobile node or base station) on the network.
using NodeId = Id<NodeTag>;
/// Identifies a registered service instance in the lookup service.
using ServiceId = Id<ServiceTag>;
/// Identifies a granted lease.
using LeaseId = Id<LeaseTag>;
/// Identifies an extension package (the unit MIDAS distributes).
using ExtensionId = Id<ExtensionTag>;
/// Identifies a woven aspect instance inside one PROSE runtime.
using AspectId = Id<AspectTag>;
/// Identifies a remote-event registration.
using EventRegId = Id<EventTag>;
/// Identifies a radio cell / physical location ("production hall").
using CellId = Id<CellTag>;
/// Identifies one in-flight remote invocation.
using CallId = Id<CallTag>;

/// Monotonic id generator; one instance per id space.
template <typename IdType>
class IdGenerator {
public:
    IdType next() { return IdType{++last_}; }

private:
    std::uint64_t last_ = 0;
};

}  // namespace pmp

template <typename Tag>
struct std::hash<pmp::Id<Tag>> {
    std::size_t operator()(const pmp::Id<Tag>& id) const noexcept {
        return std::hash<std::uint64_t>{}(id.value);
    }
};
