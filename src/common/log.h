// Minimal leveled logger.
//
// The platform logs through a process-global sink that tests can silence or
// capture. Log lines carry the virtual timestamp supplied by the caller so
// traces line up with the simulation timeline.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/time.h"

namespace pmp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logging configuration. Not thread-safe by design: the
/// simulation is single-threaded and tests configure logging up front.
class Log {
public:
    using Sink = std::function<void(LogLevel, const std::string&)>;

    static LogLevel level() { return instance().level_; }
    static void set_level(LogLevel level) { instance().level_ = level; }

    /// Replace the output sink (default writes to stderr). Pass nullptr to
    /// restore the default.
    static void set_sink(Sink sink);

    /// Storm suppression: at most `max_lines` lines per (component family,
    /// level) per `window` of virtual time; the rest are counted, and the
    /// next line in a fresh window is preceded by a one-line "(N similar
    /// lines suppressed)" summary. An overloaded node must not drown its
    /// own diagnosis — nor slow itself down stringifying lines nobody can
    /// read. `max_lines = 0` disables. Resets the per-family accounting
    /// (tests restore the default by calling it again).
    static void set_storm_guard(std::size_t max_lines, Duration window = seconds(1));

    static void write(LogLevel level, SimTime when, const std::string& component,
                      const std::string& message);

private:
    static Log& instance();

    LogLevel level_ = LogLevel::kWarn;
    Sink sink_;
    std::size_t storm_max_lines_ = 128;
    Duration storm_window_ = seconds(1);
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(SimTime when, const std::string& component, Args&&... args) {
    if (Log::level() <= LogLevel::kDebug) {
        Log::write(LogLevel::kDebug, when, component, detail::concat(std::forward<Args>(args)...));
    }
}

template <typename... Args>
void log_info(SimTime when, const std::string& component, Args&&... args) {
    if (Log::level() <= LogLevel::kInfo) {
        Log::write(LogLevel::kInfo, when, component, detail::concat(std::forward<Args>(args)...));
    }
}

template <typename... Args>
void log_warn(SimTime when, const std::string& component, Args&&... args) {
    if (Log::level() <= LogLevel::kWarn) {
        Log::write(LogLevel::kWarn, when, component, detail::concat(std::forward<Args>(args)...));
    }
}

template <typename... Args>
void log_error(SimTime when, const std::string& component, Args&&... args) {
    if (Log::level() <= LogLevel::kError) {
        Log::write(LogLevel::kError, when, component, detail::concat(std::forward<Args>(args)...));
    }
}

}  // namespace pmp
