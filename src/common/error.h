// Error types for the platform.
//
// Errors that a correct caller can trigger at run time (bad pointcut syntax,
// signature verification failure, access denied by a policy extension, ...)
// are reported with exceptions drawn from the hierarchy below (Core
// Guidelines E.14: purpose-designed user-defined exception types). Lookup
// misses and similar expected outcomes use std::optional instead.
#pragma once

#include <stdexcept>
#include <string>

#include "common/time.h"

namespace pmp {

/// Root of all platform exceptions.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input to one of the platform's little languages
/// (pointcut expressions, AdviceScript source, package encodings).
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line, int column)
        : Error(what + " at " + std::to_string(line) + ":" + std::to_string(column)),
          line_(line),
          column_(column) {}

    int line() const { return line_; }
    int column() const { return column_; }

private:
    int line_;
    int column_;
};

/// Raised by the metaobject runtime: unknown method/field, arity or type
/// mismatch in an invocation.
class TypeError : public Error {
public:
    using Error::Error;
};

/// Raised by the AdviceScript interpreter for run-time faults in extension
/// code (undefined variable, wrong operand types, explicit `throw`).
class ScriptError : public Error {
public:
    using Error::Error;
};

/// An extension attempted an operation its sandbox capabilities do not
/// allow, or a policy extension (e.g. access control) vetoed a call.
class AccessDenied : public Error {
public:
    using Error::Error;
};

/// Signature verification failed or the signer is not in the trust store.
class TrustError : public Error {
public:
    using Error::Error;
};

/// A remote operation could not complete (peer out of range, lease lapsed,
/// registrar unreachable).
class RemoteError : public Error {
public:
    using Error::Error;
};

/// The script sandbox exceeded a resource budget (step count, recursion).
class ResourceExhausted : public Error {
public:
    using Error::Error;
};

/// The callee shed this call at admission (its inbound queues are full or
/// its rate budget is spent). Distinct from RemoteError because the node is
/// alive and answering — the caller should back off and retry, and
/// `retry_after` carries the callee's estimate of when capacity returns
/// (zero = no estimate). The rpc retry machinery honors it.
class Overloaded : public Error {
public:
    explicit Overloaded(const std::string& what, Duration retry_after = Duration{0})
        : Error(what), retry_after_(retry_after) {}
    Duration retry_after() const { return retry_after_; }

private:
    Duration retry_after_;
};

/// An advice entry overran its virtual-time watchdog deadline (the
/// governor's per-entry wall bound — deliberately not a ResourceExhausted:
/// the sandbox budget caps work per invocation, the deadline caps latency).
class DeadlineExceeded : public Error {
public:
    using Error::Error;
};

}  // namespace pmp
