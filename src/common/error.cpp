#include "common/error.h"

// Exception types are header-only today; this translation unit anchors the
// library so that vtables/typeinfo have a single home if virtuals are added.
namespace pmp {}
