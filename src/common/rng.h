// Deterministic random numbers.
//
// Everything stochastic in the platform (link jitter, message loss, mobility
// paths, workload generators) draws from an explicitly seeded Rng so that
// tests and benchmarks are reproducible run to run.
#pragma once

#include <cstdint>

namespace pmp {

/// xoshiro256** by Blackman & Vigna — small, fast, and good enough for
/// simulation purposes (not for cryptography; see pmp::crypto for that).
class Rng {
public:
    explicit Rng(std::uint64_t seed) {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, bound); bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

    /// Uniform in [lo, hi] inclusive.
    std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform in [0, 1).
    double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

    /// True with probability p.
    bool chance(double p) { return next_double() < p; }

    /// Spawn an independent child stream (for per-entity randomness).
    Rng split() { return Rng(next_u64()); }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    std::uint64_t state_[4];
};

}  // namespace pmp
