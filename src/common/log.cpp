#include "common/log.h"

#include <iostream>

#include "obs/component.h"
#include "obs/metrics.h"

namespace pmp {

Log& Log::instance() {
    static Log log;
    return log;
}

void Log::set_sink(Sink sink) { instance().sink_ = std::move(sink); }

void Log::write(LogLevel level, SimTime when, const std::string& component,
                const std::string& message) {
    static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    auto& log = instance();
    // Log tags, metrics, and traces all share one canonical component
    // namespace: "receiver" and "midas@robot" both resolve to
    // "midas.receiver", so a log line and its metrics carry the same id.
    auto& components = obs::ComponentRegistry::global();
    std::string canonical = components.canonical(component);
    components.id(components.family(component));
    obs::Registry::global().counter("log.lines", components.family(component)).inc();
    std::string line = "[" + to_string(when) + "] " + kNames[static_cast<int>(level)] + " " +
                       canonical + ": " + message;
    if (log.sink_) {
        log.sink_(level, line);
    } else {
        std::cerr << line << '\n';
    }
}

}  // namespace pmp
