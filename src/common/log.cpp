#include "common/log.h"

#include <iostream>
#include <map>
#include <mutex>
#include <utility>

#include "obs/component.h"
#include "obs/metrics.h"

namespace pmp {

namespace {

// Per-(component family, level) storm accounting. Keyed by family, not the
// full component, so "midas@robot:1:1" and "midas@robot:1:2" throttle
// independently of each other only up to the family cap — a fleet-wide
// storm from one subsystem is still one storm.
struct StormSlot {
    SimTime window_start{};
    std::size_t emitted = 0;
    std::size_t suppressed = 0;
};

std::map<std::pair<std::string, int>, StormSlot>& storm_slots() {
    static std::map<std::pair<std::string, int>, StormSlot> slots;
    return slots;
}

// One lock for sink configuration, storm accounting, and emission order:
// log volume is low (storm-guarded by design), so a single mutex keeps
// interleaved shard workers from tearing lines or slots.
std::mutex& log_mu() {
    static std::mutex mu;
    return mu;
}

}  // namespace

Log& Log::instance() {
    static Log log;
    return log;
}

void Log::set_sink(Sink sink) {
    std::lock_guard<std::mutex> lock(log_mu());
    instance().sink_ = std::move(sink);
}

void Log::set_storm_guard(std::size_t max_lines, Duration window) {
    std::lock_guard<std::mutex> lock(log_mu());
    auto& log = instance();
    log.storm_max_lines_ = max_lines;
    log.storm_window_ = window.count() > 0 ? window : seconds(1);
    storm_slots().clear();
}

void Log::write(LogLevel level, SimTime when, const std::string& component,
                const std::string& message) {
    static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    auto& log = instance();
    // Log tags, metrics, and traces all share one canonical component
    // namespace: "receiver" and "midas@robot" both resolve to
    // "midas.receiver", so a log line and its metrics carry the same id.
    auto& components = obs::ComponentRegistry::global();
    std::string canonical = components.canonical(component);
    std::string family = components.family(component);
    components.id(family);
    obs::Registry::global().counter("log.lines", family).inc();

    std::lock_guard<std::mutex> lock(log_mu());
    auto emit = [&](const std::string& text) {
        std::string line = "[" + to_string(when) + "] " +
                           kNames[static_cast<int>(level)] + " " + canonical + ": " + text;
        if (log.sink_) {
            log.sink_(level, line);
        } else {
            std::cerr << line << '\n';
        }
    };

    if (log.storm_max_lines_ > 0) {
        StormSlot& slot = storm_slots()[{family, static_cast<int>(level)}];
        // `when` moving backwards (a fresh simulation after a long one, in
        // the same process) also rolls the window.
        if (when < slot.window_start || when >= slot.window_start + log.storm_window_) {
            if (slot.suppressed > 0) {
                emit("(" + std::to_string(slot.suppressed) +
                     " similar lines suppressed in the last window)");
            }
            slot = StormSlot{when, 0, 0};
        }
        if (slot.emitted >= log.storm_max_lines_) {
            ++slot.suppressed;
            obs::Registry::global().counter("log.suppressed", family).inc();
            return;
        }
        ++slot.emitted;
    }
    emit(message);
}

}  // namespace pmp
