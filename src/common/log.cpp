#include "common/log.h"

#include <iostream>

namespace pmp {

Log& Log::instance() {
    static Log log;
    return log;
}

void Log::set_sink(Sink sink) { instance().sink_ = std::move(sink); }

void Log::write(LogLevel level, SimTime when, const std::string& component,
                const std::string& message) {
    static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    auto& log = instance();
    std::string line = "[" + to_string(when) + "] " + kNames[static_cast<int>(level)] + " " +
                       component + ": " + message;
    if (log.sink_) {
        log.sink_(level, line);
    } else {
        std::cerr << line << '\n';
    }
}

}  // namespace pmp
