// Cheap deterministic non-cryptographic hashing.
//
// Used wherever the platform needs a stable, seed-free placement or jitter
// decision that must replay identically run to run: consistent-hash shard
// ownership (disco::HashRing), per-lease renewal phase jitter. Not for
// security (see pmp::crypto) and not for randomness (see pmp::Rng) — this
// is for *placement*, where the same key must land in the same place on
// every node that computes it.
#pragma once

#include <cstdint>
#include <string_view>

namespace pmp {

/// FNV-1a, 64-bit. Stable across platforms and runs.
constexpr std::uint64_t fnv1a64(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/// Mix one more 64-bit word into a hash (for composite keys like
/// (registrar, lease) without building a string).
constexpr std::uint64_t fnv1a64_mix(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffull;
        h *= 0x100000001b3ull;
    }
    return h;
}

/// Finalizing avalanche (the splitmix64 mixer). FNV-1a is stable but its
/// high bits barely move for keys that share a prefix ("svc/a", "svc/b"
/// land in one narrow arc of a 64-bit ring); run placements through this
/// whenever bit *distribution* matters, not just stability.
constexpr std::uint64_t hash_avalanche(std::uint64_t h) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

}  // namespace pmp
