// Virtual time primitives shared by the whole platform.
//
// The platform runs on a discrete-event simulated clock (see pmp::sim), so
// time is never read from the OS. SimTime is a point on that virtual
// timeline; Duration is a span between two points. Both are nanosecond
// resolution, which comfortably covers the paper's measurement range
// (hundreds of nanoseconds per interception) as well as hours of simulated
// roaming.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <string>

namespace pmp {

/// Span of virtual time, nanosecond resolution.
using Duration = std::chrono::nanoseconds;

using std::chrono::hours;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::minutes;
using std::chrono::nanoseconds;
using std::chrono::seconds;

/// A point on the simulated timeline. Time zero is the start of the
/// simulation run.
struct SimTime {
    std::int64_t ns = 0;

    static constexpr SimTime zero() { return SimTime{0}; }
    /// Sentinel used to mean "never" (e.g. a lease that cannot expire).
    static constexpr SimTime max() { return SimTime{INT64_MAX}; }

    constexpr auto operator<=>(const SimTime&) const = default;

    constexpr SimTime operator+(Duration d) const { return SimTime{ns + d.count()}; }
    constexpr SimTime operator-(Duration d) const { return SimTime{ns - d.count()}; }
    constexpr Duration operator-(SimTime other) const { return Duration{ns - other.ns}; }

    constexpr SimTime& operator+=(Duration d) {
        ns += d.count();
        return *this;
    }

    double seconds_since_zero() const { return static_cast<double>(ns) / 1e9; }
};

/// Render a time point as "12.345s" for logs and reports.
inline std::string to_string(SimTime t) {
    return std::to_string(t.seconds_since_zero()) + "s";
}

}  // namespace pmp
