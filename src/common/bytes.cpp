#include "common/bytes.h"

#include "common/error.h"

namespace pmp {

std::span<const std::uint8_t> as_bytes(std::string_view s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

Bytes to_bytes(std::string_view s) {
    auto view = as_bytes(s);
    return Bytes(view.begin(), view.end());
}

std::string to_string(std::span<const std::uint8_t> b) {
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}
}  // namespace

std::string hex_encode(std::span<const std::uint8_t> b) {
    std::string out;
    out.reserve(b.size() * 2);
    for (std::uint8_t byte : b) {
        out.push_back(kHexDigits[byte >> 4]);
        out.push_back(kHexDigits[byte & 0xF]);
    }
    return out;
}

Bytes hex_decode(std::string_view hex) {
    if (hex.size() % 2 != 0) {
        throw ParseError("hex string has odd length", 1, static_cast<int>(hex.size()));
    }
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = hex_value(hex[i]);
        int lo = hex_value(hex[i + 1]);
        if (hi < 0 || lo < 0) {
            throw ParseError("invalid hex digit", 1, static_cast<int>(i));
        }
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

void append(Bytes& out, std::span<const std::uint8_t> data) {
    out.insert(out.end(), data.begin(), data.end());
}

void append_u32(Bytes& out, std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
        out.push_back(static_cast<std::uint8_t>(v >> shift));
    }
}

void append_u64(Bytes& out, std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
        out.push_back(static_cast<std::uint8_t>(v >> shift));
    }
}

void ByteReader::require(std::size_t n) const {
    if (remaining() < n) {
        throw ParseError("byte buffer exhausted", 0, static_cast<int>(pos_));
    }
}

std::uint32_t ByteReader::read_u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
    return v;
}

std::uint64_t ByteReader::read_u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
    return v;
}

std::span<const std::uint8_t> ByteReader::read(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
}

std::string ByteReader::read_string(std::size_t n) {
    return pmp::to_string(read(n));
}

}  // namespace pmp
