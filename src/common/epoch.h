// Epoch-based reclamation for RCU-published hook tables.
//
// The weaver mutates a Method's advice tables by building a fresh table
// aside, swapping one pointer, and *retiring* the old table here. The old
// table cannot be freed immediately: another shard's worker may be mid-
// dispatch through it. It can be freed once every thread that might hold
// the pointer has passed a point where it provably holds none — a grace
// period.
//
// Quiescent-state-based flavour (QSBR): readers pay nothing per dispatch.
// Each sharded-simulator worker registers a Participant and announces
// quiescence at every window barrier (where, by construction, it executes
// no events and holds no table pointers). A retired table is reclaimed
// once every participant has announced quiescence after the retirement.
//
// Threads that never register (the sequential tests, tools, a coordinator
// poking a node between windows) are covered by ReadGuard: the woven
// dispatch slow path holds one across the advice chain, and reclamation
// is deferred while any guard is live anywhere. The un-woven fast path
// takes no guard and stays a single load + branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace pmp {

class EpochDomain {
public:
    EpochDomain();
    ~EpochDomain();

    EpochDomain(const EpochDomain&) = delete;
    EpochDomain& operator=(const EpochDomain&) = delete;

    /// The process-wide domain every Method/Field retires into.
    static EpochDomain& global();

    /// One registered worker thread. Construct on the worker, call
    /// quiescent() at every window barrier, destroy when the worker
    /// retires (destruction counts as a final quiescent state).
    class Participant {
    public:
        explicit Participant(EpochDomain& domain = EpochDomain::global());
        ~Participant();

        Participant(const Participant&) = delete;
        Participant& operator=(const Participant&) = delete;

        /// Announce: this thread currently holds no retired-able pointer.
        void quiescent();

    private:
        EpochDomain& domain_;
        std::size_t slot_;
    };

    /// Pins reclamation for unregistered threads. No-op on a thread that
    /// carries a Participant (its safety comes from the epoch protocol).
    /// Nestable; cheap (one thread-local bump, one shared atomic bump on
    /// the 0 -> 1 transition).
    class ReadGuard {
    public:
        ReadGuard();
        ~ReadGuard();

        ReadGuard(const ReadGuard&) = delete;
        ReadGuard& operator=(const ReadGuard&) = delete;

    private:
        EpochDomain* pinned_;  ///< nullptr when this thread is a Participant
    };

    /// Queue `reclaim` to run once the grace period for the current epoch
    /// has elapsed. Safe from any thread, including from inside advice
    /// (a guard on the calling thread defers its own entry).
    void retire(std::function<void()> reclaim);

    /// Reclaim everything whose grace period has passed (called
    /// opportunistically from retire()/quiescent(); exposed for tests).
    void reap();

    /// Retired entries not yet reclaimed.
    std::size_t pending() const;

    /// Total entries retired / reclaimed over the domain's lifetime.
    std::uint64_t retired_total() const { return retired_total_.load(std::memory_order_relaxed); }
    std::uint64_t reclaimed_total() const {
        return reclaimed_total_.load(std::memory_order_relaxed);
    }

private:
    struct Slot {
        std::atomic<std::uint64_t> local{0};
        std::atomic<bool> active{false};
    };
    struct Retired {
        std::uint64_t epoch;
        std::function<void()> reclaim;
    };

    std::size_t register_participant();
    void unregister_participant(std::size_t slot);
    /// Collect reclaimable entries under the lock; run them after.
    std::vector<Retired> collect_ripe();

    // Global epoch. A retired entry stamped E is safe once every active
    // participant's local epoch is >= E (each has quiesced after the
    // retirement) and no ReadGuard is live.
    std::atomic<std::uint64_t> epoch_{1};
    std::atomic<std::int64_t> guards_{0};

    mutable std::mutex mu_;
    std::vector<Slot*> slots_;       // stable addresses; reused after unregister
    std::vector<Retired> retired_;

    std::atomic<std::uint64_t> retired_total_{0};
    std::atomic<std::uint64_t> reclaimed_total_{0};
};

}  // namespace pmp
