#include "common/epoch.h"

#include <algorithm>

#include "obs/metrics.h"

namespace pmp {

namespace {
// Set while a Participant lives on this thread: ReadGuard no-ops (the
// epoch protocol covers the thread) and quiescent() knows its slot.
thread_local EpochDomain::Participant* tl_participant = nullptr;
// Guard nesting depth for unregistered threads; only the 0 <-> 1
// transitions touch the shared counter.
thread_local int tl_guard_depth = 0;

struct EpochMetrics {
    obs::Counter& retired = obs::Registry::global().counter("rt.epoch.retired");
    obs::Counter& reclaimed = obs::Registry::global().counter("rt.epoch.reclaimed");
};

EpochMetrics& epoch_metrics() {
    static EpochMetrics m;
    return m;
}
}  // namespace

EpochDomain::EpochDomain() = default;

EpochDomain::~EpochDomain() {
    // Last chance: nothing can be mid-dispatch if the domain itself is
    // dying, so run every deleter regardless of epochs.
    std::vector<Retired> left;
    {
        std::lock_guard<std::mutex> lock(mu_);
        left.swap(retired_);
    }
    for (auto& r : left) r.reclaim();
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot* s : slots_) delete s;
}

EpochDomain& EpochDomain::global() {
    static EpochDomain domain;
    return domain;
}

// ---------------------------------------------------------- Participant ----

EpochDomain::Participant::Participant(EpochDomain& domain) : domain_(domain) {
    slot_ = domain_.register_participant();
    tl_participant = this;
}

EpochDomain::Participant::~Participant() {
    tl_participant = nullptr;
    domain_.unregister_participant(slot_);
    domain_.reap();
}

void EpochDomain::Participant::quiescent() {
    Slot* s;
    {
        std::lock_guard<std::mutex> lock(domain_.mu_);
        s = domain_.slots_[slot_];
    }
    s->local.store(domain_.epoch_.load(), std::memory_order_seq_cst);
    domain_.reap();
}

std::size_t EpochDomain::register_participant() {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i]->active.load(std::memory_order_relaxed)) {
            slots_[i]->active.store(true, std::memory_order_relaxed);
            slots_[i]->local.store(epoch_.load(), std::memory_order_seq_cst);
            return i;
        }
    }
    Slot* s = new Slot();
    s->active.store(true, std::memory_order_relaxed);
    s->local.store(epoch_.load(), std::memory_order_seq_cst);
    slots_.push_back(s);
    return slots_.size() - 1;
}

void EpochDomain::unregister_participant(std::size_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[slot]->active.store(false, std::memory_order_relaxed);
}

// ------------------------------------------------------------ ReadGuard ----

EpochDomain::ReadGuard::ReadGuard() : pinned_(nullptr) {
    if (tl_participant != nullptr) return;  // epoch-covered thread
    if (tl_guard_depth++ == 0) {
        pinned_ = &EpochDomain::global();
        pinned_->guards_.fetch_add(1, std::memory_order_seq_cst);
    }
}

EpochDomain::ReadGuard::~ReadGuard() {
    if (tl_participant != nullptr) return;
    --tl_guard_depth;
    // Only the guard that did the 0 -> 1 transition releases (guards are
    // strictly nested, so it is also the last one out).
    if (pinned_ != nullptr) {
        pinned_->guards_.fetch_sub(1, std::memory_order_seq_cst);
        pinned_->reap();
    }
}

// --------------------------------------------------------------- domain ----

void EpochDomain::retire(std::function<void()> reclaim) {
    // Stamp the entry with a *new* epoch: it is safe only once every
    // participant has quiesced after this point.
    std::uint64_t e = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
    {
        std::lock_guard<std::mutex> lock(mu_);
        retired_.push_back(Retired{e, std::move(reclaim)});
    }
    retired_total_.fetch_add(1, std::memory_order_relaxed);
    epoch_metrics().retired.inc();
    reap();
}

std::vector<EpochDomain::Retired> EpochDomain::collect_ripe() {
    std::vector<Retired> ripe;
    // Any live guard anywhere may have been taken before any retirement we
    // know about — defer everything. (Guards taken *after* a retirement
    // can only observe the new pointer, so this is conservative but safe.)
    // A guard on the *calling* thread pins the caller's own entries too:
    // withdraw-from-inside-advice must not free the table being walked.
    if (guards_.load(std::memory_order_seq_cst) != 0) return ripe;

    std::lock_guard<std::mutex> lock(mu_);
    if (retired_.empty()) return ripe;
    std::uint64_t min_local = UINT64_MAX;
    for (Slot* s : slots_) {
        if (!s->active.load(std::memory_order_relaxed)) continue;
        min_local = std::min(min_local, s->local.load(std::memory_order_seq_cst));
    }
    std::vector<Retired> keep;
    for (auto& r : retired_) {
        if (r.epoch <= min_local) {
            ripe.push_back(std::move(r));
        } else {
            keep.push_back(std::move(r));
        }
    }
    retired_.swap(keep);
    return ripe;
}

void EpochDomain::reap() {
    // Deleters run outside the lock: reclaiming a Woven can tear down
    // aspect state that itself logs, meters, or retires more entries.
    std::vector<Retired> ripe = collect_ripe();
    if (ripe.empty()) return;
    for (auto& r : ripe) r.reclaim();
    reclaimed_total_.fetch_add(ripe.size(), std::memory_order_relaxed);
    for (std::size_t i = 0; i < ripe.size(); ++i) epoch_metrics().reclaimed.inc();
}

std::size_t EpochDomain::pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return retired_.size();
}

}  // namespace pmp
