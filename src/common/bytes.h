// Raw byte buffers and encoding helpers used by crypto, marshaling and the
// network layer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pmp {

using Bytes = std::vector<std::uint8_t>;

/// View of the raw bytes of a string (no copy).
std::span<const std::uint8_t> as_bytes(std::string_view s);

/// Copy a string's bytes into a Bytes buffer.
Bytes to_bytes(std::string_view s);

/// Interpret a byte buffer as text (copies).
std::string to_string(std::span<const std::uint8_t> b);

/// Lower-case hex encoding, two characters per byte.
std::string hex_encode(std::span<const std::uint8_t> b);

/// Inverse of hex_encode; throws ParseError on odd length or non-hex digits.
Bytes hex_decode(std::string_view hex);

/// Append helpers for building wire encodings.
void append(Bytes& out, std::span<const std::uint8_t> data);
void append_u32(Bytes& out, std::uint32_t v);  // big-endian
void append_u64(Bytes& out, std::uint64_t v);  // big-endian

/// Cursor for decoding wire encodings; throws ParseError past the end.
class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint32_t read_u32();
    std::uint64_t read_u64();
    std::span<const std::uint8_t> read(std::size_t n);
    std::string read_string(std::size_t n);

    bool exhausted() const { return pos_ == data_.size(); }
    std::size_t remaining() const { return data_.size() - pos_; }

private:
    void require(std::size_t n) const;

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

}  // namespace pmp
