// SHA-256 (FIPS 180-4), implemented from scratch.
//
// MIDAS signs extension packages before distribution and receivers verify
// them before weaving; this is the digest underneath that trust decision.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.h"

namespace pmp::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256. Usage: update(...) any number of times, then
/// finalize() exactly once.
class Sha256 {
public:
    Sha256();

    void update(std::span<const std::uint8_t> data);
    void update(std::string_view text) { update(as_bytes(text)); }

    /// Completes the hash. The object must not be reused afterwards.
    Digest finalize();

    /// One-shot convenience.
    static Digest hash(std::span<const std::uint8_t> data);
    static Digest hash(std::string_view text) { return hash(as_bytes(text)); }

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t total_bytes_ = 0;
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    bool finalized_ = false;
};

/// Hex rendering of a digest (64 lower-case hex chars).
std::string to_hex(const Digest& d);

}  // namespace pmp::crypto
