#include "crypto/trust.h"

namespace pmp::crypto {

Bytes Signature::encode() const {
    Bytes out;
    append_u32(out, static_cast<std::uint32_t>(issuer.size()));
    append(out, as_bytes(issuer));
    append(out, std::span<const std::uint8_t>(mac));
    return out;
}

Signature Signature::decode(ByteReader& reader) {
    Signature sig;
    std::uint32_t issuer_len = reader.read_u32();
    sig.issuer = reader.read_string(issuer_len);
    auto mac_bytes = reader.read(sig.mac.size());
    std::copy(mac_bytes.begin(), mac_bytes.end(), sig.mac.begin());
    return sig;
}

void KeyStore::add_key(const std::string& issuer, Bytes key) {
    keys_[issuer] = std::move(key);
}

Signature KeyStore::sign(const std::string& issuer,
                         std::span<const std::uint8_t> payload) const {
    auto it = keys_.find(issuer);
    if (it == keys_.end()) {
        throw TrustError("no signing key for issuer '" + issuer + "'");
    }
    return Signature{issuer, hmac_sha256(std::span<const std::uint8_t>(it->second), payload)};
}

void TrustStore::trust(const std::string& issuer, Bytes key) {
    keys_[issuer] = std::move(key);
}

void TrustStore::revoke(const std::string& issuer) { keys_.erase(issuer); }

void TrustStore::verify(std::span<const std::uint8_t> payload, const Signature& sig) const {
    auto it = keys_.find(sig.issuer);
    if (it == keys_.end()) {
        throw TrustError("issuer '" + sig.issuer + "' is not trusted");
    }
    Mac expected = hmac_sha256(std::span<const std::uint8_t>(it->second), payload);
    if (!mac_equal(expected, sig.mac)) {
        throw TrustError("signature verification failed for issuer '" + sig.issuer + "'");
    }
}

}  // namespace pmp::crypto
