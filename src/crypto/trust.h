// Trust model for extension packages (paper §3.2, "Addressing security").
//
// Every extension instance is signed by the entity that instantiated and
// configured it (typically a base station authority). A receiver accepts an
// extension only if the signer is in its local trust store and the signature
// verifies. We use HMAC-SHA-256 with per-issuer shared keys; DESIGN.md
// documents this substitution for the paper's Java code-signing.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/hmac.h"

namespace pmp::crypto {

/// A detached signature: who claims to have signed, and the MAC over the
/// signed payload.
struct Signature {
    std::string issuer;
    Mac mac{};

    /// Wire encoding (issuer length + issuer + mac), used inside packages.
    Bytes encode() const;
    static Signature decode(ByteReader& reader);
};

/// Holds the signing keys an authority owns. Used on the signing side
/// (extension bases / hall authorities).
class KeyStore {
public:
    /// Register (or replace) the key for `issuer`.
    void add_key(const std::string& issuer, Bytes key);

    /// Sign `payload` as `issuer`. Throws TrustError if the issuer has no
    /// key here.
    Signature sign(const std::string& issuer, std::span<const std::uint8_t> payload) const;

    bool has_key(const std::string& issuer) const { return keys_.contains(issuer); }

private:
    std::unordered_map<std::string, Bytes> keys_;
};

/// Holds the verification keys of the entities a receiver trusts. Each
/// mobile device configures its own preferences (paper: "each extension
/// receiver node may define its preferences and trusted entities").
class TrustStore {
public:
    void trust(const std::string& issuer, Bytes key);
    void revoke(const std::string& issuer);
    bool trusts(const std::string& issuer) const { return keys_.contains(issuer); }

    /// Verify that `sig` is a valid signature over `payload` by a trusted
    /// issuer. Throws TrustError (with a reason) on any failure; returns
    /// normally on success.
    void verify(std::span<const std::uint8_t> payload, const Signature& sig) const;

private:
    std::unordered_map<std::string, Bytes> keys_;
};

}  // namespace pmp::crypto
