#include "crypto/hmac.h"

#include <array>

namespace pmp::crypto {

Mac hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
    constexpr std::size_t kBlock = 64;
    std::array<std::uint8_t, kBlock> key_block{};
    if (key.size() > kBlock) {
        Digest hashed = Sha256::hash(key);
        std::copy(hashed.begin(), hashed.end(), key_block.begin());
    } else {
        std::copy(key.begin(), key.end(), key_block.begin());
    }

    std::array<std::uint8_t, kBlock> ipad;
    std::array<std::uint8_t, kBlock> opad;
    for (std::size_t i = 0; i < kBlock; ++i) {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(std::span<const std::uint8_t>(ipad));
    inner.update(message);
    Digest inner_digest = inner.finalize();

    Sha256 outer;
    outer.update(std::span<const std::uint8_t>(opad));
    outer.update(std::span<const std::uint8_t>(inner_digest));
    return outer.finalize();
}

bool mac_equal(const Mac& a, const Mac& b) {
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
    return diff == 0;
}

}  // namespace pmp::crypto
