// HMAC-SHA-256 (RFC 2104), implemented from scratch on top of Sha256.
#pragma once

#include <span>
#include <string_view>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace pmp::crypto {

/// MAC tag produced by hmac_sha256 (same width as a SHA-256 digest).
using Mac = Digest;

/// Compute HMAC-SHA-256 of `message` under `key`. Keys longer than the
/// 64-byte block are hashed first, per RFC 2104.
Mac hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message);

inline Mac hmac_sha256(std::string_view key, std::string_view message) {
    return hmac_sha256(as_bytes(key), as_bytes(message));
}

/// Constant-time comparison of two MACs (avoids the classic timing leak on
/// the verification path).
bool mac_equal(const Mac& a, const Mac& b);

}  // namespace pmp::crypto
