// Named crash-points (fail-point injection).
//
// Protocol code marks interesting instants — "install sent, activity not
// yet recorded" — with FailPoints::hit(node, point). Tests arm a point for
// a specific node and hit count; when the armed hit occurs, the action
// runs (typically Supervisor::crash), modelling a process that dies at
// exactly that instant. Unarmed hits cost one empty-vector check, so the
// markers stay in production code paths permanently.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace pmp::sim {

class FailPoints {
public:
    static FailPoints& global();

    using Action = std::function<void()>;

    /// Arm `point` for `node`: the `hit`-th subsequent hit (1 = next)
    /// triggers `action` exactly once. Returns a token for disarm().
    std::uint64_t arm(std::string node, std::string point, int hit, Action action);

    void disarm(std::uint64_t token);
    void clear();

    /// Marker call sites use this; near-free while nothing is armed (one
    /// relaxed atomic load — markers run on every shard worker).
    static void hit(const std::string& node, const std::string& point) {
        FailPoints& fp = global();
        if (fp.armed_count_.load(std::memory_order_relaxed) != 0) fp.fire(node, point);
    }

    std::size_t armed_count() const { return armed_count_.load(std::memory_order_relaxed); }

private:
    void fire(const std::string& node, const std::string& point);

    struct Armed {
        std::uint64_t token;
        std::string node;
        std::string point;
        int remaining;
        Action action;
    };
    mutable std::mutex mu_;
    std::vector<Armed> armed_;
    std::atomic<std::size_t> armed_count_{0};  ///< mirrors armed_.size()
    std::uint64_t next_token_ = 0;
};

/// RAII arming for tests: disarms on scope exit if the point never fired.
class ScopedFailPoint {
public:
    ScopedFailPoint(std::string node, std::string point, int hit, FailPoints::Action action)
        : token_(FailPoints::global().arm(std::move(node), std::move(point), hit,
                                          std::move(action))) {}
    ~ScopedFailPoint() { FailPoints::global().disarm(token_); }

    ScopedFailPoint(const ScopedFailPoint&) = delete;
    ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

private:
    std::uint64_t token_;
};

}  // namespace pmp::sim
