// Discrete-event simulation kernel.
//
// Every dynamic behaviour in the platform — radio propagation, lease
// renewal timers, mobility, asynchronous extension uploads — is an event on
// this single virtual timeline. Events scheduled for the same instant fire
// in scheduling order (FIFO), which makes whole-system runs deterministic
// for a fixed seed.
//
// A Simulator is single-threaded by design; wall-clock parallelism comes
// from running *several* simulators as shards under sim::ShardedSimulator
// (see shard.h), which drives each one through bounded time windows via
// run_window()/advance_to() and never touches two from different threads
// without a barrier in between.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.h"

namespace pmp::obs {
class TraceBuffer;
}

namespace pmp::sim {

/// Handle to a scheduled event, usable to cancel it before it fires.
struct TimerId {
    std::uint64_t value = 0;
    bool valid() const { return value != 0; }
    auto operator<=>(const TimerId&) const = default;
};

/// The event loop. Single-threaded by design (Core Guidelines CP: shared
/// mutable state is avoided by having exactly one logical thread of control;
/// benchmarks that need wall-clock parallelism run separate simulators).
class Simulator {
public:
    using Callback = std::function<void()>;

    /// Binds this simulator as a trace clock on the TraceBuffer that is
    /// current *on the constructing thread* (the thread's redirect target,
    /// else the root buffer) and remembers that buffer, so the destructor
    /// unbinds from the same one even if the thread's redirect has since
    /// changed. Clocks stack per buffer: nesting a scratch simulator inside
    /// a live one restores the outer clock on destruction instead of
    /// leaving the buffer clockless ("most recently constructed wins" is
    /// gone — binding is scoped to this object's lifetime).
    Simulator();
    ~Simulator();
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Current virtual time.
    SimTime now() const { return now_; }

    /// Schedule `fn` to run at absolute time `when` (>= now, else it runs at
    /// the current instant, never in the past).
    TimerId schedule_at(SimTime when, Callback fn);

    /// Schedule `fn` to run `delay` after now.
    TimerId schedule_after(Duration delay, Callback fn);

    /// Schedule `fn` every `period`, first firing after one period.
    /// Cancelling the returned id stops the repetition.
    TimerId schedule_every(Duration period, Callback fn);

    /// Cancel a pending event. Cancelling an already-fired or unknown id is
    /// a no-op. Returns true if something was actually cancelled.
    bool cancel(TimerId id);

    /// Run the single next event. Returns false if the queue is empty.
    bool step();

    /// Run events until the queue is empty or `limit` events have fired.
    /// Returns the number of events executed.
    std::size_t run(std::size_t limit = SIZE_MAX);

    /// Run all events with time <= deadline; afterwards now() == deadline
    /// (even if the queue went empty earlier).
    void run_until(SimTime deadline);

    /// Convenience: run_until(now() + d).
    void run_for(Duration d);

    /// Time of the earliest live (non-cancelled) pending event, or
    /// SimTime::max() when the queue is empty. The sharded kernel's
    /// conservative synchronizer computes each window edge from the minimum
    /// of this across shards. Pops tombstones encountered at the top, so
    /// amortized cost stays with the cancels that created them.
    SimTime next_event_time();

    /// Run every event with `when` strictly before `horizon`, leaving
    /// events at exactly `horizon` queued for the next window. Does NOT
    /// advance now() past the last fired event — the caller advances the
    /// clock explicitly (advance_to) once the window barrier commits, which
    /// keeps "events < horizon fired, now() <= horizon" an invariant the
    /// sharded kernel can assert. Returns the number of events executed.
    std::size_t run_window(SimTime horizon);

    /// Move the clock forward to `t` without running anything (no-op if
    /// now() >= t already). Window barriers use this to line every shard
    /// up on the same instant before the next window's sends clamp against
    /// now() + lookahead.
    void advance_to(SimTime t);

    /// Number of events currently pending.
    std::size_t pending() const { return queue_.size() - cancelled_.size(); }

    /// Times the tombstone sweep has rebuilt the queue (metric
    /// `sim.compactions` counts the same thing process-wide).
    std::uint64_t compactions() const { return compactions_; }

private:
    struct Event {
        SimTime when;
        std::uint64_t seq;  // tie-breaker: FIFO among same-time events
        std::uint64_t id;
        bool repeating;
        Callback fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool fire_next();
    void maybe_compact();

    SimTime now_ = SimTime::zero();
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<std::uint64_t> live_;       // ids that can still fire
    std::unordered_set<std::uint64_t> cancelled_;  // tombstones for queued events
    std::uint64_t compactions_ = 0;
    obs::TraceBuffer* trace_buffer_ = nullptr;  // buffer the clock is bound to
    std::uint64_t trace_clock_token_ = 0;       // obs trace-clock registration
};

}  // namespace pmp::sim
