#include "sim/failpoint.h"

namespace pmp::sim {

FailPoints& FailPoints::global() {
    static FailPoints instance;
    return instance;
}

std::uint64_t FailPoints::arm(std::string node, std::string point, int hit, Action action) {
    std::uint64_t token = ++next_token_;
    armed_.push_back(
        Armed{token, std::move(node), std::move(point), hit < 1 ? 1 : hit, std::move(action)});
    return token;
}

void FailPoints::disarm(std::uint64_t token) {
    std::erase_if(armed_, [token](const Armed& a) { return a.token == token; });
}

void FailPoints::clear() { armed_.clear(); }

void FailPoints::fire(const std::string& node, const std::string& point) {
    for (auto it = armed_.begin(); it != armed_.end(); ++it) {
        if (it->node != node || it->point != point) continue;
        if (--it->remaining > 0) return;
        // Detach before running: the action may crash the node, tearing
        // down the very code path we are being called from, and may arm
        // new points of its own.
        Action action = std::move(it->action);
        armed_.erase(it);
        action();
        return;
    }
}

}  // namespace pmp::sim
