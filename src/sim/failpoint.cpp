#include "sim/failpoint.h"

namespace pmp::sim {

FailPoints& FailPoints::global() {
    static FailPoints instance;
    return instance;
}

std::uint64_t FailPoints::arm(std::string node, std::string point, int hit, Action action) {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t token = ++next_token_;
    armed_.push_back(
        Armed{token, std::move(node), std::move(point), hit < 1 ? 1 : hit, std::move(action)});
    armed_count_.store(armed_.size(), std::memory_order_relaxed);
    return token;
}

void FailPoints::disarm(std::uint64_t token) {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(armed_, [token](const Armed& a) { return a.token == token; });
    armed_count_.store(armed_.size(), std::memory_order_relaxed);
}

void FailPoints::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_.clear();
    armed_count_.store(0, std::memory_order_relaxed);
}

void FailPoints::fire(const std::string& node, const std::string& point) {
    Action action;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = armed_.begin(); it != armed_.end(); ++it) {
            if (it->node != node || it->point != point) continue;
            if (--it->remaining > 0) return;
            // Detach before running (outside the lock): the action may
            // crash the node, tearing down the very code path we are being
            // called from, and may arm new points of its own.
            action = std::move(it->action);
            armed_.erase(it);
            armed_count_.store(armed_.size(), std::memory_order_relaxed);
            break;
        }
    }
    if (action) action();
}

}  // namespace pmp::sim
