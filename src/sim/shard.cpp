#include "sim/shard.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "common/epoch.h"

namespace pmp::sim {

namespace {
struct ShardMetrics {
    obs::Counter& windows = obs::Registry::global().counter("sim.shard.windows");
    obs::Counter& posts = obs::Registry::global().counter("sim.shard.posts");
};
ShardMetrics& shard_metrics() {
    static ShardMetrics m;
    return m;
}
}  // namespace

ShardedSimulator::ShardedSimulator(ShardOptions opts) : opts_(opts) {
    if (opts_.shards == 0) opts_.shards = 1;
    if (opts_.workers == 0) opts_.workers = 1;
    if (opts_.lookahead < Duration{1}) opts_.lookahead = Duration{1};

    buffers_.reserve(opts_.shards);
    sims_.reserve(opts_.shards);
    executed_.assign(opts_.shards, 0);
    for (std::size_t i = 0; i < opts_.shards; ++i) {
        auto buf = std::make_unique<obs::TraceBuffer>(opts_.trace_capacity);
        // Disjoint id namespaces so merged causal trees never collide:
        // shard i's spans/traces live in ((i+1) << 40) + n.
        buf->set_id_namespace((static_cast<std::uint64_t>(i) + 1) << 40);
        buffers_.push_back(std::move(buf));
        // Construct the shard's Simulator under a redirect so its trace
        // clock binds to the shard buffer, not the root.
        obs::TraceBuffer::Redirect r(*buffers_.back());
        sims_.push_back(std::make_unique<Simulator>());
    }
    lanes_.reserve(opts_.shards * opts_.shards);
    for (std::size_t i = 0; i < opts_.shards * opts_.shards; ++i) {
        lanes_.push_back(std::make_unique<Lane>());
    }
    workers_.reserve(opts_.workers);
    for (std::size_t i = 0; i < opts_.workers; ++i) {
        workers_.emplace_back([this]() { worker_main(); });
    }
}

ShardedSimulator::~ShardedSimulator() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
}

std::size_t ShardedSimulator::shard_of(std::string_view name) const {
    // Avalanche the FNV hash: hall names share prefixes ("hall/0",
    // "hall/1"), and raw FNV barely moves the high bits for those.
    return hash_avalanche(fnv1a64(name)) % sims_.size();
}

std::uint64_t ShardedSimulator::shard_seed(std::size_t shard, std::string_view stream) const {
    std::uint64_t h = fnv1a64_mix(fnv1a64(stream), opts_.seed);
    h = fnv1a64_mix(h, static_cast<std::uint64_t>(shard));
    return hash_avalanche(h);
}

void ShardedSimulator::post(std::size_t src, std::size_t dst, SimTime when,
                            Simulator::Callback fn) {
    // Conservative clamp: nothing crosses shards faster than the
    // lookahead, which is exactly what lets a window run to
    // T_min + lookahead without waiting for in-flight sends.
    SimTime earliest = sims_[src]->now() + opts_.lookahead;
    if (when < earliest) when = earliest;
    {
        Lane& l = lane(src, dst);
        std::lock_guard<std::mutex> lock(l.mu);
        l.msgs.push_back(Pending{when, std::move(fn)});
    }
    posts_.fetch_add(1, std::memory_order_relaxed);
    shard_metrics().posts.inc();
}

void ShardedSimulator::drain_lanes() {
    // Fixed (dst, src, FIFO) order: import seq numbers — the same-instant
    // tie-breakers — are assigned here, so they depend only on this
    // deterministic order, never on worker scheduling.
    for (std::size_t dst = 0; dst < sims_.size(); ++dst) {
        for (std::size_t src = 0; src < sims_.size(); ++src) {
            Lane& l = lane(src, dst);
            std::vector<Pending> msgs;
            {
                std::lock_guard<std::mutex> lock(l.mu);
                msgs.swap(l.msgs);
            }
            for (auto& m : msgs) {
                sims_[dst]->schedule_at(m.when, std::move(m.fn));
            }
        }
    }
}

void ShardedSimulator::run_window_parallel(SimTime horizon) {
    std::unique_lock<std::mutex> lock(mu_);
    win_horizon_ = horizon;
    next_shard_ = 0;
    done_shards_ = 0;
    ++gen_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this]() { return done_shards_ == sims_.size(); });
}

void ShardedSimulator::worker_main() {
    // Workers are epoch participants: they announce quiescence after every
    // shard window, so hook-table snapshots retired by a concurrent weave
    // are reclaimed at the next barrier without any dispatch-path fence.
    EpochDomain::Participant participant(EpochDomain::global());
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t seen_gen = 0;
    for (;;) {
        work_cv_.wait(lock, [&]() { return stop_ || gen_ != seen_gen; });
        if (stop_) return;
        seen_gen = gen_;
        while (next_shard_ < sims_.size()) {
            std::size_t i = next_shard_++;
            SimTime horizon = win_horizon_;
            lock.unlock();
            std::size_t ran;
            {
                // Everything the shard's events record — spans, instants,
                // clock reads — lands in the shard's own buffer.
                obs::TraceBuffer::Redirect redirect(*buffers_[i]);
                ran = sims_[i]->run_window(horizon);
            }
            participant.quiescent();
            lock.lock();
            executed_[i] += ran;
            if (++done_shards_ == sims_.size()) done_cv_.notify_all();
        }
    }
}

void ShardedSimulator::run_until(SimTime deadline) {
    for (;;) {
        // Drain first: a message posted during the previous window (or by
        // coordinator setup code) may be the earliest event anywhere.
        drain_lanes();
        SimTime t_min = SimTime::max();
        for (auto& s : sims_) t_min = std::min(t_min, s->next_event_time());
        if (t_min > deadline) break;
        // Exclusive edge one past the deadline so events *at* the deadline
        // run in the final window (guard the +1 against the sentinel).
        SimTime horizon = t_min + opts_.lookahead;
        if (deadline.ns < INT64_MAX && SimTime{deadline.ns + 1} < horizon) {
            horizon = SimTime{deadline.ns + 1};
        }
        run_window_parallel(horizon);
        SimTime edge = std::min(horizon, deadline);
        for (auto& s : sims_) s->advance_to(edge);
        barrier_now_ = edge;
        ++windows_;
        shard_metrics().windows.inc();
    }
    for (auto& s : sims_) s->advance_to(deadline);
    barrier_now_ = deadline;
}

std::uint64_t ShardedSimulator::executed() const {
    std::uint64_t total = 0;
    for (std::uint64_t e : executed_) total += e;
    return total;
}

std::uint64_t ShardedSimulator::posts() const {
    return posts_.load(std::memory_order_relaxed);
}

std::vector<obs::TraceEvent> ShardedSimulator::merged_trace() const {
    struct Tagged {
        obs::TraceEvent ev;
        std::size_t shard;
    };
    std::vector<Tagged> all;
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
        for (auto& ev : buffers_[i]->events()) {
            all.push_back(Tagged{std::move(ev), i});
        }
    }
    // Stable sort on (time, shard) keeps each shard's in-ring order as the
    // final tie-breaker — the documented deterministic merge rule.
    std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
        if (a.ev.at != b.ev.at) return a.ev.at < b.ev.at;
        return a.shard < b.shard;
    });
    std::vector<obs::TraceEvent> out;
    out.reserve(all.size());
    for (auto& t : all) out.push_back(std::move(t.ev));
    return out;
}

}  // namespace pmp::sim
