// Token bucket on virtual time.
//
// The standard rate limiter, reformulated for the simulated clock: tokens
// accrue as a pure function of elapsed virtual time, so refills cost no
// simulator events and replay is bit-identical for a given call sequence.
// Shared by rpc admission control (calls per second per node) and the log
// storm guard (lines per window per component).
#pragma once

#include <cstdint>

#include "common/time.h"

namespace pmp::sim {

class TokenBucket {
public:
    /// `rate_per_sec` tokens accrue per virtual second, up to `burst`
    /// banked. The bucket starts full. A zero rate means "unlimited":
    /// try_take always succeeds.
    TokenBucket(double rate_per_sec, double burst)
        : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

    bool try_take(SimTime now, double n = 1.0) {
        if (rate_ <= 0.0) return true;
        refill(now);
        if (tokens_ < n) return false;
        tokens_ -= n;
        return true;
    }

    /// How long until `n` tokens will have accrued (zero if available now).
    /// Used to derive retry-after hints for shed calls.
    Duration time_until(SimTime now, double n = 1.0) const {
        if (rate_ <= 0.0) return Duration{0};
        double have = tokens_at(now);
        if (have >= n) return Duration{0};
        double secs = (n - have) / rate_;
        return Duration{static_cast<std::int64_t>(secs * 1e9) + 1};
    }

    double available(SimTime now) const { return tokens_at(now); }
    double rate() const { return rate_; }
    double burst() const { return burst_; }

private:
    void refill(SimTime now) {
        tokens_ = tokens_at(now);
        last_ = now;
    }
    double tokens_at(SimTime now) const {
        if (now <= last_) return tokens_;
        double accrued = (now - last_).count() / 1e9 * rate_;
        double t = tokens_ + accrued;
        return t > burst_ ? burst_ : t;
    }

    double rate_;
    double burst_;
    double tokens_;
    SimTime last_ = SimTime::zero();
};

}  // namespace pmp::sim
