// Deterministic parallel simulation: shards under conservative windows.
//
// A ShardedSimulator partitions a world into N independent Simulators
// ("shards" — typically one per hall or cell, assigned by stable name
// hash) and advances them in lock-step *time windows* on a worker pool:
//
//   1. Drain cross-shard mailboxes into the destination shards' queues,
//      in fixed (destination, source, FIFO) order.
//   2. Compute T_min = min over shards of next_event_time().
//   3. horizon = min(T_min + lookahead, deadline⁺) — the conservative
//      bound: no cross-shard message sent during this window can demand
//      delivery before `horizon`, because every send is clamped to at
//      least sender-now + lookahead.
//   4. Run every shard to the horizon in parallel (strictly-before edge:
//      events at exactly `horizon` wait for the next window so they order
//      after the mailbox drain).
//   5. Barrier; advance every shard's clock to the window edge; repeat.
//
// Determinism contract: for a fixed seed and world construction order, the
// event order *within* each shard, the per-shard trace buffers, and the
// merged trace are byte-identical regardless of worker count — windows and
// drain order depend only on virtual time, never on which OS thread ran
// which shard or how fast. Worker threads participate in rt::EpochDomain
// and announce quiescence at every barrier, so hook-table snapshots
// retired by a concurrent weave are reclaimed promptly without fencing
// any dispatch fast path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace pmp::obs {
class TraceBuffer;
struct TraceEvent;
}

namespace pmp::sim {

struct ShardOptions {
    std::size_t shards = 1;
    std::size_t workers = 1;
    /// Minimum cross-shard latency: every post() is delivered no earlier
    /// than sender-now + lookahead. Larger values mean wider windows
    /// (fewer barriers, more parallelism); must be at least 1ns.
    Duration lookahead = milliseconds(1);
    /// Per-shard trace ring capacity.
    std::size_t trace_capacity = 4096;
    /// World seed; shard_seed() derives per-shard, per-stream sub-seeds.
    std::uint64_t seed = 1;
};

class ShardedSimulator {
public:
    explicit ShardedSimulator(ShardOptions opts);
    ~ShardedSimulator();
    ShardedSimulator(const ShardedSimulator&) = delete;
    ShardedSimulator& operator=(const ShardedSimulator&) = delete;

    std::size_t shard_count() const { return sims_.size(); }

    /// Deterministic shard placement by stable name (hall/cell id): the
    /// same name lands on the same shard for any process, any run.
    std::size_t shard_of(std::string_view name) const;

    /// The shard's own event loop (single-threaded; only touch it from
    /// the coordinator between windows or from events running on it).
    Simulator& shard(std::size_t i) { return *sims_[i]; }
    /// The shard's private trace ring (ids namespaced per shard).
    obs::TraceBuffer& trace(std::size_t i) { return *buffers_[i]; }

    /// Sub-seed for a (shard, stream) pair — stable under re-sharding of
    /// *other* streams, so per-shard RNG draws replay identically at any
    /// worker count.
    std::uint64_t shard_seed(std::size_t shard, std::string_view stream) const;

    /// Cross-shard send: run `fn` on shard `dst`'s timeline at
    /// max(when, shard(src).now() + lookahead). Call either from the
    /// coordinator between windows or from an event currently executing
    /// on shard `src` (the sender's clock is read, so src must be the
    /// shard the calling event runs on). Delivery order is deterministic:
    /// mailboxes drain at the next window edge in (dst, src, FIFO) order.
    void post(std::size_t src, std::size_t dst, SimTime when, Simulator::Callback fn);

    /// Run all shards to `deadline` under conservative windows; afterwards
    /// every shard's now() == deadline and no event at time <= deadline is
    /// pending anywhere (mailboxes included).
    void run_until(SimTime deadline);
    void run_for(Duration d) { run_until(now() + d); }

    /// The last committed barrier time (all shard clocks aligned here
    /// between windows).
    SimTime now() const { return barrier_now_; }

    /// Synchronization windows executed so far.
    std::uint64_t windows() const { return windows_; }
    /// Events executed across all shards.
    std::uint64_t executed() const;
    /// Cross-shard messages posted so far.
    std::uint64_t posts() const;

    /// All shard events merged into one timeline, ordered by
    /// (time, shard, in-shard order) — the deterministic merge rule; two
    /// runs of the same world at different worker counts produce
    /// byte-identical merged vectors.
    std::vector<obs::TraceEvent> merged_trace() const;

private:
    struct Pending {
        SimTime when;
        Simulator::Callback fn;
    };
    /// One mailbox lane per (src, dst) pair. Only the src shard's worker
    /// posts into a lane during a window, but src events may also fan out
    /// from the coordinator during setup — hence the per-lane mutex.
    struct Lane {
        std::mutex mu;
        std::vector<Pending> msgs;
    };

    void worker_main();
    void drain_lanes();
    void run_window_parallel(SimTime horizon);
    Lane& lane(std::size_t src, std::size_t dst) {
        return *lanes_[src * sims_.size() + dst];
    }

    ShardOptions opts_;
    std::vector<std::unique_ptr<obs::TraceBuffer>> buffers_;
    std::vector<std::unique_ptr<Simulator>> sims_;
    std::vector<std::unique_ptr<Lane>> lanes_;

    SimTime barrier_now_ = SimTime::zero();
    std::uint64_t windows_ = 0;
    std::vector<std::uint64_t> executed_;  ///< per shard, coordinator-read
    std::atomic<std::uint64_t> posts_{0};

    // Worker pool: coordinator publishes (generation, horizon), workers
    // claim shard indices until none remain, then quiesce their epoch
    // participation and report done. The mutex orders every cross-thread
    // access to shard state between windows.
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::uint64_t gen_ = 0;
    SimTime win_horizon_ = SimTime::zero();
    std::size_t next_shard_ = 0;
    std::size_t done_shards_ = 0;
    bool stop_ = false;
};

}  // namespace pmp::sim
