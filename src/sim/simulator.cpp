#include "sim/simulator.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmp::sim {

Simulator::Simulator() {
    // Bind to the thread's current buffer, not root(): a shard simulator
    // constructed under a TraceBuffer::Redirect clocks its own shard buffer.
    trace_buffer_ = &obs::TraceBuffer::global();
    trace_clock_token_ = trace_buffer_->set_clock([this]() { return now_; });
}

Simulator::~Simulator() { trace_buffer_->clear_clock(trace_clock_token_); }

TimerId Simulator::schedule_at(SimTime when, Callback fn) {
    if (when < now_) when = now_;
    std::uint64_t id = ++next_id_;
    live_.insert(id);
    queue_.push(Event{when, ++next_seq_, id, /*repeating=*/false, std::move(fn)});
    return TimerId{id};
}

TimerId Simulator::schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
}

TimerId Simulator::schedule_every(Duration period, Callback fn) {
    // The repeating timer keeps one pending event at a time. The shared id
    // is stable across re-arms so a single cancel() stops the cycle: the
    // cancelled_ tombstone suppresses the in-flight event, which is the
    // only thing that would re-arm.
    std::uint64_t id = ++next_id_;
    live_.insert(id);
    auto shared_fn = std::make_shared<Callback>(std::move(fn));
    auto rearm = std::make_shared<std::function<void()>>();
    // The rearm body refers to itself only weakly; the strong reference
    // lives in the queued event. Once the final event is consumed (fired
    // or tombstoned away) everything is freed — capturing `rearm` strongly
    // here would form a shared_ptr cycle and leak the closure.
    *rearm = [this, id, period, shared_fn,
              weak = std::weak_ptr<std::function<void()>>(rearm)]() {
        (*shared_fn)();
        if (live_.contains(id)) {
            auto self = weak.lock();  // held alive by the event invoking us
            queue_.push(Event{now_ + period, ++next_seq_, id, /*repeating=*/true,
                              [self]() { (*self)(); }});
        } else {
            // Cancelled from inside fn: no event will carry the tombstone
            // out of the queue, so clear it here.
            cancelled_.erase(id);
        }
    };
    queue_.push(Event{now_ + period, ++next_seq_, id, /*repeating=*/true,
                      [rearm]() { (*rearm)(); }});
    return TimerId{id};
}

bool Simulator::cancel(TimerId id) {
    if (!id.valid() || !live_.erase(id.value)) return false;
    cancelled_.insert(id.value);
    maybe_compact();
    return true;
}

void Simulator::maybe_compact() {
    // Rebuild the queue once tombstones exceed half the live set: a
    // workload that arms and cancels many timers (lease renewals across
    // handoffs) would otherwise drag a heap full of dead entries through
    // every push/pop. Each rebuild removes at least a third of the queue,
    // so the cost is amortized against the cancels that forced it.
    if (cancelled_.size() * 2 <= pending()) return;
    std::vector<Event> keep;
    keep.reserve(queue_.size() - cancelled_.size());
    while (!queue_.empty()) {
        Event ev = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        if (!cancelled_.contains(ev.id)) keep.push_back(std::move(ev));
    }
    cancelled_.clear();
    for (auto& ev : keep) queue_.push(std::move(ev));
    ++compactions_;
    obs::Registry::global().counter("sim.compactions").inc();
}

bool Simulator::fire_next() {
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        if (!ev.repeating) live_.erase(ev.id);
        now_ = ev.when;
        ev.fn();
        return true;
    }
    return false;
}

bool Simulator::step() { return fire_next(); }

std::size_t Simulator::run(std::size_t limit) {
    std::size_t executed = 0;
    while (executed < limit && fire_next()) ++executed;
    return executed;
}

void Simulator::run_until(SimTime deadline) {
    // next_event_time() skips tombstones, so a cancelled entry at the top
    // of the heap can never trick the loop into firing a live event that
    // lies beyond the deadline.
    while (next_event_time() <= deadline) {
        fire_next();
    }
    if (now_ < deadline) now_ = deadline;
}

void Simulator::run_for(Duration d) { run_until(now_ + d); }

SimTime Simulator::next_event_time() {
    while (!queue_.empty()) {
        const Event& top = queue_.top();
        if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            queue_.pop();
            continue;
        }
        return top.when;
    }
    return SimTime::max();
}

std::size_t Simulator::run_window(SimTime horizon) {
    // Strictly-before: an event at exactly `horizon` belongs to the next
    // window, after the barrier has drained cross-shard mailboxes whose
    // messages may land at that same instant (and must keep the global
    // (time, seq) FIFO order with it).
    std::size_t executed = 0;
    while (next_event_time() < horizon) {
        if (fire_next()) ++executed;
    }
    return executed;
}

void Simulator::advance_to(SimTime t) {
    if (now_ < t) now_ = t;
}

}  // namespace pmp::sim
