#include "sim/simulator.h"

#include <memory>
#include <utility>

#include "obs/trace.h"

namespace pmp::sim {

Simulator::Simulator() {
    trace_clock_token_ =
        obs::TraceBuffer::global().set_clock([this]() { return now_; });
}

Simulator::~Simulator() { obs::TraceBuffer::global().clear_clock(trace_clock_token_); }

TimerId Simulator::schedule_at(SimTime when, Callback fn) {
    if (when < now_) when = now_;
    std::uint64_t id = ++next_id_;
    live_.insert(id);
    queue_.push(Event{when, ++next_seq_, id, /*repeating=*/false, std::move(fn)});
    return TimerId{id};
}

TimerId Simulator::schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
}

TimerId Simulator::schedule_every(Duration period, Callback fn) {
    // The repeating timer keeps one pending event at a time. The shared id
    // is stable across re-arms so a single cancel() stops the cycle: the
    // cancelled_ tombstone suppresses the in-flight event, which is the
    // only thing that would re-arm.
    std::uint64_t id = ++next_id_;
    live_.insert(id);
    auto shared_fn = std::make_shared<Callback>(std::move(fn));
    auto rearm = std::make_shared<std::function<void()>>();
    // The rearm body refers to itself only weakly; the strong reference
    // lives in the queued event. Once the final event is consumed (fired
    // or tombstoned away) everything is freed — capturing `rearm` strongly
    // here would form a shared_ptr cycle and leak the closure.
    *rearm = [this, id, period, shared_fn,
              weak = std::weak_ptr<std::function<void()>>(rearm)]() {
        (*shared_fn)();
        if (live_.contains(id)) {
            auto self = weak.lock();  // held alive by the event invoking us
            queue_.push(Event{now_ + period, ++next_seq_, id, /*repeating=*/true,
                              [self]() { (*self)(); }});
        } else {
            // Cancelled from inside fn: no event will carry the tombstone
            // out of the queue, so clear it here.
            cancelled_.erase(id);
        }
    };
    queue_.push(Event{now_ + period, ++next_seq_, id, /*repeating=*/true,
                      [rearm]() { (*rearm)(); }});
    return TimerId{id};
}

bool Simulator::cancel(TimerId id) {
    if (!id.valid() || !live_.erase(id.value)) return false;
    cancelled_.insert(id.value);
    return true;
}

bool Simulator::fire_next() {
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        if (!ev.repeating) live_.erase(ev.id);
        now_ = ev.when;
        ev.fn();
        return true;
    }
    return false;
}

bool Simulator::step() { return fire_next(); }

std::size_t Simulator::run(std::size_t limit) {
    std::size_t executed = 0;
    while (executed < limit && fire_next()) ++executed;
    return executed;
}

void Simulator::run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) {
        fire_next();
    }
    if (now_ < deadline) now_ = deadline;
}

void Simulator::run_for(Duration d) { run_until(now_ + d); }

}  // namespace pmp::sim
