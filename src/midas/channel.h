// Secure-channel wire filters (paper §3.3: "an extension that will encrypt
// every outgoing call from an application and decrypt every incoming call").
//
// The same filter pair is used by the receiver-side `rpc.set_channel`
// builtin and by any infrastructure node that keys its own channel (a base
// station distributing a secure-channel extension must speak the channel
// itself, or its keep-alives would be dropped as plaintext).
//
// The cipher is a toy (magic tag + repeating-key XOR): the reproduction's
// point is the join point on the marshaling path and the extension
// lifecycle, not cryptographic strength — see DESIGN.md §2.
#pragma once

#include <string>
#include <utility>

#include "rt/rpc.h"

namespace pmp::midas {

/// Build the (outbound, inbound) filter pair for `key`. Inbound throws
/// ParseError on payloads that do not carry the channel tag, so plaintext
/// from unadapted peers is dropped by the rpc layer.
std::pair<rt::RpcEndpoint::WireFilter, rt::RpcEndpoint::WireFilter> make_channel_filters(
    const std::string& key);

/// Convenience: key a node's rpc channel under `owner`.
void key_channel(rt::RpcEndpoint& rpc, rt::HookOwner owner, const std::string& key);

}  // namespace pmp::midas
