#include "midas/channel.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace pmp::midas {

namespace {
const Bytes kMagic = {0x53, 0x43, 0x30, 0x31};  // "SC01"

Bytes crypt(const Bytes& key, std::span<const std::uint8_t> data) {
    Bytes out(data.begin(), data.end());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] ^= key[i % key.size()];
    return out;
}
}  // namespace

std::pair<rt::RpcEndpoint::WireFilter, rt::RpcEndpoint::WireFilter> make_channel_filters(
    const std::string& key_text) {
    if (key_text.empty()) throw Error("channel key must be non-empty");
    Bytes key = to_bytes(key_text);

    // Hot-path counters: cache the registry slots once per filter pair.
    auto& reg = obs::Registry::global();
    obs::Counter* sealed = &reg.counter("midas.channel.sealed");
    obs::Counter* opened = &reg.counter("midas.channel.opened");
    obs::Counter* rejected = &reg.counter("midas.channel.rejected");

    rt::RpcEndpoint::WireFilter outbound = [key, sealed](Bytes plain) {
        sealed->inc();
        Bytes wire = kMagic;
        append(wire, std::span<const std::uint8_t>(
                         crypt(key, std::span<const std::uint8_t>(plain))));
        return wire;
    };
    rt::RpcEndpoint::WireFilter inbound = [key, opened, rejected](Bytes wire) {
        if (wire.size() < kMagic.size() ||
            !std::equal(kMagic.begin(), kMagic.end(), wire.begin())) {
            rejected->inc();
            throw ParseError("rpc payload is not channel-encrypted", 0, 0);
        }
        opened->inc();
        return crypt(key, std::span<const std::uint8_t>(wire).subspan(kMagic.size()));
    };
    return {std::move(outbound), std::move(inbound)};
}

void key_channel(rt::RpcEndpoint& rpc, rt::HookOwner owner, const std::string& key) {
    auto [outbound, inbound] = make_channel_filters(key);
    rpc.add_wire_filter(owner, /*priority=*/0, std::move(outbound), std::move(inbound));
}

}  // namespace pmp::midas
