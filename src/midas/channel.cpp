#include "midas/channel.h"

#include "common/error.h"

namespace pmp::midas {

namespace {
const Bytes kMagic = {0x53, 0x43, 0x30, 0x31};  // "SC01"

Bytes crypt(const Bytes& key, std::span<const std::uint8_t> data) {
    Bytes out(data.begin(), data.end());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] ^= key[i % key.size()];
    return out;
}
}  // namespace

std::pair<rt::RpcEndpoint::WireFilter, rt::RpcEndpoint::WireFilter> make_channel_filters(
    const std::string& key_text) {
    if (key_text.empty()) throw Error("channel key must be non-empty");
    Bytes key = to_bytes(key_text);

    rt::RpcEndpoint::WireFilter outbound = [key](Bytes plain) {
        Bytes wire = kMagic;
        append(wire, std::span<const std::uint8_t>(
                         crypt(key, std::span<const std::uint8_t>(plain))));
        return wire;
    };
    rt::RpcEndpoint::WireFilter inbound = [key](Bytes wire) {
        if (wire.size() < kMagic.size() ||
            !std::equal(kMagic.begin(), kMagic.end(), wire.begin())) {
            throw ParseError("rpc payload is not channel-encrypted", 0, 0);
        }
        return crypt(key, std::span<const std::uint8_t>(wire).subspan(kMagic.size()));
    };
    return {std::move(outbound), std::move(inbound)};
}

void key_channel(rt::RpcEndpoint& rpc, rt::HookOwner owner, const std::string& key) {
    auto [outbound, inbound] = make_channel_filters(key);
    rpc.add_wire_filter(owner, /*priority=*/0, std::move(outbound), std::move(inbound));
}

}  // namespace pmp::midas
