#include "midas/durable.h"

#include <algorithm>
#include <stdexcept>

namespace pmp::midas {

using rt::Dict;
using rt::List;
using rt::Value;

namespace {

std::int64_t i64(std::uint64_t v) { return static_cast<std::int64_t>(v); }
std::uint64_t u64(const Value& v) { return static_cast<std::uint64_t>(v.as_int()); }

const std::string& str_at(const Dict& d, const char* key) { return d.at(key).as_str(); }

}  // namespace

// ---------------------------------------------------------------- base ----

Value BaseDurableState::rec_epoch(std::uint64_t epoch) {
    return Value{Dict{{"op", Value{"epoch"}}, {"epoch", Value{i64(epoch)}}}};
}

Value BaseDurableState::rec_policy_add(const std::string& name, std::uint32_t version,
                                       const Bytes& sealed) {
    return Value{Dict{{"op", Value{"policy-add"}},
                      {"name", Value{name}},
                      {"version", Value{i64(version)}},
                      {"sealed", Value{sealed}}}};
}

Value BaseDurableState::rec_policy_remove(const std::string& name) {
    return Value{Dict{{"op", Value{"policy-remove"}}, {"name", Value{name}}}};
}

Value BaseDurableState::rec_adapt(std::uint64_t node, const std::string& label,
                                  SimTime since) {
    return Value{Dict{{"op", Value{"adapt"}},
                      {"node", Value{i64(node)}},
                      {"label", Value{label}},
                      {"since_ns", Value{since.ns}}}};
}

Value BaseDurableState::rec_install(std::uint64_t node, const std::string& label,
                                    const std::string& name, std::uint64_t ext) {
    return Value{Dict{{"op", Value{"install"}},
                      {"node", Value{i64(node)}},
                      {"label", Value{label}},
                      {"name", Value{name}},
                      {"ext", Value{i64(ext)}}}};
}

Value BaseDurableState::rec_node_gone(const std::string& label) {
    return Value{Dict{{"op", Value{"node-gone"}}, {"label", Value{label}}}};
}

Value BaseDurableState::rec_event(const std::string& source, SimTime at,
                                  const rt::Value& data) {
    return Value{Dict{{"op", Value{"event"}},
                      {"source", Value{source}},
                      {"at_ns", Value{at.ns}},
                      {"data", data}}};
}

namespace {

Value encode_rollout(const BaseDurableState::RolloutEntry& r) {
    List stages;
    for (std::uint32_t bp : r.stages_bp) stages.push_back(Value{i64(bp)});
    return Value{Dict{{"name", Value{r.name}},
                      {"version", Value{i64(r.version)}},
                      {"sealed", Value{r.sealed}},
                      {"incumbent", Value{i64(r.incumbent_version)}},
                      {"stages_bp", Value{std::move(stages)}},
                      {"stage", Value{i64(r.stage)}},
                      {"status", Value{static_cast<std::int64_t>(r.status)}},
                      {"cause", Value{r.abort_cause}}}};
}

BaseDurableState::RolloutEntry decode_rollout(const Dict& d) {
    BaseDurableState::RolloutEntry r;
    r.name = str_at(d, "name");
    r.version = static_cast<std::uint32_t>(d.at("version").as_int());
    r.sealed = d.at("sealed").as_blob();
    r.incumbent_version = static_cast<std::uint32_t>(d.at("incumbent").as_int());
    for (const Value& s : d.at("stages_bp").as_list()) {
        r.stages_bp.push_back(static_cast<std::uint32_t>(s.as_int()));
    }
    r.stage = static_cast<std::uint32_t>(d.at("stage").as_int());
    r.status = static_cast<int>(d.at("status").as_int());
    r.abort_cause = str_at(d, "cause");
    return r;
}

}  // namespace

Value BaseDurableState::rec_rollout_begin(const RolloutEntry& entry) {
    Value v = encode_rollout(entry);
    Dict d = v.as_dict();
    d.set("op", Value{"rollout-begin"});
    return Value{std::move(d)};
}

Value BaseDurableState::rec_rollout_stage(const std::string& name, std::uint32_t stage) {
    return Value{Dict{{"op", Value{"rollout-stage"}},
                      {"name", Value{name}},
                      {"stage", Value{i64(stage)}}}};
}

Value BaseDurableState::rec_rollout_abort(const std::string& name,
                                          const std::string& cause) {
    return Value{Dict{{"op", Value{"rollout-abort"}},
                      {"name", Value{name}},
                      {"cause", Value{cause}}}};
}

Value BaseDurableState::rec_rollout_complete(const std::string& name) {
    return Value{Dict{{"op", Value{"rollout-complete"}}, {"name", Value{name}}}};
}

rt::Value BaseDurableState::to_snapshot() const {
    Dict versions;
    for (const auto& [name, v] : last_version) versions.set(name, Value{i64(v)});

    List policy_list;
    for (const auto& [name, sealed] : policies) {
        policy_list.push_back(Value{Dict{{"name", Value{name}}, {"sealed", Value{sealed}}}});
    }

    List book_list;
    for (const auto& [label, entry] : book) {
        Dict installed;
        for (const auto& [name, ext] : entry.installed) installed.set(name, Value{i64(ext)});
        book_list.push_back(Value{Dict{{"node", Value{i64(entry.node)}},
                                       {"label", Value{label}},
                                       {"since_ns", Value{entry.since.ns}},
                                       {"installed", Value{std::move(installed)}}}});
    }

    List event_list;
    for (const Event& ev : events) {
        event_list.push_back(Value{Dict{{"source", Value{ev.source}},
                                        {"at_ns", Value{ev.at.ns}},
                                        {"data", ev.data}}});
    }

    List rollout_list;
    for (const auto& [_, r] : rollouts) rollout_list.push_back(encode_rollout(r));

    // "rollouts" is a new optional key: pre-rollout replay logic only at()s
    // the keys it knows, so it reads this snapshot unchanged, and the
    // loader below find()s it so old snapshots without the key still load.
    return Value{Dict{{"epoch", Value{i64(epoch)}},
                      {"versions", Value{std::move(versions)}},
                      {"policies", Value{std::move(policy_list)}},
                      {"book", Value{std::move(book_list)}},
                      {"events", Value{std::move(event_list)}},
                      {"rollouts", Value{std::move(rollout_list)}}}};
}

namespace {

void base_load_snapshot(BaseDurableState& st, const Value& snap) {
    const Dict& d = snap.as_dict();
    st.epoch = u64(d.at("epoch"));
    for (const auto& [name, v] : d.at("versions").as_dict()) {
        st.last_version[name] = static_cast<std::uint32_t>(v.as_int());
    }
    for (const Value& p : d.at("policies").as_list()) {
        const Dict& pd = p.as_dict();
        st.policies[str_at(pd, "name")] = pd.at("sealed").as_blob();
    }
    for (const Value& b : d.at("book").as_list()) {
        const Dict& bd = b.as_dict();
        BaseDurableState::BookEntry entry;
        entry.node = u64(bd.at("node"));
        entry.label = str_at(bd, "label");
        entry.since = SimTime{bd.at("since_ns").as_int()};
        for (const auto& [name, ext] : bd.at("installed").as_dict()) {
            entry.installed[name] = u64(ext);
        }
        st.book[entry.label] = std::move(entry);
    }
    for (const Value& e : d.at("events").as_list()) {
        const Dict& ed = e.as_dict();
        st.events.push_back(BaseDurableState::Event{
            str_at(ed, "source"), SimTime{ed.at("at_ns").as_int()}, ed.at("data")});
    }
    // Optional: snapshots written before the rollout controller existed
    // carry no "rollouts" key.
    if (const Value* rl = d.find("rollouts")) {
        for (const Value& r : rl->as_list()) {
            BaseDurableState::RolloutEntry entry = decode_rollout(r.as_dict());
            st.rollouts[entry.name] = std::move(entry);
        }
    }
}

void base_apply(BaseDurableState& st, const Value& rec) {
    const Dict& d = rec.as_dict();
    const std::string& op = str_at(d, "op");
    if (op == "epoch") {
        st.epoch = u64(d.at("epoch"));
    } else if (op == "policy-add") {
        const std::string& name = str_at(d, "name");
        auto version = static_cast<std::uint32_t>(d.at("version").as_int());
        st.policies[name] = d.at("sealed").as_blob();
        auto& last = st.last_version[name];
        if (version > last) last = version;
    } else if (op == "policy-remove") {
        const std::string& name = str_at(d, "name");
        st.policies.erase(name);
        // last_version survives removal so a re-added policy still bumps
        // past what receivers may hold. The revokes sent alongside the
        // removal are implied: drop the name from every book entry.
        for (auto& [_, entry] : st.book) entry.installed.erase(name);
    } else if (op == "adapt") {
        const std::string& label = str_at(d, "label");
        std::uint64_t node = u64(d.at("node"));
        BaseDurableState::BookEntry& entry = st.book[label];
        if (entry.node != node) entry.installed.clear();  // a different device
        entry.node = node;
        entry.label = label;
        entry.since = SimTime{d.at("since_ns").as_int()};
    } else if (op == "install") {
        const std::string& label = str_at(d, "label");
        BaseDurableState::BookEntry& entry = st.book[label];
        entry.label = label;
        entry.node = u64(d.at("node"));
        entry.installed[str_at(d, "name")] = u64(d.at("ext"));
    } else if (op == "node-gone") {
        st.book.erase(str_at(d, "label"));
    } else if (op == "event") {
        st.events.push_back(BaseDurableState::Event{
            str_at(d, "source"), SimTime{d.at("at_ns").as_int()}, d.at("data")});
    } else if (op == "rollout-begin") {
        BaseDurableState::RolloutEntry entry = decode_rollout(d);
        // The canary's version is claimed the moment the rollout begins, so
        // an add_extension after a crash-recovery can never reuse it.
        auto& last = st.last_version[entry.name];
        if (entry.version > last) last = entry.version;
        st.rollouts[entry.name] = std::move(entry);
    } else if (op == "rollout-stage") {
        auto it = st.rollouts.find(str_at(d, "name"));
        if (it != st.rollouts.end()) {
            it->second.stage = static_cast<std::uint32_t>(d.at("stage").as_int());
        }
    } else if (op == "rollout-abort") {
        auto it = st.rollouts.find(str_at(d, "name"));
        if (it != st.rollouts.end()) {
            it->second.status = 1;
            it->second.abort_cause = str_at(d, "cause");
        }
    } else if (op == "rollout-complete") {
        auto it = st.rollouts.find(str_at(d, "name"));
        if (it != st.rollouts.end()) it->second.status = 2;
    } else {
        ++st.skipped_records;
    }
}

}  // namespace

BaseDurableState BaseDurableState::replay(const db::Journal::Restored& restored) {
    BaseDurableState st;
    if (restored.snapshot) {
        try {
            base_load_snapshot(st, *restored.snapshot);
        } catch (const std::exception&) {
            // A snapshot the CRC accepted but the schema does not: start
            // empty and let the WAL contribute what it can.
            st = BaseDurableState{};
            ++st.skipped_records;
        }
    }
    for (const rt::Value& rec : restored.wal) {
        try {
            base_apply(st, rec);
        } catch (const std::exception&) {
            ++st.skipped_records;
        }
    }
    return st;
}

// ------------------------------------------------------------ receiver ----

Value ReceiverDurableState::rec_install(const std::string& name, std::uint32_t version,
                                        const std::string& issuer) {
    return Value{Dict{{"op", Value{"install"}},
                      {"name", Value{name}},
                      {"version", Value{i64(version)}},
                      {"issuer", Value{issuer}}}};
}

Value ReceiverDurableState::rec_withdraw(const std::string& name) {
    return Value{Dict{{"op", Value{"withdraw"}}, {"name", Value{name}}}};
}

Value ReceiverDurableState::rec_quarantine(const std::string& name, std::uint32_t version) {
    return Value{Dict{{"op", Value{"quarantine"}},
                      {"name", Value{name}},
                      {"version", Value{i64(version)}}}};
}

Value ReceiverDurableState::rec_unquarantine(const std::string& name,
                                             std::uint32_t version) {
    return Value{Dict{{"op", Value{"unquarantine"}},
                      {"name", Value{name}},
                      {"version", Value{i64(version)}}}};
}

namespace {

// TraceEvent <-> rt::Value. kv is an ordered list (duplicate keys are
// legal in a trace payload), so it serializes as a list of {k, v} dicts
// rather than a Dict.
Value encode_trace_event(const obs::TraceEvent& ev) {
    List kv;
    for (const auto& [k, v] : ev.kv) {
        kv.push_back(Value{Dict{{"k", Value{k}}, {"v", Value{v}}}});
    }
    return Value{Dict{{"at_ns", Value{ev.at.ns}},
                      {"kind", Value{i64(static_cast<std::uint8_t>(ev.kind))}},
                      {"span", Value{i64(ev.span)}},
                      {"trace", Value{i64(ev.trace)}},
                      {"parent", Value{i64(ev.parent)}},
                      {"comp", Value{ev.component}},
                      {"name", Value{ev.name}},
                      {"kv", Value{std::move(kv)}}}};
}

obs::TraceEvent decode_trace_event(const Value& v) {
    const Dict& d = v.as_dict();
    auto kind_raw = u64(d.at("kind"));
    if (kind_raw > static_cast<std::uint64_t>(obs::EventKind::kInstant)) {
        throw std::runtime_error("flight record: unknown event kind");
    }
    obs::TraceEvent ev;
    ev.at = SimTime{d.at("at_ns").as_int()};
    ev.kind = static_cast<obs::EventKind>(kind_raw);
    ev.span = u64(d.at("span"));
    ev.trace = u64(d.at("trace"));
    ev.parent = u64(d.at("parent"));
    ev.component = str_at(d, "comp");
    ev.name = str_at(d, "name");
    for (const Value& pair : d.at("kv").as_list()) {
        const Dict& pd = pair.as_dict();
        ev.kv.emplace_back(str_at(pd, "k"), str_at(pd, "v"));
    }
    return ev;
}

}  // namespace

Value ReceiverDurableState::rec_flight(const std::string& reason, SimTime at,
                                       const std::vector<obs::TraceEvent>& events) {
    List event_list;
    for (const obs::TraceEvent& ev : events) event_list.push_back(encode_trace_event(ev));
    return Value{Dict{{"op", Value{"flight"}},
                      {"reason", Value{reason}},
                      {"at_ns", Value{at.ns}},
                      {"events", Value{std::move(event_list)}}}};
}

rt::Value ReceiverDurableState::to_snapshot() const {
    List manifest_list;
    for (const ManifestEntry& m : manifest) {
        manifest_list.push_back(Value{Dict{{"name", Value{m.name}},
                                           {"version", Value{i64(m.version)}},
                                           {"issuer", Value{m.issuer}}}});
    }
    List quarantine_list;
    for (const auto& [name, version] : quarantined) {
        quarantine_list.push_back(
            Value{Dict{{"name", Value{name}}, {"version", Value{i64(version)}}}});
    }
    List flight_list;
    for (const FlightDump& f : flights) {
        flight_list.push_back(rec_flight(f.reason, f.at, f.events));
    }
    return Value{Dict{{"manifest", Value{std::move(manifest_list)}},
                      {"quarantined", Value{std::move(quarantine_list)}},
                      {"flights", Value{std::move(flight_list)}}}};
}

namespace {

void receiver_apply_flight(ReceiverDurableState& st, const Dict& d) {
    ReceiverDurableState::FlightDump dump;
    dump.reason = str_at(d, "reason");
    dump.at = SimTime{d.at("at_ns").as_int()};
    for (const Value& ev : d.at("events").as_list()) {
        dump.events.push_back(decode_trace_event(ev));
    }
    st.flights.push_back(std::move(dump));
    while (st.flights.size() > ReceiverDurableState::kMaxFlights) {
        st.flights.erase(st.flights.begin());
    }
}

void receiver_apply(ReceiverDurableState& st, const Value& rec) {
    const Dict& d = rec.as_dict();
    const std::string& op = str_at(d, "op");
    if (op == "install") {
        ReceiverDurableState::ManifestEntry m{str_at(d, "name"),
                                              static_cast<std::uint32_t>(d.at("version").as_int()),
                                              str_at(d, "issuer")};
        std::erase_if(st.manifest, [&](const auto& e) { return e.name == m.name; });
        st.manifest.push_back(std::move(m));
    } else if (op == "withdraw") {
        const std::string& name = str_at(d, "name");
        std::erase_if(st.manifest, [&](const auto& e) { return e.name == name; });
    } else if (op == "quarantine") {
        std::pair<std::string, std::uint32_t> key{
            str_at(d, "name"), static_cast<std::uint32_t>(d.at("version").as_int())};
        if (std::find(st.quarantined.begin(), st.quarantined.end(), key) ==
            st.quarantined.end()) {
            st.quarantined.push_back(std::move(key));
        }
    } else if (op == "unquarantine") {
        std::pair<std::string, std::uint32_t> key{
            str_at(d, "name"), static_cast<std::uint32_t>(d.at("version").as_int())};
        std::erase(st.quarantined, key);
    } else if (op == "flight") {
        receiver_apply_flight(st, d);
    } else {
        ++st.skipped_records;
    }
}

}  // namespace

ReceiverDurableState ReceiverDurableState::replay(const db::Journal::Restored& restored) {
    ReceiverDurableState st;
    if (restored.snapshot) {
        try {
            const Dict& d = restored.snapshot->as_dict();
            for (const Value& m : d.at("manifest").as_list()) {
                const Dict& md = m.as_dict();
                st.manifest.push_back(ReceiverDurableState::ManifestEntry{
                    str_at(md, "name"), static_cast<std::uint32_t>(md.at("version").as_int()),
                    str_at(md, "issuer")});
            }
            for (const Value& q : d.at("quarantined").as_list()) {
                const Dict& qd = q.as_dict();
                st.quarantined.emplace_back(
                    str_at(qd, "name"), static_cast<std::uint32_t>(qd.at("version").as_int()));
            }
            // Older snapshots predate the flight-recorder records.
            if (const Value* fl = d.find("flights")) {
                for (const Value& f : fl->as_list()) {
                    receiver_apply_flight(st, f.as_dict());
                }
            }
        } catch (const std::exception&) {
            st = ReceiverDurableState{};
            ++st.skipped_records;
        }
    }
    for (const rt::Value& rec : restored.wal) {
        try {
            receiver_apply(st, rec);
        } catch (const std::exception&) {
            ++st.skipped_records;
        }
    }
    return st;
}

}  // namespace pmp::midas
