#include "midas/package.h"

#include "common/error.h"

namespace pmp::midas {

using rt::Dict;
using rt::List;
using rt::Value;

namespace {

std::int64_t kind_code(prose::AdviceKind kind) { return static_cast<std::int64_t>(kind); }

prose::AdviceKind kind_from_code(std::int64_t code) {
    if (code < 0 || code > static_cast<std::int64_t>(prose::AdviceKind::kFieldGet)) {
        throw ParseError("bad advice kind code " + std::to_string(code), 0, 0);
    }
    return static_cast<prose::AdviceKind>(code);
}

}  // namespace

Bytes ExtensionPackage::signed_payload() const {
    // The payload is the canonical Value encoding of the package contents;
    // Dict keys encode sorted, so equal packages produce equal bytes.
    List bindings_v;
    for (const PackageBinding& b : bindings) {
        Dict bd{{"kind", Value{kind_code(b.kind)}},
                {"pointcut", Value{b.pointcut}},
                {"function", Value{b.function}},
                {"priority", Value{static_cast<std::int64_t>(b.priority)}}};
        bindings_v.push_back(Value{std::move(bd)});
    }
    List caps_v;
    for (const std::string& c : capabilities) caps_v.push_back(Value{c});
    List implies_v;
    for (const std::string& i : implies) implies_v.push_back(Value{i});

    Dict d{{"name", Value{name}},
           {"version", Value{static_cast<std::int64_t>(version)}},
           {"script", Value{script}},
           {"bindings", Value{std::move(bindings_v)}},
           {"config", config},
           {"capabilities", Value{std::move(caps_v)}},
           {"implies", Value{std::move(implies_v)}}};
    return Value{std::move(d)}.encode();
}

Bytes ExtensionPackage::seal(const crypto::KeyStore& keys, const std::string& issuer) const {
    Bytes payload = signed_payload();
    crypto::Signature sig = keys.sign(issuer, std::span<const std::uint8_t>(payload));
    Bytes sig_bytes = sig.encode();

    Bytes out;
    append_u32(out, static_cast<std::uint32_t>(payload.size()));
    append(out, std::span<const std::uint8_t>(payload));
    append(out, std::span<const std::uint8_t>(sig_bytes));
    return out;
}

std::pair<ExtensionPackage, crypto::Signature> ExtensionPackage::open(
    std::span<const std::uint8_t> sealed) {
    ByteReader reader(sealed);
    std::uint32_t payload_len = reader.read_u32();
    auto payload = reader.read(payload_len);
    crypto::Signature sig = crypto::Signature::decode(reader);

    Value v = Value::decode(payload);
    const Dict& d = v.as_dict();

    ExtensionPackage pkg;
    pkg.name = d.at("name").as_str();
    pkg.version = static_cast<std::uint32_t>(d.at("version").as_int());
    pkg.script = d.at("script").as_str();
    for (const Value& bv : d.at("bindings").as_list()) {
        const Dict& bd = bv.as_dict();
        pkg.bindings.push_back(PackageBinding{
            kind_from_code(bd.at("kind").as_int()), bd.at("pointcut").as_str(),
            bd.at("function").as_str(), static_cast<int>(bd.at("priority").as_int())});
    }
    pkg.config = d.at("config");
    for (const Value& cv : d.at("capabilities").as_list()) {
        pkg.capabilities.push_back(cv.as_str());
    }
    for (const Value& iv : d.at("implies").as_list()) {
        pkg.implies.push_back(iv.as_str());
    }
    return {std::move(pkg), std::move(sig)};
}

std::size_t ExtensionPackage::wire_size() const {
    return signed_payload().size() + 40;  // + signature overhead
}

}  // namespace pmp::midas
