#include "midas/collector.h"

namespace pmp::midas {

using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

Collector::Collector(rt::RpcEndpoint& rpc, db::EventStore& store)
    : rpc_(rpc), store_(store) {
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("Collector")) {
        auto type =
            rt::TypeInfo::Builder("Collector")
                .method("post", TypeKind::kInt,
                        {{"source", TypeKind::kStr}, {"data", TypeKind::kAny}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            ++posts_;
                            auto seq = store_.append(args[0].as_str(),
                                                     rpc_.router().simulator().now(),
                                                     args[1]);
                            return Value{static_cast<std::int64_t>(seq)};
                        })
                .method("query", TypeKind::kList,
                        {{"source", TypeKind::kStr},
                         {"from_ms", TypeKind::kInt},
                         {"until_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            db::Query q;
                            if (!args[0].as_str().empty()) q.source = args[0].as_str();
                            if (args[1].as_int() >= 0) {
                                q.from = SimTime{args[1].as_int() * 1'000'000};
                            }
                            if (args[2].as_int() >= 0) {
                                q.until = SimTime{args[2].as_int() * 1'000'000};
                            }
                            List out;
                            for (const db::Record& rec : store_.query(q)) {
                                Dict d{{"seq", Value{static_cast<std::int64_t>(rec.seq)}},
                                       {"source", Value{rec.source}},
                                       {"at_ms", Value{rec.at.ns / 1'000'000}},
                                       {"data", rec.data}};
                                out.push_back(Value{std::move(d)});
                            }
                            return Value{std::move(out)};
                        })
                .method("sources", TypeKind::kList, {},
                        [this](rt::ServiceObject&, List&) -> Value {
                            List out;
                            for (const std::string& s : store_.sources()) {
                                out.push_back(Value{s});
                            }
                            return Value{std::move(out)};
                        })
                .build();
        runtime.register_type(type);
    }
    self_object_ = runtime.create("Collector", "collector");
    rpc_.export_object("collector");
}

}  // namespace pmp::midas
