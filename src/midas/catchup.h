// Streaming catch-up client (docs/recovery.md, docs/storage.md).
//
// A receiver that restarts after a power cut — or enters a hall for the
// first time during a mass-recovery storm — needs the base's durable
// policy state. Pulling it as one blob does not survive the storm: the
// image can exceed a radio MTU's worth of patience, and a partition
// mid-transfer would force a full restart, multiplying recovery traffic
// exactly when the network is at its worst.
//
// The CatchupClient instead streams the image in bounded chunks through
// whatever "midas.catchup" provider its discovery scope offers — the base
// itself, or a CellRelay proxy that caches chunks so a whole cell
// restarting together costs the backhaul one image fetch, not one per
// node. The protocol:
//
//   manifest() -> {chain, epoch, lease_ms, base, total, crc, chunks,
//                  chunk_bytes}
//   chunk(chain, index) -> {data} | {stale: true} | {retry_ms: n}
//
// The client's cursor (`next index to fetch`) is the ack/resume point: a
// partition or provider failure mid-stream retries with exponential
// backoff and resumes from the cursor — never from chunk 0. Only a chain
// change (the base's policy set moved, or the base restarted into a new
// epoch) restarts the stream, because the old bytes could never
// CRC-verify into the new image. A per-provider circuit breaker (PR 4)
// guards the fetch loop so a drowning provider is probed, not hammered;
// on the serving side the chunks are classed install-priority by rpc
// admission, below the keep-alives that hold existing leases up.
//
// On completion the assembled image is CRC-checked and its policies are
// installed locally under the base's epoch and lease terms — the same
// do_install path a direct push takes, so trust, capabilities and
// quarantine all still apply. The base's own install later lands as a
// refresh.
#pragma once

#include "disco/lookup.h"
#include "midas/receiver.h"
#include "rt/breaker.h"

namespace pmp::midas {

struct CatchupConfig {
    Duration call_timeout = milliseconds(700);
    /// Retry backoff after a failed fetch, doubling up to the max. Retry
    /// hints from a not-ready proxy override when later.
    Duration retry_backoff = milliseconds(200);
    Duration retry_backoff_max = seconds(5);
    /// Per-provider circuit breaker over the fetch loop (<= 0 disables).
    int breaker_threshold = 4;
    Duration breaker_open_period = seconds(1);
    Duration breaker_open_max = seconds(8);
};

class CatchupClient {
public:
    CatchupClient(rt::RpcEndpoint& rpc, AdaptationService& receiver,
                  disco::DiscoveryClient& discovery, CatchupConfig config = {});
    ~CatchupClient();

    CatchupClient(const CatchupClient&) = delete;
    CatchupClient& operator=(const CatchupClient&) = delete;

    struct Stats {
        std::uint64_t sessions = 0;      ///< streams started
        std::uint64_t manifests = 0;     ///< manifests fetched
        std::uint64_t chunks = 0;        ///< chunks received
        std::uint64_t bytes = 0;         ///< chunk payload bytes received
        std::uint64_t resumes = 0;       ///< mid-stream recoveries (cursor kept)
        std::uint64_t restarts = 0;      ///< chain changed; stream restarted
        std::uint64_t completed = 0;     ///< images assembled, verified, applied
        std::uint64_t installs = 0;      ///< policies installed from images
        std::uint64_t fetch_failures = 0;///< call errors (timeout / shed / ...)
        std::uint64_t crc_failures = 0;  ///< assembled image failed its CRC
    };
    const Stats& stats() const { return stats_; }

    bool in_session() const { return active_; }
    /// Chain id of the last image applied (0 = none yet).
    std::uint64_t completed_chain() const { return completed_chain_; }

    /// Start (or queue) a session toward an explicit provider — tests and
    /// transports that already know where the image lives.
    void catch_up_from(NodeId provider);

private:
    void on_registrar(NodeId registrar, bool reachable);
    void lookup_provider(NodeId registrar, Duration backoff);
    void begin(NodeId provider);
    void step();                 ///< issue the next fetch, breaker permitting
    void fetch_manifest();
    void fetch_chunk();
    void on_fetch_error(std::exception_ptr error, bool transport);
    void retry_later(Duration d);
    void adopt_manifest(const rt::Value& m);
    void finish();               ///< verify + decode + install
    void end_session();

    rt::RpcEndpoint& rpc_;
    AdaptationService& receiver_;
    disco::DiscoveryClient& discovery_;
    CatchupConfig config_;
    rt::CircuitBreaker breaker_;

    // Session state. `next_chunk_` is the resume cursor: everything below
    // it is assembled in `buffer_` and never refetched within a chain.
    bool active_ = false;
    bool have_manifest_ = false;
    NodeId provider_{};
    std::uint64_t chain_ = 0;
    std::uint64_t epoch_ = 0;
    std::int64_t lease_ms_ = 0;
    std::uint64_t base_node_ = 0;
    std::size_t total_ = 0;
    std::uint32_t crc_ = 0;
    std::int64_t nchunks_ = 0;
    std::int64_t next_chunk_ = 0;
    Bytes buffer_;
    int failure_streak_ = 0;     ///< consecutive failed fetches this session
    std::uint64_t completed_chain_ = 0;

    Stats stats_;
    std::uint64_t registrar_token_ = 0;
    sim::TimerId retry_timer_{};
    bool retry_armed_ = false;
    // Liveness token for in-flight replies and parked retries.
    std::shared_ptr<char> token_ = std::make_shared<char>('\0');
};

}  // namespace pmp::midas
