#include "midas/supervisor.h"

#include "common/log.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmp::midas {

Supervisor::~Supervisor() {
    for (sim::TimerId id : timers_) network_.simulator().cancel(id);
}

sim::TimerId Supervisor::defer(Duration delay, sim::Simulator::Callback fn) {
    sim::TimerId id = network_.simulator().schedule_after(delay, std::move(fn));
    timers_.push_back(id);
    return id;
}

void Supervisor::manage(const std::string& label, Lifecycle lifecycle) {
    Managed& m = managed_[label];
    m.lifecycle = std::move(lifecycle);
    m.lifecycle.start();
    m.alive = true;
}

void Supervisor::crash(const std::string& label, Duration down_for) {
    auto it = managed_.find(label);
    if (it == managed_.end() || !it->second.alive) return;
    Managed& m = it->second;
    m.alive = false;
    ++stats_.crashes;
    obs::Registry::global().counter("midas.supervisor.crashes", label).inc();
    obs::TraceBuffer::global().instant(
        "midas.recovery", "node.crash",
        {{"node", label},
         {"down_ms", std::to_string(down_for.count() / 1'000'000)}});
    log_warn(network_.simulator().now(), "supervisor", "crashing node ", label,
             " for ", down_for.count() / 1'000'000, " ms");
    // Freeze the flight recorder at the moment of impact: the events
    // leading up to the crash, retrievable from the supervisor after the
    // fact. In-memory only — under the power-cord model nothing can be
    // journaled once the power is gone (quarantine dumps, by contrast, are
    // journaled by the receiver while it is still alive).
    obs::FlightRecorder::global().dump(label, "crash", network_.simulator().now());

    // Power first, then radio: nothing after this instant is journaled or
    // transmitted. Frames already sent still arrive at their receivers.
    m.lifecycle.power_cut();
    network_.remove_node(m.lifecycle.node_id());
    // The node may be executing this very crash (a fail-point inside one
    // of its handlers): destroy the object on the next tick, never
    // mid-call.
    defer(Duration{0}, [this, label]() {
        auto it = managed_.find(label);
        if (it != managed_.end() && !it->second.alive) it->second.lifecycle.kill();
    });
    defer(down_for, [this, label]() { restart(label); });
}

void Supervisor::restart(const std::string& label) {
    auto it = managed_.find(label);
    if (it == managed_.end() || it->second.alive) return;
    ++stats_.restarts;
    obs::Registry::global().counter("midas.supervisor.restarts", label).inc();
    std::uint64_t span = obs::TraceBuffer::global().begin_span(
        "midas.recovery", "node.restart", {{"node", label}});
    log_info(network_.simulator().now(), "supervisor", "restarting node ", label);
    it->second.lifecycle.start();
    it->second.alive = true;
    obs::TraceBuffer::global().end_span(span, {});
}

void Supervisor::apply(const net::CrashPlan& plan, std::uint64_t seed) {
    // expand_crashes folds plan.events in alongside the expanded windows.
    for (const net::CrashEvent& ev : net::expand_crashes(plan, seed)) {
        sim::TimerId id = network_.simulator().schedule_at(
            ev.at, [this, ev]() { crash(ev.node, ev.down_for); });
        timers_.push_back(id);
    }
}

bool Supervisor::alive(const std::string& label) const {
    auto it = managed_.find(label);
    return it != managed_.end() && it->second.alive;
}

}  // namespace pmp::midas
