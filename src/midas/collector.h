// Collector: the base-station endpoint extensions post monitoring data to.
//
// In Fig 3b the hardware-monitoring extension sends intercepted motor
// actions asynchronously to the base station (2), which stores them in a
// database (3). The Collector is that endpoint: a service object named
// "collector" whose post() appends to the hall's EventStore. Extensions
// reach it through the `owner.post("collector", "post", [...])` builtin.
//
// Remote interface (object "collector"):
//   post(source str, data any) -> int   (sequence number)
//   query(source str, from_ms int, until_ms int) -> [ {seq, source, at_ms, data} ]
//   sources() -> [str]
#pragma once

#include "db/store.h"
#include "rt/rpc.h"

namespace pmp::midas {

class Collector {
public:
    Collector(rt::RpcEndpoint& rpc, db::EventStore& store);

    db::EventStore& store() { return store_; }

    /// Number of posts accepted so far.
    std::uint64_t posts() const { return posts_; }

private:
    rt::RpcEndpoint& rpc_;
    db::EventStore& store_;
    std::shared_ptr<rt::ServiceObject> self_object_;
    std::uint64_t posts_ = 0;
};

}  // namespace pmp::midas
