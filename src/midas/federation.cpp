#include "midas/federation.h"

namespace pmp::midas {

using rt::List;
using rt::TypeKind;
using rt::Value;

Federation::Federation(rt::RpcEndpoint& rpc, ExtensionBase& base, std::string name)
    : rpc_(rpc), base_(base), name_(std::move(name)) {
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("Roaming")) {
        runtime.register_type(
            rt::TypeInfo::Builder("Roaming")
                .method("claimed", TypeKind::kInt,
                        {{"node_label", TypeKind::kStr},
                         {"by", TypeKind::kStr},
                         {"since_ns", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            ++stats_.claims_received;
                            const std::string& label = args[0].as_str();
                            const std::string& by = args[1].as_str();
                            SimTime theirs{args[2].as_int()};
                            auto ours = base_.claim_stamp_of(label);
                            if (!ours) return Value{std::int64_t{0}};
                            // The fresher adaptation wins; ties break by
                            // base name so both sides reach the same
                            // verdict without another round-trip.
                            bool yield = theirs.ns > ours->ns ||
                                         (theirs.ns == ours->ns && by > name_);
                            if (yield) {
                                if (base_.release_node(label)) ++stats_.releases;
                                return Value{std::int64_t{1}};
                            }
                            return Value{std::int64_t{2}};
                        })
                .build());
    }
    self_object_ = runtime.create("Roaming", "roaming");
    rpc_.export_object("roaming");
    rpc_.exempt_from_filters("roaming");  // backbone control plane

    base_.on_adapt([this](const ExtensionBase::AdaptedNode& node) {
        for (NodeId neighbor : neighbors_) {
            ++stats_.claims_sent;
            rpc_.call_async(neighbor, "roaming", "claimed",
                            {Value{node.label}, Value{name_}, Value{node.since.ns}},
                            [](Value, std::exception_ptr) {});
        }
    });

    // Recovered book entries go through probation: claim each to the
    // neighbours and only resume keep-alives for the ones nobody else
    // adapted while we were down. Deferred one tick so the node's setup
    // code can add_neighbor() after constructing the federation.
    probation_timer_ = rpc_.router().simulator().schedule_after(Duration{0}, [this]() {
        for (const auto& [label, since] : base_.begin_probation()) {
            if (neighbors_.empty()) {
                base_.confirm_node(label);
                ++stats_.recoveries_confirmed;
            } else {
                claim_recovered(label, since);
            }
        }
    });
}

Federation::~Federation() { rpc_.router().simulator().cancel(probation_timer_); }

void Federation::claim_recovered(const std::string& label, SimTime since) {
    auto pending = std::make_shared<int>(static_cast<int>(neighbors_.size()));
    auto keep = std::make_shared<bool>(true);
    for (NodeId neighbor : neighbors_) {
        ++stats_.claims_sent;
        rpc_.call_async(
            neighbor, "roaming", "claimed", {Value{label}, Value{name_}, Value{since.ns}},
            [this, label, pending, keep](Value result, std::exception_ptr error) {
                // An unreachable neighbour can't out-claim us; only an
                // explicit kept-newer verdict costs us the node.
                if (!error && result.is_int() && result.as_int() == 2) *keep = false;
                if (--*pending > 0) return;
                if (*keep) {
                    if (base_.confirm_node(label)) ++stats_.recoveries_confirmed;
                } else {
                    if (base_.release_node(label)) ++stats_.recoveries_ceded;
                }
            });
    }
}

void Federation::add_neighbor(NodeId base_node) { neighbors_.push_back(base_node); }

}  // namespace pmp::midas
