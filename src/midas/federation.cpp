#include "midas/federation.h"

namespace pmp::midas {

using rt::List;
using rt::TypeKind;
using rt::Value;

Federation::Federation(rt::RpcEndpoint& rpc, ExtensionBase& base, std::string name)
    : rpc_(rpc), base_(base), name_(std::move(name)) {
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("Roaming")) {
        runtime.register_type(
            rt::TypeInfo::Builder("Roaming")
                .method("claimed", TypeKind::kBool,
                        {{"node_label", TypeKind::kStr}, {"by", TypeKind::kStr}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            ++stats_.claims_received;
                            bool released = base_.release_node(args[0].as_str());
                            if (released) ++stats_.releases;
                            return Value{released};
                        })
                .build());
    }
    self_object_ = runtime.create("Roaming", "roaming");
    rpc_.export_object("roaming");
    rpc_.exempt_from_filters("roaming");  // backbone control plane

    base_.on_adapt([this](const ExtensionBase::AdaptedNode& node) {
        for (NodeId neighbor : neighbors_) {
            ++stats_.claims_sent;
            rpc_.call_async(neighbor, "roaming", "claimed",
                            {Value{node.label}, Value{name_}},
                            [](Value, std::exception_ptr) {});
        }
    });
}

void Federation::add_neighbor(NodeId base_node) { neighbors_.push_back(base_node); }

}  // namespace pmp::midas
