// Staged canary rollout with health-gated promotion and automatic
// rollback (docs/rollout.md).
//
// `ExtensionBase::add_extension` pushes a new version at every adapted
// node at once — a bad extension is a fleet-wide incident whose only
// safety net is per-node quarantine after the damage is done. The
// RolloutController turns a version change into a staged operation: the
// canary goes to a deterministic cohort (1% → 10% → 50% → 100% of the
// fleet, hashed from the node *label* so membership is stable across
// base restarts and seed replays, and spreads across cells instead of
// concentrating in one), and each promotion is gated on a health window
// fed by signals that already exist — receiver quarantines, governor
// throttle/suspend escalations, install refusals, and obs::Profiler
// advice-latency regressions against the incumbent.
//
// A breached gate rolls the fleet back automatically: the base kept the
// incumbent pinned in its policy set (the catch-up image therefore served
// the incumbent the whole time), so rollback is erasing the canary's
// install bookkeeping — the normal retry/cell-roster machinery re-pushes
// the incumbent, which the receiver accepts as a replacement — plus a
// scoped unquarantine so a node that once quarantined the incumbent's
// exact version takes it back. Every decision (begin / stage / abort /
// complete) is journaled, so a restarted base resumes a half-finished
// rollout at the journaled stage rather than restarting at 0% or
// completing it blindly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/time.h"
#include "midas/durable.h"
#include "midas/package.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace pmp::midas {

class ExtensionBase;

/// `add_extension` was called for a name whose rollout is still in
/// flight. The caller must wait for completion, or abort via rollback,
/// before replacing the package — silently superseding the canary would
/// leave the fleet split between two unreconciled versions.
class RolloutInFlight : public Error {
public:
    using Error::Error;
};

struct RolloutConfig {
    /// Cohort ladder as fleet fractions, ascending, ending at 1.0. A node
    /// is in stage i's cohort iff hash(pkg, label) falls under stages[i] —
    /// cohorts nest, so promotion only ever *adds* nodes.
    std::vector<double> stages = {0.01, 0.10, 0.50, 1.0};
    /// Minimum time at a stage before promotion is considered.
    Duration stage_window = seconds(4);
    /// Health poll / promotion check cadence.
    Duration tick_period = milliseconds(400);
    /// Fraction of the stage cohort that must confirm the canary install
    /// before promotion (in addition to the window). Keeps a partition
    /// from promoting a stage that never actually ran the canary.
    double confirm_fraction = 0.5;
    /// Gate thresholds, cumulative over the rollout. Quarantine is terminal
    /// evidence, so one strike aborts by default.
    int quarantine_tolerance = 1;
    /// Non-transport canary install failures (streak, reset by a success).
    int refusal_tolerance = 3;
    /// Governor throttle/suspend escalations on cohort nodes.
    int escalation_tolerance = 3;
    /// Latency gate: abort when the canary's windowed advice p95 exceeds
    /// `latency_factor` × the incumbent's baseline p95 with at least
    /// `latency_min_samples` in both. 0 disables (the default: advice
    /// latency is wall-clock, so an armed gate trades bit-identical seed
    /// replay for regression coverage — see docs/rollout.md).
    double latency_factor = 0.0;
    std::uint64_t latency_min_samples = 50;
};

/// Drives staged rollouts for one ExtensionBase. Owned by the base;
/// everything network- or journal-shaped goes through it.
class RolloutController {
public:
    enum class Status { kActive, kAborted, kComplete };

    struct Health {
        int quarantines = 0;    ///< receiver quarantines on cohort nodes
        int escalations = 0;    ///< governor throttles+suspends on cohort nodes
        int refusal_streak = 0; ///< consecutive non-transport install failures
        double baseline_p95_ns = 0;  ///< incumbent advice p95 at begin()
        double window_p95_ns = 0;    ///< canary advice p95 this stage
    };

    /// Read-only snapshot of one rollout, for tests and dashboards.
    struct View {
        std::string name;
        std::uint32_t version = 0;
        std::uint32_t incumbent_version = 0;
        std::size_t stage = 0;
        std::size_t stage_count = 0;
        double stage_fraction = 0;  ///< cohort fraction of the current stage
        std::size_t cohort = 0;     ///< adapted nodes in the current cohort
        std::size_t upgraded = 0;   ///< cohort nodes confirmed on the canary
        Status status = Status::kActive;
        std::string abort_cause;
        Health health;
        std::vector<std::string> verdicts;  ///< per-stage gate verdict log
    };

    RolloutController(ExtensionBase& base, RolloutConfig config);
    ~RolloutController();

    RolloutController(const RolloutController&) = delete;
    RolloutController& operator=(const RolloutController&) = delete;

    bool active(const std::string& name) const;
    std::optional<View> view(const std::string& name) const;
    std::vector<View> views() const;
    /// JSON-ready status (monitor_tool): stage, cohort sizes, health-gate
    /// verdicts and abort causes per rollout.
    rt::Value status_value() const;

    /// Deterministic cohort membership: would `label` run the canary of
    /// `name` at the currently promoted stage? False when no rollout of
    /// `name` is active. Public so tests can pin down the blast radius.
    bool selects_canary(const std::string& name, const std::string& label) const;

private:
    friend class ExtensionBase;

    struct Rollout {
        std::string name;
        ExtensionPackage pkg;  ///< canary, opened
        Bytes sealed;
        std::string hash;  ///< SHA-256 of sealed (cell blob routing)
        std::uint32_t incumbent_version = 0;
        std::vector<std::uint32_t> stages_bp;  ///< basis points, ascending
        std::size_t stage = 0;
        SimTime stage_since{};
        Status status = Status::kActive;
        std::string abort_cause;
        std::uint64_t stage_span = 0;  ///< open trace span for this stage

        // Volatile health bookkeeping (re-measured after a crash).
        std::set<std::string> upgraded;  ///< labels confirmed on the canary
        std::map<std::string, std::uint64_t> quarantine0;  ///< per-label baseline
        std::map<std::string, std::uint64_t> governor0;
        int quarantines = 0;
        int escalations = 0;
        int refusal_streak = 0;
        std::vector<std::uint64_t> lat_buckets0;  ///< advice_ns at stage entry
        std::uint64_t lat_count0 = 0;
        double baseline_p95 = 0;
        double window_p95 = 0;
        std::vector<std::string> verdicts;
    };

    // Driven by ExtensionBase.
    void begin(ExtensionPackage pkg, Bytes sealed, std::string hash,
               std::uint32_t incumbent_version);
    void adopt(const BaseDurableState::RolloutEntry& entry);  ///< crash resume
    void snapshot_into(BaseDurableState& st) const;
    /// Sealed canary bytes for `name`, or nullptr when inactive.
    const Bytes* canary_sealed(const std::string& name) const;
    /// Sealed bytes for a canary content hash (cell blob lookup).
    const Bytes* sealed_for_hash(const std::string& hash) const;
    const std::string* canary_hash(const std::string& name) const;
    std::uint32_t canary_version(const std::string& name) const;
    /// Install outcome feeds from the base's direct and cell paths.
    void note_install_ok(const std::string& name, const std::string& label);
    void note_install_error(const std::string& name, const std::string& label,
                            bool transport, bool quarantine_refusal);

    void tick();
    void arm_timer();
    static BaseDurableState::RolloutEntry snapshot_entry(const Rollout& r);
    bool in_cohort(const Rollout& r, std::size_t stage, const std::string& label) const;
    std::size_t cohort_size(const Rollout& r, std::size_t stage) const;
    std::size_t confirmed_in_cohort(const Rollout& r) const;
    void capture_stage_baselines(Rollout& r);
    void poll_health(Rollout& r);
    /// Non-empty = abort cause.
    std::string gate_breach(const Rollout& r) const;
    void push_canary_to_cohort(Rollout& r, std::size_t from_stage);
    void promote(Rollout& r);
    void complete(Rollout& r);
    void abort(Rollout& r, const std::string& cause);
    void open_stage_span(Rollout& r);
    void close_stage_span(Rollout& r, const std::string& verdict);
    void update_gauges() const;
    View view_of(const Rollout& r) const;

    ExtensionBase& base_;
    RolloutConfig config_;
    std::map<std::string, Rollout> rollouts_;
    sim::TimerId timer_{};
    bool timer_armed_ = false;

    obs::OwnedCounter promotions_c_;
    obs::OwnedCounter aborts_c_;
    obs::OwnedCounter completions_c_;
    obs::OwnedCounter strikes_c_;
    obs::OwnedCounter rollback_installs_c_;
};

}  // namespace pmp::midas
