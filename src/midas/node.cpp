#include "midas/node.h"

namespace pmp::midas {

NodeStack::NodeStack(net::Network& network, const std::string& label, net::Position pos,
                     double range, disco::DiscoveryConfig disco_config)
    : network_(network), label_(label) {
    id_ = network_.add_node(label, pos, range);
    router_ = std::make_unique<net::MessageRouter>(network_, id_);
    runtime_ = std::make_unique<rt::Runtime>(label);
    rpc_ = std::make_unique<rt::RpcEndpoint>(*router_, *runtime_);
    // The platform's control plane is exempt from application wire filters
    // (see RpcEndpoint::exempt_from_filters): its integrity comes from
    // package signatures, and the extension that keys a channel must be
    // deliverable before the channel exists.
    rpc_->exempt_from_filters("adaptation");
    rpc_->exempt_from_filters("registrar");
    rpc_->exempt_from_filters("disco.listener:");
    rpc_->exempt_from_filters("midas.cell");
    rpc_->exempt_from_filters("midas.catchup");
    weaver_ = std::make_unique<prose::Weaver>(*runtime_);
    discovery_ = std::make_unique<disco::DiscoveryClient>(*router_, *rpc_, disco_config);
}

MobileNode::MobileNode(net::Network& network, const std::string& label, net::Position pos,
                       double range, ReceiverConfig receiver_config,
                       std::shared_ptr<db::JournalStorage> durable,
                       disco::DiscoveryConfig disco_config)
    : NodeStack(network, label, pos, range, disco_config) {
    if (receiver_config.node_label.empty()) receiver_config.node_label = label;
    if (durable) {
        journal_ = std::make_shared<db::Journal>(std::move(durable), receiver_config.journal,
                                                 &network.simulator());
    }
    receiver_ = std::make_unique<AdaptationService>(rpc(), weaver(), trust_, discovery(),
                                                    std::move(receiver_config), journal_);
}

void MobileNode::enable_catchup(CatchupConfig config) {
    if (catchup_) return;
    catchup_ = std::make_unique<CatchupClient>(rpc(), *receiver_, discovery(), config);
}

BaseStation::BaseStation(net::Network& network, const std::string& label, net::Position pos,
                         double range, BaseConfig base_config,
                         disco::RegistrarConfig registrar_config,
                         std::shared_ptr<db::JournalStorage> durable,
                         disco::DiscoveryConfig disco_config)
    : NodeStack(network, label, pos, range, disco_config) {
    registrar_ = std::make_unique<disco::Registrar>(router(), rpc(), registrar_config);
    collector_ = std::make_unique<Collector>(rpc(), store_);
    if (durable) {
        journal_ = std::make_shared<db::Journal>(std::move(durable), base_config.journal,
                                                 &network.simulator());
    }
    base_ = std::make_unique<ExtensionBase>(rpc(), *registrar_, keys_, std::move(base_config),
                                            journal_, journal_ ? &store_ : nullptr);
}

CellStation::CellStation(net::Network& network, const std::string& label, net::Position pos,
                         double range, CellRelayConfig relay_config,
                         disco::RegistrarConfig registrar_config,
                         disco::DiscoveryConfig disco_config)
    : NodeStack(network, label, pos, range, disco_config) {
    if (relay_config.cell.empty()) relay_config.cell = label;
    registrar_ = std::make_unique<disco::Registrar>(router(), rpc(), registrar_config);
    relay_ = std::make_unique<CellRelay>(rpc(), registrar_.get(), std::move(relay_config));
}

Peer::Peer(net::Network& network, const std::string& label, net::Position pos, double range,
           BaseConfig base_config, ReceiverConfig receiver_config)
    : NodeStack(network, label, pos, range) {
    if (receiver_config.node_label.empty()) receiver_config.node_label = label;
    registrar_ = std::make_unique<disco::Registrar>(router(), rpc());
    collector_ = std::make_unique<Collector>(rpc(), store_);
    receiver_ = std::make_unique<AdaptationService>(rpc(), weaver(), trust_, discovery(),
                                                    std::move(receiver_config));
    base_ = std::make_unique<ExtensionBase>(rpc(), *registrar_, keys_, std::move(base_config));
}

}  // namespace pmp::midas
