// Cell-level batched lease protocol (ROADMAP: million-node federation).
//
// The paper's base keeps every adapted node's extensions alive with one
// keep-alive RPC per (node, extension) per period. One hall of a few dozen
// machines barely notices; a federation of 10^5..10^6 nodes melts the
// backhaul — the per-period control-plane cost at the base is O(fleet).
//
// This module collapses that cost to O(cells). Each cell (a radio
// neighbourhood, typically anchored by the node that hosts the cell's
// registrar) runs a CellRelay. The ExtensionBase sends the relay ONE
// delta-encoded frame per period carrying:
//
//   * roster ops — put/del of (node, extension) entries since the last
//     acknowledged frame, sequence-numbered (seq/base) so a dropped,
//     duplicated or reordered frame can never desynchronise the roster:
//     the relay applies a delta only on an exact base match and answers
//     `resync` otherwise, upon which the base resends the full roster.
//     Duplicate frames are answered from the rpc layer's at-most-once
//     reply cache without re-dispatch, so nothing is ever applied twice.
//   * content-hash policy sync — roster entries name their package by the
//     SHA-256 of its sealed bytes; the blob itself rides along only the
//     first time a cell sees that hash (or again after the relay answers
//     `need-blob`, e.g. post-restart). An extension ships once per cell,
//     not once per node.
//   * a pause list — nodes whose caller-side circuit breaker is open this
//     period; the relay skips them and reports nothing, so skipped ticks
//     never count as keep-alive failures (PR 4 semantics preserved).
//
// The relay fans out ordinary per-node install/keepalive RPCs *locally*
// (cell-radio hops, not backhaul) and the reply to frame N carries the
// results collected since frame N-1 — the protocol is pipelined, one
// period of lag, never blocking on the fan-out:
//
//   * per-node liveness as a bitmap over the acknowledged roster order
//     (one bit per entry; lost replies lose one round of positive
//     evidence, which is harmless — absence of evidence never expires a
//     node),
//   * everything that needs reliable delivery (install results, refusals,
//     transport failures, need-blob, membership joins) as id-numbered
//     status records that the relay retains until the base acknowledges
//     the id high-water mark in a later frame. The base applies each id
//     once, so a duplicated or replayed reply cannot double-count a
//     failure or double-apply a renewal.
//
// The base unpacks these statuses into exactly the bookkeeping the
// per-node path maintains — `adapted_` entries, failure ledgers, epoch
// checks, breakers — so receivers, epoch recovery (PR 3) and overload
// protection (PR 4) are unchanged. If the relay itself stops answering,
// the base detaches the cell after the usual failure threshold and the
// cell's nodes fall back to the direct per-node path.
#pragma once

#include "disco/registrar.h"
#include "obs/metrics.h"

namespace pmp::midas {

/// Status codes carried in batch-reply status records. Healthy keep-alive
/// answers travel as bitmap bits, not records; these are the exceptions.
namespace cellproto {
constexpr int kInstalled = 1;      ///< install succeeded; `ext` holds the id
constexpr int kRefused = 2;        ///< keepalive answered false (stale/epoch)
constexpr int kTransportFail = 3;  ///< timeout / unreachable
constexpr int kNeedBlob = 4;       ///< install entry names an uncached hash
constexpr int kShed = 5;           ///< receiver shed the call (Overloaded)
constexpr int kError = 6;          ///< non-transport application error
}  // namespace cellproto

struct CellRelayConfig {
    std::string cell;  ///< label for logs/counters, e.g. "hall-a/cell-7"
    /// Timeout for the relay's local install/keepalive calls. Must sit
    /// under the base's keepalive period so one round's results are in
    /// before the next frame asks for them.
    Duration call_timeout = milliseconds(700);
    /// Cap on the exponential round-skip backoff for failing entries.
    int max_backoff_rounds = 16;
    /// Catch-up proxy (docs/recovery.md): how long a cached manifest stays
    /// fresh before the next reader triggers an upstream refetch, and the
    /// retry hint handed to readers while a chunk is still being fetched
    /// from the base. The relay answers catch-up reads from its cache so a
    /// whole cell restarting after a power cut costs the backhaul one image
    /// fetch, not one per node.
    Duration catchup_manifest_ttl = seconds(2);
    Duration catchup_retry = milliseconds(150);
    /// Timeout for the relay's upstream catch-up fetches.
    Duration catchup_timeout = seconds(1);
};

/// The cell-side half of the batched lease protocol. Exports a "midas.cell"
/// service object whose single method `batch(frame)` applies roster deltas
/// and returns the previous round's results. If `local_registrar` is given,
/// the relay watches it for "midas.adaptation" advertisements and reports
/// newcomers to the base as join records — the base need not (and at fleet
/// scale cannot) watch every cell's registrar itself.
class CellRelay {
public:
    CellRelay(rt::RpcEndpoint& rpc, disco::Registrar* local_registrar = nullptr,
              CellRelayConfig config = {});
    ~CellRelay();

    CellRelay(const CellRelay&) = delete;
    CellRelay& operator=(const CellRelay&) = delete;

    std::size_t roster_size() const { return roster_.size(); }
    std::size_t cached_blobs() const { return blobs_.size(); }
    /// Epoch / lease adopted from the last *accepted* frame (refused stale
    /// frames leave them untouched); exposed for tests.
    std::uint64_t epoch() const { return epoch_; }
    std::int64_t lease_ms() const { return lease_ms_; }

    struct Stats {
        std::uint64_t frames = 0;        ///< batch frames processed
        std::uint64_t resyncs = 0;       ///< frames refused on seq mismatch
        std::uint64_t fanout_calls = 0;  ///< local install/keepalive RPCs
        std::uint64_t catchup_hits = 0;      ///< catch-up reads served from cache
        std::uint64_t catchup_waits = 0;     ///< reads answered "retry" while fetching
        std::uint64_t catchup_upstream = 0;  ///< upstream manifest/chunk fetches
    };
    const Stats& stats() const { return stats_; }

private:
    using EntryKey = std::pair<std::uint64_t, std::string>;  // (node, pkg name)
    struct Entry {
        std::uint64_t ext = 0;  ///< remote extension id; 0 = not yet installed
        std::string hash;       ///< content hash of the sealed package
        bool in_flight = false;
        bool need_blob_reported = false;
        int cooldown = 0;  ///< rounds to skip before the next attempt
        int penalty = 0;   ///< current backoff width (doubles per failure)
    };
    struct Status {
        std::uint64_t id;
        std::uint64_t node;
        std::string name;
        int code;
        std::uint64_t ext;
    };
    struct Join {
        std::uint64_t id;
        std::uint64_t node;
        std::string label;
    };

    void build_service_object();
    rt::Value do_batch(const rt::Value& frame);
    void fan_out();
    void push_status(std::uint64_t node, const std::string& name, int code,
                     std::uint64_t ext = 0);

    /// Catch-up proxy: cache-or-fetch replies for the cell's readers. A
    /// miss kicks exactly one upstream fetch per key and answers with a
    /// retry hint; the reader polls back and hits the cache.
    void build_catchup_proxy();
    rt::Value proxy_manifest();
    rt::Value proxy_chunk(std::uint64_t chain, std::int64_t index);
    rt::Value not_ready() const;
    void fetch_manifest_upstream();
    void fetch_chunk_upstream(std::uint64_t chain, std::int64_t index);

    rt::RpcEndpoint& rpc_;
    disco::Registrar* local_registrar_;
    CellRelayConfig config_;

    std::map<EntryKey, Entry> roster_;
    std::map<std::string, Bytes> blobs_;  ///< content hash -> sealed package
    std::uint64_t applied_seq_ = 0;
    std::uint64_t epoch_ = 0;
    std::int64_t lease_ms_ = 0;
    std::set<std::uint64_t> paused_;  ///< breaker-open nodes, this round

    std::uint64_t next_record_id_ = 0;
    std::vector<Status> pending_;     ///< retained until the base acks the id
    std::vector<Join> joins_;         ///< ditto
    std::set<EntryKey> ok_accum_;     ///< healthy keep-alives since last reply

    obs::OwnedCounter frames_c_;
    obs::OwnedCounter fanout_c_;
    obs::OwnedCounter resyncs_c_;

    Stats stats_;
    std::uint64_t watch_token_ = 0;
    std::shared_ptr<rt::ServiceObject> self_object_;

    // Catch-up proxy state. The base's address is learned from the first
    // accepted batch frame (the relay never configures it statically).
    NodeId base_node_{};
    rt::Value manifest_cache_;            ///< last upstream manifest dict
    SimTime manifest_fresh_until_{};      ///< TTL stamp for manifest_cache_
    bool manifest_fetching_ = false;
    std::uint64_t cached_chain_ = 0;      ///< chain the chunk cache belongs to
    std::map<std::int64_t, Bytes> chunk_cache_;   ///< index -> payload
    std::set<std::int64_t> chunk_fetching_;       ///< upstream fetch in flight
    std::shared_ptr<rt::ServiceObject> catchup_object_;
    // Liveness token for in-flight fan-out replies (see disco::LeasedResource).
    std::shared_ptr<char> token_ = std::make_shared<char>('\0');
};

}  // namespace pmp::midas
