#include "midas/catchup.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "db/journal.h"

namespace pmp::midas {

using rt::Dict;
using rt::Value;

CatchupClient::CatchupClient(rt::RpcEndpoint& rpc, AdaptationService& receiver,
                             disco::DiscoveryClient& discovery, CatchupConfig config)
    : rpc_(rpc),
      receiver_(receiver),
      discovery_(discovery),
      config_(config),
      breaker_(rpc.router().simulator(), receiver.config().node_label,
               rt::BreakerConfig{config.breaker_threshold, config.breaker_open_period,
                                 config.breaker_open_max}) {
    registrar_token_ = discovery_.on_registrar(
        [this](NodeId registrar, bool reachable) { on_registrar(registrar, reachable); });
    // Registrars already in range fired their appearance edge before we
    // subscribed; sweep them once so enabling catch-up late still works.
    for (NodeId registrar : discovery_.registrars()) on_registrar(registrar, true);
}

CatchupClient::~CatchupClient() {
    discovery_.off_registrar(registrar_token_);
    if (retry_armed_) rpc_.router().simulator().cancel(retry_timer_);
}

void CatchupClient::on_registrar(NodeId registrar, bool reachable) {
    if (!reachable) return;
    lookup_provider(registrar, config_.retry_backoff);
}

void CatchupClient::lookup_provider(NodeId registrar, Duration backoff) {
    discovery_.lookup(
        registrar, "midas.catchup",
        [this, registrar, backoff, guard = std::weak_ptr<char>(token_)](
            std::vector<disco::ServiceItem> items, std::exception_ptr error) {
            if (guard.expired()) return;
            if (!error && !items.empty()) {
                catch_up_from(items.front().provider);
                return;
            }
            // A lost lookup reply — or a provider registered a beat after
            // we asked — must not strand the node on a registrar that IS
            // serving catch-up. Re-ask with doubling backoff; a registrar
            // with no provider stops costing anything once the backoff
            // budget is spent (the next appearance edge asks afresh).
            if (backoff > config_.retry_backoff_max) return;
            rpc_.router().simulator().schedule_after(
                backoff, [this, registrar, backoff, guard]() {
                    if (guard.expired()) return;
                    lookup_provider(registrar, backoff * 2);
                });
        });
}

void CatchupClient::catch_up_from(NodeId provider) {
    if (active_) return;  // one stream at a time; the next trigger retries
    begin(provider);
}

void CatchupClient::begin(NodeId provider) {
    active_ = true;
    have_manifest_ = false;
    provider_ = provider;
    buffer_.clear();
    next_chunk_ = 0;
    failure_streak_ = 0;
    ++stats_.sessions;
    step();
}

void CatchupClient::end_session() {
    active_ = false;
    have_manifest_ = false;
    buffer_.clear();
    buffer_.shrink_to_fit();
    next_chunk_ = 0;
    failure_streak_ = 0;
}

void CatchupClient::retry_later(Duration d) {
    if (retry_armed_) return;
    retry_armed_ = true;
    retry_timer_ = rpc_.router().simulator().schedule_after(
        d, [this, guard = std::weak_ptr<char>(token_)]() {
            if (guard.expired()) return;
            retry_armed_ = false;
            step();
        });
}

void CatchupClient::step() {
    if (!active_) return;
    if (!breaker_.allow(provider_)) {
        // Breaker open toward the provider: cool off for one backoff and
        // re-ask; allow() eventually grants the half-open probe.
        Duration d = config_.retry_backoff;
        for (int i = 0; i < failure_streak_ && d < config_.retry_backoff_max; ++i) d *= 2;
        retry_later(std::min(d, config_.retry_backoff_max));
        return;
    }
    if (!have_manifest_) {
        fetch_manifest();
    } else if (next_chunk_ < nchunks_) {
        fetch_chunk();
    } else {
        finish();
    }
}

void CatchupClient::on_fetch_error(std::exception_ptr error, bool transport) {
    ++stats_.fetch_failures;
    ++failure_streak_;
    Duration d = config_.retry_backoff;
    for (int i = 1; i < failure_streak_ && d < config_.retry_backoff_max; ++i) d *= 2;
    if (d > config_.retry_backoff_max) d = config_.retry_backoff_max;
    bool overloaded = false;
    try {
        std::rethrow_exception(error);
    } catch (const Overloaded& e) {
        // The provider is shedding install-class work; its hint knows the
        // queue better than our backoff does.
        overloaded = true;
        if (e.retry_after() > d) d = e.retry_after();
    } catch (const std::exception&) {
    }
    breaker_.on_failure(provider_, transport || overloaded);
    // The cursor is untouched: when the link heals we resume from the
    // last assembled chunk, never from the beginning.
    retry_later(d);
}

void CatchupClient::fetch_manifest() {
    rpc_.call_async(
        provider_, "midas.catchup", "manifest", {},
        rt::CallOptions{.timeout = config_.call_timeout},
        [this, guard = std::weak_ptr<char>(token_)](Value result,
                                                    std::exception_ptr error,
                                                    bool transport) {
            if (guard.expired() || !active_) return;
            if (error) {
                on_fetch_error(error, transport);
                return;
            }
            breaker_.on_success(provider_);
            const Dict& m = result.as_dict();
            if (const Value* hint = m.find("retry_ms")) {
                // Proxy still warming its cache from the base.
                retry_later(milliseconds(std::max<std::int64_t>(1, hint->as_int())));
                return;
            }
            adopt_manifest(result);
        });
}

void CatchupClient::adopt_manifest(const Value& mv) {
    const Dict& m = mv.as_dict();
    std::uint64_t chain = static_cast<std::uint64_t>(m.at("chain").as_int());
    ++stats_.manifests;
    failure_streak_ = 0;
    if (chain == completed_chain_) {
        // Nothing new since the image we already applied.
        end_session();
        return;
    }
    if (have_manifest_ && chain != chain_) {
        // The image changed mid-stream; assembled bytes of the old chain
        // can never verify, so the stream restarts on the new chain.
        ++stats_.restarts;
        buffer_.clear();
        next_chunk_ = 0;
    }
    chain_ = chain;
    epoch_ = static_cast<std::uint64_t>(m.at("epoch").as_int());
    lease_ms_ = m.at("lease_ms").as_int();
    base_node_ = static_cast<std::uint64_t>(m.at("base").as_int());
    total_ = static_cast<std::size_t>(m.at("total").as_int());
    crc_ = static_cast<std::uint32_t>(m.at("crc").as_int());
    nchunks_ = m.at("chunks").as_int();
    have_manifest_ = true;
    step();
}

void CatchupClient::fetch_chunk() {
    rpc_.call_async(
        provider_, "midas.catchup", "chunk",
        {Value{static_cast<std::int64_t>(chain_)}, Value{next_chunk_}},
        rt::CallOptions{.timeout = config_.call_timeout},
        [this, chain = chain_, guard = std::weak_ptr<char>(token_)](
            Value result, std::exception_ptr error, bool transport) {
            if (guard.expired() || !active_ || chain != chain_) return;
            if (error) {
                on_fetch_error(error, transport);
                return;
            }
            breaker_.on_success(provider_);
            const Dict& r = result.as_dict();
            if (const Value* hint = r.find("retry_ms")) {
                retry_later(milliseconds(std::max<std::int64_t>(1, hint->as_int())));
                return;
            }
            if (const Value* stale = r.find("stale"); stale && stale->as_bool()) {
                // Provider moved to a new chain: refetch the manifest;
                // adoption there counts the restart.
                have_manifest_ = false;
                step();
                return;
            }
            const Bytes& data = r.at("data").as_blob();
            if (failure_streak_ > 0) ++stats_.resumes;
            failure_streak_ = 0;
            ++stats_.chunks;
            stats_.bytes += data.size();
            buffer_.insert(buffer_.end(), data.begin(), data.end());
            ++next_chunk_;
            step();
        });
}

void CatchupClient::finish() {
    SimTime now = rpc_.router().simulator().now();
    bool ok = buffer_.size() == total_ &&
              db::crc32(std::span<const std::uint8_t>(buffer_)) == crc_;
    Value image;
    if (ok) {
        try {
            image = Value::decode(std::span<const std::uint8_t>(buffer_));
        } catch (const std::exception&) {
            ok = false;
        }
    }
    if (!ok || !image.is_dict()) {
        // A verified-per-hop stream should never assemble wrong; treat it
        // as corruption, drop the bytes and stream the chain again.
        ++stats_.crc_failures;
        log_warn(now, "catchup@" + receiver_.config().node_label,
                 "assembled image failed verification; restarting stream");
        buffer_.clear();
        next_chunk_ = 0;
        have_manifest_ = false;
        retry_later(config_.retry_backoff);
        return;
    }
    const Dict& img = image.as_dict();
    std::size_t installed = 0;
    if (const Value* policies = img.find("policies"); policies && policies->is_list()) {
        for (const Value& pv : policies->as_list()) {
            if (!pv.is_dict()) continue;
            const Value* sealed = pv.as_dict().find("sealed");
            if (!sealed || !sealed->is_blob()) continue;
            try {
                receiver_.install_from(NodeId{base_node_}, sealed->as_blob(),
                                       lease_ms_, epoch_);
                ++installed;
                ++stats_.installs;
            } catch (const std::exception& e) {
                // Trust, capability or quarantine said no — the image is a
                // transport, not an override of the node's own policy.
                const Value* name = pv.as_dict().find("name");
                log_warn(now, "catchup@" + receiver_.config().node_label,
                         "policy '", name && name->is_str() ? name->as_str() : "?",
                         "' from image refused: ", e.what());
            }
        }
    }
    ++stats_.completed;
    completed_chain_ = chain_;
    log_info(now, "catchup@" + receiver_.config().node_label, "caught up: chain ",
             chain_, ", ", stats_.chunks, " chunks, ", installed,
             " policies installed under epoch ", epoch_);
    end_session();
}

}  // namespace pmp::midas
