// Extension packages: the unit MIDAS distributes (paper §3.2).
//
// A package carries everything a receiver needs to adapt itself: the
// AdviceScript source, the bindings mapping advice kinds + pointcuts to
// script functions, shipped configuration, the capabilities the extension
// requests, and the names of implicit extensions it depends on (the paper's
// session-management example: installing access control automatically
// installs session management first). Packages are signed by the issuing
// authority; receivers verify the signature against their trust store
// before anything is compiled or woven.
#pragma once

#include <string>
#include <vector>

#include "core/aspect.h"
#include "crypto/trust.h"
#include "rt/value.h"

namespace pmp::midas {

/// Maps one advice kind + pointcut to a script function.
struct PackageBinding {
    prose::AdviceKind kind;
    std::string pointcut;
    std::string function;
    int priority = 0;
};

struct ExtensionPackage {
    /// Logical identity: a newer version with the same name *replaces* the
    /// installed one (paper: "allow the replacement of obsolete extensions").
    std::string name;
    std::uint32_t version = 1;

    std::string script;
    std::vector<PackageBinding> bindings;
    rt::Value config;
    std::vector<std::string> capabilities;  ///< requested sandbox grants
    std::vector<std::string> implies;       ///< names of implicit prerequisites

    /// Canonical bytes covered by the signature.
    Bytes signed_payload() const;

    /// Payload + signature, as shipped over the radio.
    Bytes seal(const crypto::KeyStore& keys, const std::string& issuer) const;

    /// Parse a sealed package. Returns the package and its (unverified)
    /// signature; callers must verify against their trust store.
    static std::pair<ExtensionPackage, crypto::Signature> open(
        std::span<const std::uint8_t> sealed);

    /// Approximate shipped size (for benchmarks).
    std::size_t wire_size() const;
};

}  // namespace pmp::midas
