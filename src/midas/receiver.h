// The adaptation service each mobile node carries (paper §3.2-3.3).
//
// "All R needs is a PROSE enabled JVM and the adaptation service. The rest
// is provided by the context." — this class is that adaptation service. It
//
//   * advertises itself as a service of type "midas.adaptation" at every
//     registrar that comes into radio range, so proactive environments can
//     find and adapt the node;
//   * accepts signed extension packages over RPC (install), verifies the
//     issuer against the node's trust store, enforces the node's capability
//     policy, compiles the script, and weaves the resulting aspect;
//   * leases every installed extension: if the installing base stops
//     sending keep-alives (the node left the space, the base died), the
//     extension is autonomously withdrawn — after its shutdown procedure
//     has run;
//   * replaces an installed extension when a newer version of the same
//     name arrives, and revokes on explicit request.
//
// Remote interface (object "adaptation"):
//   install(pkg blob, lease_ms int) -> {ext int, lease_ms int}
//   keepalive(ext int, lease_ms int) -> bool
//   revoke(ext int) -> bool
//   list() -> [ {ext, name, version, issuer} ]
#pragma once

#include <set>

#include "core/script_aspect.h"
#include "core/weaver.h"
#include "crypto/trust.h"
#include "disco/lookup.h"
#include "midas/package.h"
#include "obs/metrics.h"

namespace pmp::midas {

struct ReceiverConfig {
    std::string node_label;                  ///< e.g. "robot:1:1"
    Duration max_extension_lease = seconds(5);  ///< grants clamped to this
    std::uint64_t script_step_budget = 1'000'000;
    int script_max_recursion = 64;
    /// Run the static checker over incoming scripts and reject packages
    /// with diagnostics (undefined names, unknown builtins, bad arity...)
    /// before anything is compiled or woven.
    bool static_check = true;
};

class AdaptationService {
public:
    AdaptationService(rt::RpcEndpoint& rpc, prose::Weaver& weaver,
                      crypto::TrustStore& trust, disco::DiscoveryClient& discovery,
                      ReceiverConfig config);
    ~AdaptationService();

    AdaptationService(const AdaptationService&) = delete;
    AdaptationService& operator=(const AdaptationService&) = delete;

    /// Capability policy: extensions signed by `issuer` may be granted at
    /// most `caps`. Issuers without an entry get nothing beyond the core
    /// library. (The trust store decides *whether* to accept; this decides
    /// *how much* the accepted code may touch.)
    void allow_capabilities(const std::string& issuer, std::set<std::string> caps);

    /// Expose a node facility to extension scripts (e.g. "robot.freeze").
    void add_host_builtin(const std::string& name, const std::string& capability,
                          script::BuiltinRegistry::Fn fn);

    struct Installed {
        ExtensionId id;
        std::string name;
        std::uint32_t version = 0;
        std::string issuer;
        NodeId base;
        AspectId aspect;
        SimTime expires;
    };

    std::vector<Installed> installed() const;
    std::size_t installed_count() const { return installed_.size(); }

    /// Local entry points for alternative distribution transports (e.g.
    /// the tuple-space puller, which fetches packages itself and installs
    /// them in-process). `origin` is where owner.post will reach back to.
    rt::Value install_from(NodeId origin, const Bytes& sealed, std::int64_t lease_ms) {
        return do_install(origin, sealed, lease_ms);
    }
    bool keepalive_local(std::uint64_t ext, std::int64_t lease_ms) {
        return do_keepalive(ext, lease_ms);
    }
    bool revoke_local(std::uint64_t ext) { return do_revoke(ext); }

    /// Withdraw everything from a given base (or all) locally.
    void withdraw_all(prose::WithdrawReason reason = prose::WithdrawReason::kExplicit);

    /// Legacy stats view. The authoritative counters live in the obs
    /// registry under `midas.*` (labelled by node); this struct is
    /// assembled on demand by `stats()`.
    struct Stats {
        std::uint64_t installs = 0;
        std::uint64_t replacements = 0;
        std::uint64_t refreshes = 0;   ///< re-install of same name+version
        std::uint64_t rejections = 0;  ///< trust / capability / parse failures
        std::uint64_t expirations = 0;
        std::uint64_t revocations = 0;
    };
    Stats stats() const;

    /// Observation hook for examples/tests: event is one of "install",
    /// "replace", "refresh", "expire", "revoke".
    using EventFn = std::function<void(const std::string& event, const Installed&)>;
    void on_event(EventFn fn) { event_fn_ = std::move(fn); }

    const ReceiverConfig& config() const { return config_; }

private:
    void build_service_object();
    void register_at(NodeId registrar);
    Duration clamp(std::int64_t lease_ms) const;
    void arm_expiry(ExtensionId id, Duration lease);
    void withdraw(ExtensionId id, prose::WithdrawReason reason);
    void emit(const std::string& event, const Installed& entry);

    rt::Value do_install(NodeId base, const Bytes& sealed, std::int64_t lease_ms);
    bool do_keepalive(std::uint64_t ext, std::int64_t lease_ms);
    bool do_revoke(std::uint64_t ext);
    rt::Value do_list() const;

    rt::RpcEndpoint& rpc_;
    prose::Weaver& weaver_;
    crypto::TrustStore& trust_;
    disco::DiscoveryClient& discovery_;
    ReceiverConfig config_;

    script::BuiltinRegistry host_builtins_;
    std::map<std::string, std::set<std::string>> issuer_caps_;

    struct Entry {
        Installed info;
        sim::TimerId expiry_timer;
        rt::HookOwner wire_owner = 0;  ///< owner of any wire filters installed
    };
    IdGenerator<ExtensionId> ids_;
    std::map<ExtensionId, Entry> installed_;
    std::map<std::string, ExtensionId> by_name_;

    std::map<NodeId, std::shared_ptr<disco::LeasedResource>> advertisements_;
    std::uint64_t registrar_token_ = 0;
    std::shared_ptr<rt::ServiceObject> self_object_;

    // Registry-backed counters, labelled by node. Owned (refcounted) so a
    // torn-down node frees its label and a successor starts from zero.
    obs::OwnedCounter installs_c_;
    obs::OwnedCounter replacements_c_;
    obs::OwnedCounter refreshes_c_;
    obs::OwnedCounter rejections_c_;
    obs::OwnedCounter sig_rejections_c_;
    obs::OwnedCounter expirations_c_;
    obs::OwnedCounter renewals_c_;
    obs::OwnedCounter revocations_c_;
    obs::OwnedGauge extensions_g_;

    EventFn event_fn_;
};

}  // namespace pmp::midas
