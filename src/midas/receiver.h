// The adaptation service each mobile node carries (paper §3.2-3.3).
//
// "All R needs is a PROSE enabled JVM and the adaptation service. The rest
// is provided by the context." — this class is that adaptation service. It
//
//   * advertises itself as a service of type "midas.adaptation" at every
//     registrar that comes into radio range, so proactive environments can
//     find and adapt the node;
//   * accepts signed extension packages over RPC (install), verifies the
//     issuer against the node's trust store, enforces the node's capability
//     policy, compiles the script, and weaves the resulting aspect;
//   * leases every installed extension: if the installing base stops
//     sending keep-alives (the node left the space, the base died), the
//     extension is autonomously withdrawn — after its shutdown procedure
//     has run;
//   * replaces an installed extension when a newer version of the same
//     name arrives, and revokes on explicit request.
//
// Remote interface (object "adaptation"):
//   install(pkg blob, lease_ms int, epoch int) -> {ext int, lease_ms int}
//   keepalive(ext int, lease_ms int, epoch int) -> bool
//   revoke(ext int) -> bool
//   list() -> [ {ext, name, version, issuer} ]
//   unquarantine(name str, version int, epoch int) -> bool
//
// `epoch` identifies the base's life (0 = epochless transports such as the
// tuple-space puller). A keep-alive whose epoch differs from the one the
// lease was granted under means the base restarted: the stale lease is
// withdrawn (shutdown advice runs) and `false` tells the recovered base to
// re-install — exactly once, through its normal retry path.
#pragma once

#include <list>
#include <set>

#include "core/script_aspect.h"
#include "core/weaver.h"
#include "crypto/trust.h"
#include "db/journal.h"
#include "disco/lookup.h"
#include "midas/durable.h"
#include "midas/package.h"
#include "obs/metrics.h"

namespace pmp::midas {

struct ReceiverConfig {
    std::string node_label;                  ///< e.g. "robot:1:1"
    /// Batched-lease cell this node belongs to ("" = none). Advertised as
    /// attrs["cell"] so a base can route the node's keep-alives through
    /// the cell's relay (see midas/cell.h).
    std::string cell;
    Duration max_extension_lease = seconds(5);  ///< grants clamped to this
    /// Group-commit / chunked-snapshot knobs for the receiver's journal
    /// (docs/storage.md); all-zero keeps the seed per-record behavior.
    db::JournalConfig journal;
    /// Bounds for the install-path compile/pointcut caches: one entry per
    /// *distinct* script or pointcut source, evicted least-recently-used.
    /// A long-lived node visited by many halls would otherwise grow these
    /// maps without bound (every policy revision is a new content hash).
    std::size_t compile_cache_cap = 64;
    std::size_t pointcut_cache_cap = 128;
    std::uint64_t script_step_budget = 1'000'000;
    int script_max_recursion = 64;
    /// Run the static checker over incoming scripts and reject packages
    /// with diagnostics (undefined names, unknown builtins, bad arity...)
    /// before anything is compiled or woven.
    bool static_check = true;
    /// Quarantine an extension after this many *consecutive* advice
    /// failures (ScriptError / ResourceExhausted / DeadlineExceeded —
    /// broken or runaway code; AccessDenied is the node's own policy
    /// saying no and never counts). The extension is withdrawn and
    /// re-installs of the same (name, version) are refused until a newer
    /// version arrives (installing one lifts the older entries), or until
    /// the base explicitly lifts the entry via unquarantine — the scoped
    /// amnesty a staged-rollout rollback uses to re-install an incumbent
    /// version this node once quarantined (docs/rollout.md).
    int quarantine_after = 3;

    /// --- Resource governor (all off by default — seed behavior) ---
    /// Cumulative budgets per lease window: the window is the span between
    /// lease renewals, so a base that keeps an extension alive also keeps
    /// re-filling its allowance. An extension that exceeds a budget is
    /// *throttled* (1 in governor_throttle_keep dispatches runs); past
    /// governor_suspend_factor × budget it is *suspended* (all advice
    /// skipped, application calls pass through untouched). A window that
    /// ends suspended counts toward a streak; governor_quarantine_after
    /// consecutive suspended windows escalate to the quarantine path.
    std::uint64_t governor_step_budget = 0;        ///< interpreter steps / window (0 = off)
    std::uint64_t governor_invocation_budget = 0;  ///< advice invocations / window (0 = off)
    double governor_suspend_factor = 2.0;
    int governor_throttle_keep = 4;       ///< throttled: run 1 in N dispatches
    int governor_quarantine_after = 2;    ///< suspended windows before quarantine (0 = never)
    /// Per-invocation watchdog deadline, priced into interpreter steps at
    /// governor_step_cost per step (both must be nonzero to arm). An advice
    /// entry that overruns is killed with DeadlineExceeded, which counts
    /// toward quarantine like any other runaway.
    Duration governor_advice_deadline{0};
    Duration governor_step_cost = microseconds(1);
};

class AdaptationService {
public:
    /// With a `journal` the service becomes durable: the installed
    /// manifest and the quarantine list are journaled, and a restart
    /// recovers the quarantine list (enforced again) plus the crash-time
    /// manifest (for diagnosis — extensions are NOT resurrected; the
    /// normal adaptation path re-extends the node).
    AdaptationService(rt::RpcEndpoint& rpc, prose::Weaver& weaver,
                      crypto::TrustStore& trust, disco::DiscoveryClient& discovery,
                      ReceiverConfig config,
                      std::shared_ptr<db::Journal> journal = nullptr);
    ~AdaptationService();

    AdaptationService(const AdaptationService&) = delete;
    AdaptationService& operator=(const AdaptationService&) = delete;

    /// Capability policy: extensions signed by `issuer` may be granted at
    /// most `caps`. Issuers without an entry get nothing beyond the core
    /// library. (The trust store decides *whether* to accept; this decides
    /// *how much* the accepted code may touch.)
    void allow_capabilities(const std::string& issuer, std::set<std::string> caps);

    /// Expose a node facility to extension scripts (e.g. "robot.freeze").
    void add_host_builtin(const std::string& name, const std::string& capability,
                          script::BuiltinRegistry::Fn fn);

    struct Installed {
        ExtensionId id;
        std::string name;
        std::uint32_t version = 0;
        std::string issuer;
        NodeId base;
        AspectId aspect;
        SimTime expires;
        std::uint64_t base_epoch = 0;  ///< base's life when leased (0 = epochless)
    };

    std::vector<Installed> installed() const;
    std::size_t installed_count() const { return installed_.size(); }

    /// Local entry points for alternative distribution transports (e.g.
    /// the tuple-space puller, which fetches packages itself and installs
    /// them in-process). `origin` is where owner.post will reach back to.
    rt::Value install_from(NodeId origin, const Bytes& sealed, std::int64_t lease_ms) {
        return do_install(origin, sealed, lease_ms, /*epoch=*/0);
    }
    /// Epoch-carrying variant for transports that relay a base's durable
    /// state (the streaming catch-up client): the lease binds to the
    /// base's life, so the base's own keep-alives — same epoch — renew it
    /// instead of tearing it down as stale.
    rt::Value install_from(NodeId origin, const Bytes& sealed, std::int64_t lease_ms,
                           std::uint64_t epoch) {
        return do_install(origin, sealed, lease_ms, epoch);
    }
    bool keepalive_local(std::uint64_t ext, std::int64_t lease_ms) {
        return do_keepalive(ext, lease_ms, /*epoch=*/0);
    }
    bool revoke_local(std::uint64_t ext) { return do_revoke(ext); }

    /// Quarantine state: (name, version) pairs refused at install.
    bool is_quarantined(const std::string& name, std::uint32_t version) const {
        return quarantined_.contains({name, version});
    }
    /// Lift one quarantine entry (journaled). Returns whether it existed.
    /// This is the rollback amnesty: a base aborting a staged rollout must
    /// be able to re-install the exact incumbent version this node may once
    /// have quarantined — also exposed remotely as "unquarantine".
    bool unquarantine(const std::string& name, std::uint32_t version);
    /// Manifest recovered from the journal at construction — what was
    /// installed when the previous life ended (empty without a journal).
    const std::vector<ReceiverDurableState::ManifestEntry>& recovered_manifest() const {
        return recovered_manifest_;
    }

    /// Flight-recorder dumps journaled at quarantine time, oldest first:
    /// dumps recovered from previous lives followed by this life's. Bounded
    /// by ReceiverDurableState::kMaxFlights.
    const std::vector<ReceiverDurableState::FlightDump>& flight_dumps() const {
        return flights_;
    }

    /// Withdraw everything from a given base (or all) locally.
    void withdraw_all(prose::WithdrawReason reason = prose::WithdrawReason::kExplicit);

    /// Legacy stats view. The authoritative counters live in the obs
    /// registry under `midas.*` (labelled by node); this struct is
    /// assembled on demand by `stats()`.
    struct Stats {
        std::uint64_t installs = 0;
        std::uint64_t replacements = 0;
        std::uint64_t refreshes = 0;   ///< re-install of same name+version
        std::uint64_t rejections = 0;  ///< trust / capability / parse failures
        std::uint64_t expirations = 0;
        std::uint64_t revocations = 0;
    };
    Stats stats() const;

    /// Observation hook for examples/tests: event is one of "install",
    /// "replace", "refresh", "expire", "revoke", "quarantine".
    using EventFn = std::function<void(const std::string& event, const Installed&)>;
    void on_event(EventFn fn) { event_fn_ = std::move(fn); }

    const ReceiverConfig& config() const { return config_; }

    /// Resource-governor degradation ladder, per extension.
    enum class GovernorMode { kNormal, kThrottled, kSuspended };
    GovernorMode governor_mode(ExtensionId id) const;

private:
    void build_service_object();
    void register_at(NodeId registrar);
    Duration clamp(std::int64_t lease_ms) const;
    void arm_expiry(ExtensionId id, Duration lease);
    void withdraw(ExtensionId id, prose::WithdrawReason reason);
    void emit(const std::string& event, const Installed& entry);

    rt::Value do_install(NodeId base, const Bytes& sealed, std::int64_t lease_ms,
                         std::uint64_t epoch);
    bool do_keepalive(std::uint64_t ext, std::int64_t lease_ms, std::uint64_t epoch);
    bool do_revoke(std::uint64_t ext);
    rt::Value do_list() const;

    /// Weaver advice-outcome observer: counts consecutive failures per
    /// extension and (deferred — we may be inside the failing dispatch)
    /// quarantines past the threshold.
    void on_advice_outcome(AspectId aspect, const std::exception* error);
    void quarantine(ExtensionId id);

    /// Resource governor (see ReceiverConfig). governor_allows is the
    /// weaver dispatch gate; governor_charge is the interpreter's step
    /// observer; the window resets wherever the lease is renewed.
    bool governor_enabled() const {
        return config_.governor_step_budget != 0 || config_.governor_invocation_budget != 0;
    }
    bool governor_allows(AspectId aspect);
    void governor_charge(ExtensionId id, std::uint64_t steps);
    void governor_window_reset(ExtensionId id);
    void recover();
    void journal(const rt::Value& rec);
    void compact_journal();

    rt::RpcEndpoint& rpc_;
    prose::Weaver& weaver_;
    crypto::TrustStore& trust_;
    disco::DiscoveryClient& discovery_;
    ReceiverConfig config_;
    std::shared_ptr<db::Journal> journal_;
    /// Liveness token for deferred work (quarantine withdrawals,
    /// registration retries) parked in the simulator queue; those closures
    /// hold a copy and bail if the node was torn down before they fired.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    script::BuiltinRegistry host_builtins_;
    std::map<std::string, std::set<std::string>> issuer_caps_;

    /// Install-path caches, shared across packages. A fleet pushing the
    /// same extension to many objects (or re-installing after lease churn)
    /// compiles each distinct script and parses each distinct pointcut
    /// exactly once per node — bounded LRU, so a node that outlives many
    /// policy revisions holds only the ReceiverConfig caps' worth of them
    /// (evictions surface as midas.receiver.cache_evictions).
    template <typename V>
    struct LruCache {
        std::size_t cap = 0;  ///< 0 = unbounded
        std::list<std::pair<std::string, V>> items;  // front = most recent
        std::map<std::string, typename std::list<std::pair<std::string, V>>::iterator>
            index;

        V* get(const std::string& key) {
            auto it = index.find(key);
            if (it == index.end()) return nullptr;
            items.splice(items.begin(), items, it->second);
            return &it->second->second;
        }
        /// Inserts (or refreshes) and returns how many entries were evicted.
        std::size_t put(const std::string& key, V value) {
            if (auto it = index.find(key); it != index.end()) {
                it->second->second = std::move(value);
                items.splice(items.begin(), items, it->second);
                return 0;
            }
            items.emplace_front(key, std::move(value));
            index[key] = items.begin();
            std::size_t evicted = 0;
            while (cap > 0 && items.size() > cap) {
                index.erase(items.back().first);
                items.pop_back();
                ++evicted;
            }
            return evicted;
        }
        std::size_t size() const { return items.size(); }
    };
    LruCache<std::shared_ptr<const script::CompiledUnit>> compile_cache_;
    LruCache<prose::Pointcut> pointcut_cache_;
    std::shared_ptr<const script::CompiledUnit> compiled_unit_for(const std::string& script);
    prose::Pointcut pointcut_for(const std::string& source);

public:
    std::size_t compile_cache_size() const { return compile_cache_.size(); }
    std::size_t pointcut_cache_size() const { return pointcut_cache_.size(); }

private:

    struct Entry {
        Installed info;
        sim::TimerId expiry_timer;
        rt::HookOwner wire_owner = 0;  ///< owner of any wire filters installed
    };
    IdGenerator<ExtensionId> ids_;
    std::map<ExtensionId, Entry> installed_;
    std::map<std::string, ExtensionId> by_name_;
    std::map<AspectId, ExtensionId> by_aspect_;

    struct GovernorState {
        std::uint64_t window_steps = 0;
        std::uint64_t window_invocations = 0;
        std::uint64_t throttle_counter = 0;
        GovernorMode mode = GovernorMode::kNormal;
        int suspended_streak = 0;  ///< consecutive windows that ended suspended
    };
    std::map<ExtensionId, GovernorState> governor_;
    void governor_escalate(ExtensionId id, GovernorState& st, GovernorMode to);

    std::set<std::pair<std::string, std::uint32_t>> quarantined_;
    std::map<ExtensionId, int> advice_failures_;   ///< consecutive, reset on success
    std::set<ExtensionId> pending_quarantine_;     ///< withdrawal scheduled
    std::vector<ReceiverDurableState::ManifestEntry> recovered_manifest_;
    std::vector<ReceiverDurableState::FlightDump> flights_;  ///< recovered + this life

    std::map<NodeId, std::shared_ptr<disco::LeasedResource>> advertisements_;
    std::uint64_t registrar_token_ = 0;
    std::shared_ptr<rt::ServiceObject> self_object_;

    // Registry-backed counters, labelled by node. Owned (refcounted) so a
    // torn-down node frees its label and a successor starts from zero.
    obs::OwnedCounter installs_c_;
    obs::OwnedCounter replacements_c_;
    obs::OwnedCounter refreshes_c_;
    obs::OwnedCounter rejections_c_;
    obs::OwnedCounter sig_rejections_c_;
    obs::OwnedCounter expirations_c_;
    obs::OwnedCounter renewals_c_;
    obs::OwnedCounter revocations_c_;
    obs::OwnedCounter quarantined_c_;
    obs::OwnedCounter unquarantines_c_;
    obs::OwnedCounter governor_throttles_c_;
    obs::OwnedCounter governor_suspends_c_;
    obs::OwnedCounter governor_skipped_c_;
    obs::OwnedCounter governor_watchdog_c_;
    obs::OwnedCounter governor_quarantines_c_;
    obs::OwnedCounter compile_hits_c_;
    obs::OwnedCounter compile_misses_c_;
    obs::OwnedCounter pointcut_hits_c_;
    obs::OwnedCounter cache_evictions_c_;
    obs::OwnedGauge extensions_g_;

    EventFn event_fn_;
};

}  // namespace pmp::midas
