#include "midas/cell.h"

#include "common/error.h"
#include "common/log.h"

namespace pmp::midas {

using rt::Dict;
using rt::List;
using rt::Value;

namespace {
/// Unacked records are retained for reliable delivery; if the base never
/// acks (it died, or detached the cell), cap the queues rather than grow
/// without bound. Oldest records go first — the base is gone anyway.
constexpr std::size_t kMaxRetained = 4096;

int classify(std::exception_ptr error, bool transport) {
    try {
        std::rethrow_exception(error);
    } catch (const Overloaded&) {
        return cellproto::kShed;
    } catch (...) {
    }
    return transport ? cellproto::kTransportFail : cellproto::kError;
}
}  // namespace

CellRelay::CellRelay(rt::RpcEndpoint& rpc, disco::Registrar* local_registrar,
                     CellRelayConfig config)
    : rpc_(rpc),
      local_registrar_(local_registrar),
      config_(std::move(config)),
      frames_c_("midas.cell.frames", config_.cell),
      fanout_c_("midas.cell.fanout_calls", config_.cell),
      resyncs_c_("midas.cell.resyncs", config_.cell) {
    build_service_object();
    build_catchup_proxy();
    if (local_registrar_) {
        // Advertise the catch-up proxy in the cell's own discovery scope:
        // a member restarting after a power cut finds its image source
        // one radio hop away, not across the backhaul.
        local_registrar_->register_permanent("midas.catchup",
                                             Dict{{"cell", Value{config_.cell}}});
    }
    if (local_registrar_) {
        // The relay, not the far-away base, watches the cell's registrar:
        // newcomers surface to the base as join records in batch replies.
        watch_token_ = local_registrar_->watch_local(
            "midas.adaptation",
            [this](const disco::ServiceItem& item, bool appeared) {
                if (!appeared) return;
                const Value* label = item.attributes.find("node");
                joins_.push_back(Join{++next_record_id_, item.provider.value,
                                      label && label->is_str() ? label->as_str()
                                                               : item.id.str()});
                if (joins_.size() > kMaxRetained) joins_.erase(joins_.begin());
            });
    }
}

CellRelay::~CellRelay() {
    if (local_registrar_) local_registrar_->unwatch_local(watch_token_);
}

void CellRelay::build_service_object() {
    using rt::TypeKind;
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("CellRelay")) {
        auto type = rt::TypeInfo::Builder("CellRelay")
                        .method("batch", TypeKind::kDict, {{"frame", TypeKind::kDict}},
                                [this](rt::ServiceObject&, List& args) -> Value {
                                    return do_batch(args[0]);
                                })
                        .build();
        runtime.register_type(type);
    }
    self_object_ = runtime.create("CellRelay", "midas.cell");
    rpc_.export_object("midas.cell");
}

void CellRelay::push_status(std::uint64_t node, const std::string& name, int code,
                            std::uint64_t ext) {
    pending_.push_back(Status{++next_record_id_, node, name, code, ext});
    if (pending_.size() > kMaxRetained) pending_.erase(pending_.begin());
}

Value CellRelay::do_batch(const Value& frame_v) {
    const Dict& frame = frame_v.as_dict();
    ++stats_.frames;
    frames_c_.inc();
    // The frame sender IS the base: remember its address for the catch-up
    // proxy's upstream fetches (no static configuration anywhere).
    base_node_ = rpc_.current_caller();
    std::uint64_t seq = static_cast<std::uint64_t>(frame.at("seq").as_int());
    std::uint64_t base = static_cast<std::uint64_t>(frame.at("base").as_int());
    std::uint64_t ack = static_cast<std::uint64_t>(frame.at("ack").as_int());

    // Drop records the base has confirmed processing.
    std::erase_if(pending_, [ack](const Status& s) { return s.id <= ack; });
    std::erase_if(joins_, [ack](const Join& j) { return j.id <= ack; });

    // Build the pipelined reply *before* applying this frame's ops: the
    // liveness bitmap indexes the roster version the base last acked —
    // both sides iterate the same sorted keys, so bit i means entry i.
    Bytes bitmap((roster_.size() + 7) / 8, 0);
    std::size_t i = 0;
    for (const auto& [key, entry] : roster_) {
        if (ok_accum_.contains(key)) bitmap[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
        ++i;
    }
    ok_accum_.clear();
    std::uint64_t bitmap_seq = applied_seq_;
    List statuses;
    for (const Status& s : pending_) {
        statuses.push_back(Value{Dict{
            {"id", Value{static_cast<std::int64_t>(s.id)}},
            {"node", Value{static_cast<std::int64_t>(s.node)}},
            {"name", Value{s.name}},
            {"code", Value{static_cast<std::int64_t>(s.code)}},
            {"ext", Value{static_cast<std::int64_t>(s.ext)}}}});
    }
    List joins;
    for (const Join& j : joins_) {
        joins.push_back(Value{Dict{{"id", Value{static_cast<std::int64_t>(j.id)}},
                                   {"node", Value{static_cast<std::int64_t>(j.node)}},
                                   {"label", Value{j.label}}}});
    }

    // Cache any policy blobs riding along (content-addressed; a repeat
    // send of a known hash is a harmless overwrite with identical bytes).
    if (const Value* bv = frame.find("blobs")) {
        for (const auto& [hash, blob] : bv->as_dict()) {
            blobs_[hash] = blob.as_blob();
            for (auto& [_, entry] : roster_) {
                if (entry.hash == hash) entry.need_blob_reported = false;
            }
        }
    }

    // Apply roster ops. base == 0 marks a full roster (delta from empty);
    // anything else must extend exactly the state we hold, or the frame is
    // refused with `resync` and the base resends in full. A stale frame
    // (seq regression after a timeout-then-late-delivery) is refused the
    // same way and its ops never touch the roster.
    bool resync = false;
    if (seq <= applied_seq_) {
        resync = true;
    } else if (base == 0) {
        roster_.clear();
    } else if (base != applied_seq_) {
        resync = true;
    }
    if (resync) {
        ++stats_.resyncs;
        resyncs_c_.inc();
    } else {
        // Adopt epoch/lease only from frames we accept: a refused stale
        // frame (late delivery after a timeout made the base pipeline a
        // newer one) must not roll these back under the next fan-out.
        epoch_ = static_cast<std::uint64_t>(frame.at("epoch").as_int());
        lease_ms_ = frame.at("lease_ms").as_int();
        for (const Value& ov : frame.at("ops").as_list()) {
            const Dict& op = ov.as_dict();
            EntryKey key{static_cast<std::uint64_t>(op.at("node").as_int()),
                         op.at("name").as_str()};
            if (op.at("op").as_str() == "del") {
                roster_.erase(key);
                continue;
            }
            Entry& entry = roster_[key];
            entry.ext = static_cast<std::uint64_t>(op.at("ext").as_int());
            entry.hash = op.at("hash").as_str();
            entry.need_blob_reported = false;
        }
        applied_seq_ = seq;

        paused_.clear();
        for (const Value& pv : frame.at("pause").as_list()) {
            paused_.insert(static_cast<std::uint64_t>(pv.as_int()));
        }
        // Optional key (older bases never send it): rollback amnesties to
        // fan out fire-and-forget. Idempotent at the receiver, and the
        // base retransmits them until a frame carrying them is acked, so
        // losing an individual call here only delays the amnesty by a
        // frame; accepted-frames-only keeps stale frames from replaying
        // directives the base already retired.
        if (const Value* uv = frame.find("unq")) {
            for (const Value& ev : uv->as_list()) {
                const Dict& u = ev.as_dict();
                NodeId member{static_cast<std::uint64_t>(u.at("node").as_int())};
                ++stats_.fanout_calls;
                fanout_c_.inc();
                rpc_.call_async(
                    member, "adaptation", "unquarantine",
                    {Value{u.at("name").as_str()}, u.at("version"),
                     Value{static_cast<std::int64_t>(epoch_)}},
                    rt::CallOptions{.timeout = config_.call_timeout},
                    [](Value, std::exception_ptr, bool) {});
            }
        }
        fan_out();
    }

    Dict reply{{"applied", Value{static_cast<std::int64_t>(applied_seq_)}},
               {"resync", Value{resync}},
               {"bitmap_seq", Value{static_cast<std::int64_t>(bitmap_seq)}},
               {"ok", Value{std::move(bitmap)}},
               {"statuses", Value{std::move(statuses)}},
               {"joins", Value{std::move(joins)}}};
    return Value{std::move(reply)};
}

// ------------------------------------------------ catch-up proxy -----------

void CellRelay::build_catchup_proxy() {
    using rt::TypeKind;
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("CellCatchup")) {
        auto type =
            rt::TypeInfo::Builder("CellCatchup")
                .method("manifest", TypeKind::kDict, {},
                        [this](rt::ServiceObject&, List&) -> Value {
                            return proxy_manifest();
                        })
                .method("chunk", TypeKind::kDict,
                        {{"chain", TypeKind::kInt}, {"index", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return proxy_chunk(
                                static_cast<std::uint64_t>(args[0].as_int()),
                                args[1].as_int());
                        })
                .build();
        runtime.register_type(type);
    }
    catchup_object_ = runtime.create("CellCatchup", "midas.catchup");
    rpc_.export_object("midas.catchup");
}

Value CellRelay::not_ready() const {
    return Value{Dict{
        {"retry_ms", Value{config_.catchup_retry.count() / 1'000'000}}}};
}

void CellRelay::fetch_manifest_upstream() {
    if (manifest_fetching_ || base_node_.value == 0) return;
    manifest_fetching_ = true;
    ++stats_.catchup_upstream;
    rpc_.call_async(
        base_node_, "midas.catchup", "manifest", {},
        rt::CallOptions{.timeout = config_.catchup_timeout},
        [this, guard = std::weak_ptr<char>(token_)](Value result,
                                                    std::exception_ptr error, bool) {
            if (guard.expired()) return;
            manifest_fetching_ = false;
            if (error) return;  // readers keep polling; the next one re-kicks
            const Dict& m = result.as_dict();
            std::uint64_t chain = static_cast<std::uint64_t>(m.at("chain").as_int());
            if (chain != cached_chain_) {
                // New image: yesterday's chunks can never CRC-verify into
                // it, so the cache restarts empty for the new chain.
                chunk_cache_.clear();
                chunk_fetching_.clear();
                cached_chain_ = chain;
            }
            manifest_cache_ = std::move(result);
            manifest_fresh_until_ =
                rpc_.router().simulator().now() + config_.catchup_manifest_ttl;
        });
}

void CellRelay::fetch_chunk_upstream(std::uint64_t chain, std::int64_t index) {
    if (base_node_.value == 0 || !chunk_fetching_.insert(index).second) return;
    ++stats_.catchup_upstream;
    rpc_.call_async(
        base_node_, "midas.catchup", "chunk",
        {Value{static_cast<std::int64_t>(chain)}, Value{index}},
        rt::CallOptions{.timeout = config_.catchup_timeout},
        [this, chain, index, guard = std::weak_ptr<char>(token_)](
            Value result, std::exception_ptr error, bool) {
            if (guard.expired()) return;
            chunk_fetching_.erase(index);
            if (error) return;
            const Dict& r = result.as_dict();
            if (const Value* stale = r.find("stale"); stale && stale->as_bool()) {
                // The base moved to a new chain under us: our manifest is
                // a lie now. Expire it so the next reader refetches.
                manifest_fresh_until_ = SimTime{};
                fetch_manifest_upstream();
                return;
            }
            if (const Value* data = r.find("data"); data && chain == cached_chain_) {
                chunk_cache_[index] = data->as_blob();
            }
        });
}

Value CellRelay::proxy_manifest() {
    SimTime now = rpc_.router().simulator().now();
    if (manifest_cache_.is_dict() && now < manifest_fresh_until_) {
        ++stats_.catchup_hits;
        return manifest_cache_;
    }
    ++stats_.catchup_waits;
    fetch_manifest_upstream();
    return not_ready();
}

Value CellRelay::proxy_chunk(std::uint64_t chain, std::int64_t index) {
    if (chain == cached_chain_ && index >= 0) {
        if (auto it = chunk_cache_.find(index); it != chunk_cache_.end()) {
            ++stats_.catchup_hits;
            return Value{Dict{{"data", Value{it->second}}}};
        }
    }
    if (cached_chain_ != 0 && chain < cached_chain_) {
        // Reader is on a retired chain; make it restart on the current one.
        return Value{Dict{{"stale", Value{true}}}};
    }
    ++stats_.catchup_waits;
    if (chain > cached_chain_) {
        // Reader knows a newer image than we cached (it talked to the base
        // directly, or our manifest is old): catch our manifest up first.
        manifest_fresh_until_ = SimTime{};
        fetch_manifest_upstream();
    } else {
        fetch_chunk_upstream(chain, index);
    }
    return not_ready();
}

void CellRelay::fan_out() {
    for (auto& [key, entry] : roster_) {
        if (paused_.contains(key.first)) continue;  // breaker open at the base
        if (entry.in_flight) continue;
        if (entry.cooldown > 0) {
            --entry.cooldown;
            continue;
        }
        NodeId node{key.first};
        if (entry.ext != 0) {
            ++stats_.fanout_calls;
            fanout_c_.inc();
            entry.in_flight = true;
            rpc_.call_async(
                node, "adaptation", "keepalive",
                {Value{static_cast<std::int64_t>(entry.ext)}, Value{lease_ms_},
                 Value{static_cast<std::int64_t>(epoch_)}},
                rt::CallOptions{.timeout = config_.call_timeout},
                [this, key, guard = std::weak_ptr<char>(token_)](
                    Value result, std::exception_ptr error, bool transport) {
                    if (guard.expired()) return;
                    auto it = roster_.find(key);
                    if (it == roster_.end()) return;
                    Entry& e = it->second;
                    e.in_flight = false;
                    if (error) {
                        // No backoff here: keep-alives stay on the fixed
                        // per-period cadence exactly like the direct path
                        // (backing off would stretch the gap past the
                        // lease after two blips); dropping the node is the
                        // base's ledger's call, not the relay's.
                        push_status(key.first, key.second, classify(error, transport));
                        return;
                    }
                    if (result.as_bool()) {
                        ok_accum_.insert(key);
                    } else {
                        // Stale extension / epoch mismatch at the receiver.
                        // Report and keep the entry untouched: the base
                        // erases its bookkeeping and the next frame turns
                        // this entry back into an install op.
                        push_status(key.first, key.second, cellproto::kRefused);
                    }
                });
        } else {
            auto bit = blobs_.find(entry.hash);
            if (bit == blobs_.end()) {
                if (!entry.need_blob_reported) {
                    entry.need_blob_reported = true;
                    push_status(key.first, key.second, cellproto::kNeedBlob);
                }
                continue;
            }
            ++stats_.fanout_calls;
            fanout_c_.inc();
            entry.in_flight = true;
            rpc_.call_async(
                node, "adaptation", "install",
                {Value{bit->second}, Value{lease_ms_},
                 Value{static_cast<std::int64_t>(epoch_)}},
                rt::CallOptions{.timeout = config_.call_timeout, .retries = 1},
                [this, key, guard = std::weak_ptr<char>(token_)](
                    Value result, std::exception_ptr error, bool transport) {
                    if (guard.expired()) return;
                    auto it = roster_.find(key);
                    if (it == roster_.end()) return;
                    Entry& e = it->second;
                    e.in_flight = false;
                    if (error) {
                        push_status(key.first, key.second, classify(error, transport));
                        e.penalty = e.penalty == 0
                                        ? 1
                                        : std::min(e.penalty * 2, config_.max_backoff_rounds);
                        e.cooldown = e.penalty;
                        return;
                    }
                    e.penalty = 0;
                    e.ext = static_cast<std::uint64_t>(
                        result.as_dict().at("ext").as_int());
                    // Keep-alives start next round; the base's confirming
                    // put op later carries the same ext and is a no-op.
                    push_status(key.first, key.second, cellproto::kInstalled, e.ext);
                });
        }
    }
}

}  // namespace pmp::midas
