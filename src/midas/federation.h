// Roaming federation between base stations (paper §3.2: each extension
// base "optionally implements a simple roaming algorithm to deal with
// nodes migrating between areas").
//
// Bases of adjacent halls are connected by a backbone (a wired link in the
// simulated network). Whenever a base adapts a node, it *claims* it to its
// neighbours; a neighbour still keeping keep-alives flowing to that node
// releases it immediately instead of burning keep-alive timeouts. The
// activity log records the handoff, so an operator can follow a robot
// across halls.
//
// Claims carry the adaptation stamp (when the claimer adapted the node),
// and the receiver answers with a verdict instead of a bool, which is what
// makes recovery safe: a base restarting from its journal re-claims every
// recovered book entry, and if a neighbour adapted the node *while the
// claimer was down* the neighbour's newer stamp wins — the recovered base
// releases its stale entry and no node is ever adapted by two bases at
// once. Stamp ties (virtual time makes them possible) break by base name.
//
// Remote interface (object "roaming"):
//   claimed(node_label str, by str, since_ns int) -> int
//     0 = not held here; 1 = was held, released to the claimer;
//     2 = held with a newer (or tied-and-winning) stamp — claimer must
//         release its own entry.
#pragma once

#include "midas/base.h"

namespace pmp::midas {

class Federation {
public:
    /// Attaches to the base's adapt events and exports the "roaming"
    /// endpoint on the same node. If the base recovered book entries from
    /// a journal, they are claimed to the neighbours one simulator tick
    /// after construction (so add_neighbor() calls get in first) and
    /// confirmed or released per the verdicts.
    Federation(rt::RpcEndpoint& rpc, ExtensionBase& base, std::string name);
    ~Federation();

    Federation(const Federation&) = delete;
    Federation& operator=(const Federation&) = delete;

    /// Declare a neighbouring base (call add_wire on the network first so
    /// the claim can actually travel).
    void add_neighbor(NodeId base_node);

    struct Stats {
        std::uint64_t claims_sent = 0;
        std::uint64_t claims_received = 0;
        std::uint64_t releases = 0;
        std::uint64_t recoveries_confirmed = 0;  ///< probation -> ours again
        std::uint64_t recoveries_ceded = 0;      ///< probation -> neighbour's
    };
    const Stats& stats() const { return stats_; }

private:
    void claim_recovered(const std::string& label, SimTime since);

    rt::RpcEndpoint& rpc_;
    ExtensionBase& base_;
    std::string name_;
    std::vector<NodeId> neighbors_;
    std::shared_ptr<rt::ServiceObject> self_object_;
    sim::TimerId probation_timer_;
    Stats stats_;
};

}  // namespace pmp::midas
