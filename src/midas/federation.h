// Roaming federation between base stations (paper §3.2: each extension
// base "optionally implements a simple roaming algorithm to deal with
// nodes migrating between areas").
//
// Bases of adjacent halls are connected by a backbone (a wired link in the
// simulated network). Whenever a base adapts a node, it *claims* it to its
// neighbours; a neighbour still keeping keep-alives flowing to that node
// releases it immediately instead of burning keep-alive timeouts. The
// activity log records the handoff, so an operator can follow a robot
// across halls.
//
// Remote interface (object "roaming"):
//   claimed(node_label str, by str) -> bool
#pragma once

#include "midas/base.h"

namespace pmp::midas {

class Federation {
public:
    /// Attaches to the base's adapt events and exports the "roaming"
    /// endpoint on the same node.
    Federation(rt::RpcEndpoint& rpc, ExtensionBase& base, std::string name);

    /// Declare a neighbouring base (call add_wire on the network first so
    /// the claim can actually travel).
    void add_neighbor(NodeId base_node);

    struct Stats {
        std::uint64_t claims_sent = 0;
        std::uint64_t claims_received = 0;
        std::uint64_t releases = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    rt::RpcEndpoint& rpc_;
    ExtensionBase& base_;
    std::string name_;
    std::vector<NodeId> neighbors_;
    std::shared_ptr<rt::ServiceObject> self_object_;
    Stats stats_;
};

}  // namespace pmp::midas
