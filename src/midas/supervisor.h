// Crash–restart supervision for whole nodes.
//
// A Supervisor owns the *lifecycle* of node objects (it does not own the
// objects themselves — the callbacks do): it can crash a managed node at
// any instant — including from inside the node's own code via a fail-point
// (sim::FailPoints) — and restart it after a downtime. A crash is the
// power-cord model:
//
//   1. power_cut(): the node's journals stop accepting writes — anything
//      not yet journaled is lost, exactly like a real power cut;
//   2. Network::remove_node(): wires, in-flight deliveries to the node and
//      its scheduled callbacks die atomically (frames it already sent are
//      still delivered — they left the radio);
//   3. kill(), deferred one simulator tick: the C++ object is destroyed.
//      Destructors run (shutdown advice fires on the dead node's weaver)
//      but none of it reaches the network or the journal;
//   4. after `down_for`, start() rebuilds the node — typically over the
//      same JournalStorage, which is where epoch-based recovery begins.
//
// apply() schedules a whole net::CrashPlan (deterministic per seed), which
// is how the chaos suite mixes crash faults with radio faults.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/network.h"

namespace pmp::midas {

class Supervisor {
public:
    /// The four verbs a managed node must provide. `start` must leave the
    /// node fully constructed (and is also called by manage()); `node_id`
    /// reports the live network id; `power_cut` flips journals to
    /// powered-off; `kill` destroys the node object.
    struct Lifecycle {
        std::function<void()> start;
        std::function<NodeId()> node_id;
        std::function<void()> power_cut;
        std::function<void()> kill;
    };

    explicit Supervisor(net::Network& network) : network_(network) {}
    ~Supervisor();

    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    /// Register a node and start() it immediately.
    void manage(const std::string& label, Lifecycle lifecycle);

    /// Crash `label` now; restart after `down_for`. Safe to call from
    /// inside the crashing node's own handlers (fail-point actions): the
    /// object is destroyed on the next simulator tick, never mid-call.
    /// No-op if the node is unknown or already down.
    void crash(const std::string& label, Duration down_for);

    /// Schedule every crash in `plan` (windows expanded with `seed`).
    /// Events hitting a node that is already down are skipped.
    void apply(const net::CrashPlan& plan, std::uint64_t seed);

    bool alive(const std::string& label) const;

    struct Stats {
        std::uint64_t crashes = 0;
        std::uint64_t restarts = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    void restart(const std::string& label);
    sim::TimerId defer(Duration delay, sim::Simulator::Callback fn);

    struct Managed {
        Lifecycle lifecycle;
        bool alive = false;
    };

    net::Network& network_;
    std::map<std::string, Managed> managed_;
    std::vector<sim::TimerId> timers_;  // cancelled on destruction
    Stats stats_;
};

}  // namespace pmp::midas
