#include "midas/base.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "crypto/sha256.h"
#include "midas/cell.h"
#include "obs/trace.h"
#include "sim/failpoint.h"

namespace pmp::midas {

using rt::Dict;
using rt::List;
using rt::Value;

ExtensionBase::ExtensionBase(rt::RpcEndpoint& rpc, disco::Registrar& registrar,
                             const crypto::KeyStore& keys, BaseConfig config,
                             std::shared_ptr<db::Journal> journal,
                             db::EventStore* hall_store)
    : rpc_(rpc),
      registrar_(registrar),
      keys_(keys),
      config_(std::move(config)),
      journal_(std::move(journal)),
      hall_store_(hall_store),
      installs_sent_c_("midas.base.installs_sent", config_.issuer),
      install_failures_c_("midas.base.install_failures", config_.issuer),
      keepalives_sent_c_("midas.base.keepalives_sent", config_.issuer),
      keepalive_failures_c_("midas.base.keepalive_failures", config_.issuer),
      nodes_dropped_c_("midas.base.nodes_dropped", config_.issuer),
      nodes_handed_off_c_("midas.base.nodes_handed_off", config_.issuer),
      recoveries_c_("midas.base.recoveries", config_.issuer),
      adapted_nodes_g_("midas.base.adapted_nodes", config_.issuer),
      epoch_g_("midas.base.epoch", config_.issuer),
      backoff_rng_(config_.backoff_seed),
      breaker_(rpc.router().simulator(), config_.issuer,
               rt::BreakerConfig{config_.breaker_threshold, config_.breaker_open_period,
                                 config_.breaker_open_max}) {
    // Before recover(): a journal holding a half-finished rollout hands it
    // straight to the controller to resume at the journaled stage.
    rollout_ = std::make_unique<RolloutController>(*this, config_.rollout);
    if (journal_) {
        recover();
        // Journal hall records as they arrive — installed only after the
        // recovery replay above, or the replayed events would be written
        // back into the WAL they just came from.
        if (hall_store_) {
            hall_store_->set_append_hook([this](const db::Record& rec) {
                this->journal(BaseDurableState::rec_event(rec.source, rec.at, rec.data));
            });
        }
        // Persist the adopted epoch, then fold everything into a fresh
        // snapshot so the next restart replays a bounded WAL.
        journal_->append(BaseDurableState::rec_epoch(epoch_));
        compact_journal();
    }
    if (hall_store_ &&
        (config_.hall_retention_records > 0 || config_.hall_retention_bytes > 0)) {
        hall_store_->set_retention(
            db::Retention{config_.hall_retention_records, config_.hall_retention_bytes},
            config_.issuer);
    }
    epoch_g_->set(static_cast<std::int64_t>(epoch_));
    build_catchup_object();
    registrar_.register_permanent("midas.catchup",
                                  Dict{{"issuer", Value{config_.issuer}}});
    watch_token_ = registrar_.watch_local(
        "midas.adaptation",
        [this](const disco::ServiceItem& item, bool appeared) { on_service(item, appeared); });
    keepalive_timer_ = rpc_.router().simulator().schedule_every(
        config_.keepalive_period, [this]() { keepalive_tick(); });
}

ExtensionBase::~ExtensionBase() {
    if (hall_store_) hall_store_->set_append_hook(nullptr);
    registrar_.unwatch_local(watch_token_);
    rpc_.router().simulator().cancel(keepalive_timer_);
}

void ExtensionBase::recover() {
    BaseDurableState st = BaseDurableState::replay(journal_->restore());
    const bool had_life = st.epoch > 0;
    epoch_ = st.epoch + 1;
    std::uint64_t span = 0;
    if (had_life) {
        recoveries_c_.inc();
        span = obs::TraceBuffer::global().begin_span(
            "midas.recovery", "base.recover",
            {{"issuer", config_.issuer}, {"epoch", std::to_string(epoch_)}});
    }

    last_version_ = st.last_version;
    for (const auto& [name, sealed] : st.policies) {
        try {
            auto [pkg, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
            std::string hash = crypto::to_hex(crypto::Sha256::hash(
                std::span<const std::uint8_t>(sealed)));
            policy_[name] = Policy{std::move(pkg), sealed, std::move(hash)};
        } catch (const std::exception& e) {
            // CRC-valid but schema-invalid (should not happen): drop the
            // one policy rather than refuse to boot.
            log_warn(rpc_.router().simulator().now(), "base@" + config_.issuer,
                     "recovered policy '", name, "' unreadable: ", e.what());
        }
    }
    for (const auto& [label, entry] : st.book) {
        AdaptedNode an;
        an.node = NodeId{entry.node};
        an.label = label;
        an.installed = entry.installed;
        an.since = entry.since;
        an.recovered = true;
        adapted_.emplace(an.node, std::move(an));
    }
    adapted_nodes_g_->set(static_cast<std::int64_t>(adapted_.size()));
    if (hall_store_) {
        for (const auto& ev : st.events) hall_store_->append(ev.source, ev.at, ev.data);
    }
    for (const auto& [_, entry] : st.rollouts) rollout_->adopt(entry);

    if (had_life) {
        record("recover", "", "");
        log_info(rpc_.router().simulator().now(), "base@" + config_.issuer,
                 "recovered journal: epoch ", epoch_, ", ", policy_.size(), " policies, ",
                 adapted_.size(), " adapted nodes, ", st.events.size(), " hall records");
        obs::TraceBuffer::global().end_span(
            span, {{"policies", std::to_string(policy_.size())},
                   {"nodes", std::to_string(adapted_.size())},
                   {"events", std::to_string(st.events.size())},
                   {"skipped", std::to_string(st.skipped_records)}});
    }
}

void ExtensionBase::journal(const rt::Value& rec) {
    if (!journal_) return;
    journal_->append(rec);
    if (journal_->wal_records() >= config_.journal_compact_threshold) compact_journal();
}

void ExtensionBase::compact_journal() {
    if (!journal_) return;
    BaseDurableState st;
    st.epoch = epoch_;
    st.last_version = last_version_;
    for (const auto& [name, policy] : policy_) st.policies[name] = policy.sealed;
    for (const auto& [_, a] : adapted_) {
        BaseDurableState::BookEntry entry;
        entry.node = a.node.value;
        entry.label = a.label;
        entry.since = a.since;
        entry.installed = a.installed;
        st.book[a.label] = std::move(entry);
    }
    if (hall_store_) {
        for (const db::Record& rec : hall_store_->query(db::Query{})) {
            st.events.push_back(BaseDurableState::Event{rec.source, rec.at, rec.data});
        }
    }
    if (rollout_) rollout_->snapshot_into(st);
    journal_->compact(st.to_snapshot());
}

void ExtensionBase::record(const std::string& event, const std::string& node_label,
                           const std::string& extension) {
    activity_.push_back(
        Activity{rpc_.router().simulator().now(), event, node_label, extension});
}

void ExtensionBase::add_extension(ExtensionPackage pkg) {
    if (rollout_ && rollout_->active(pkg.name)) {
        // A blind replace would auto-bump past the canary version the
        // rollout pinned and strand the fleet on two unreconciled versions.
        throw RolloutInFlight("add_extension('" + pkg.name +
                              "'): a staged rollout of this extension is in "
                              "flight — wait for it to complete or abort");
    }
    // Bump past any version receivers may already hold so the push is a
    // replacement, not a refresh.
    auto& last = last_version_[pkg.name];
    if (pkg.version <= last) pkg.version = last + 1;
    last = pkg.version;

    Policy policy{pkg, pkg.seal(keys_, config_.issuer), ""};
    policy.hash = crypto::to_hex(
        crypto::Sha256::hash(std::span<const std::uint8_t>(policy.sealed)));
    // A changed package means a changed hash: every attached cell must
    // ship the new blob once, so forget the superseded hash everywhere.
    if (auto old = policy_.find(pkg.name); old != policy_.end()) {
        for (auto& [_, cs] : cells_) cs.relay_has.erase(old->second.hash);
    }
    policy_[pkg.name] = std::move(policy);
    catchup_dirty_ = true;
    record("policy-add", "", pkg.name);
    // Journal after the mutation: a threshold-triggered compaction inside
    // journal() snapshots live state, which must already include this add.
    journal(BaseDurableState::rec_policy_add(pkg.name, pkg.version,
                                             policy_.at(pkg.name).sealed));
    sim::FailPoints::hit(config_.issuer, "policy.recorded");

    for (auto& [node, adapted] : adapted_) {
        if (adapted.probation) continue;
        if (cell_routed(adapted)) {
            // The direct install path is bypassed for cell members. Drop
            // the superseded extension id instead: the next frame's roster
            // line reverts to an install of the new content hash and the
            // relay replaces the package on the node.
            adapted.installed.erase(pkg.name);
            continue;
        }
        std::set<std::string> visiting;
        install_on(node, pkg.name, visiting);
    }
}

std::uint32_t ExtensionBase::begin_rollout(ExtensionPackage pkg) {
    auto pit = policy_.find(pkg.name);
    if (pit == policy_.end()) {
        throw Error("begin_rollout('" + pkg.name +
                    "'): no incumbent policy to stage against — first installs "
                    "go through add_extension");
    }
    if (rollout_->active(pkg.name)) {
        throw RolloutInFlight("begin_rollout('" + pkg.name +
                              "'): a rollout of this extension is already in flight");
    }
    // Same version discipline as add_extension: the canary must supersede
    // everything any receiver may hold, and last_version_ moves with it so
    // a post-abort add_extension can never re-issue the canary's number.
    auto& last = last_version_[pkg.name];
    if (pkg.version <= last) pkg.version = last + 1;
    last = pkg.version;
    std::uint32_t version = pkg.version;
    std::uint32_t incumbent = pit->second.pkg.version;
    Bytes sealed = pkg.seal(keys_, config_.issuer);
    std::string hash = crypto::to_hex(
        crypto::Sha256::hash(std::span<const std::uint8_t>(sealed)));
    record("rollout-begin", "", pkg.name);
    rollout_->begin(std::move(pkg), std::move(sealed), std::move(hash), incumbent);
    return version;
}

void ExtensionBase::remove_extension(const std::string& name) {
    auto it = policy_.find(name);
    if (it == policy_.end()) return;
    policy_.erase(it);
    catchup_dirty_ = true;
    record("policy-remove", "", name);
    journal(BaseDurableState::rec_policy_remove(name));

    for (auto& [node, adapted] : adapted_) {
        auto ext_it = adapted.installed.find(name);
        if (ext_it == adapted.installed.end()) continue;
        std::uint64_t ext = ext_it->second;
        adapted.installed.erase(ext_it);
        record("revoke", adapted.label, name);
        rpc_.call_async(node, "adaptation", "revoke",
                        {Value{static_cast<std::int64_t>(ext)}},
                        [](Value, std::exception_ptr) {});
    }
}

std::vector<std::string> ExtensionBase::policy_names() const {
    std::vector<std::string> out;
    for (const auto& [name, _] : policy_) out.push_back(name);
    return out;
}

std::vector<ExtensionBase::AdaptedNode> ExtensionBase::adapted() const {
    std::vector<AdaptedNode> out;
    for (const auto& [_, node] : adapted_) out.push_back(node);
    return out;
}

void ExtensionBase::on_service(const disco::ServiceItem& item, bool appeared) {
    const Value* label_v = item.attributes.find("node");
    std::string label = label_v && label_v->is_str() ? label_v->as_str() : item.id.str();
    const Value* cell_v = item.attributes.find("cell");
    if (appeared) {
        adapt_node(item.provider, label,
                   cell_v && cell_v->is_str() ? cell_v->as_str() : "");
    }
    // Disappearance needs no action: keep-alives to the node will start
    // failing and drop_node() takes over — the same path as a crash.
}

void ExtensionBase::adapt_node(NodeId node, const std::string& label,
                               const std::string& cell) {
    SimTime now = rpc_.router().simulator().now();
    AdaptedNode entry;
    entry.node = node;
    entry.label = label;
    entry.since = now;
    auto [it, fresh] = adapted_.emplace(node, std::move(entry));
    it->second.failures = 0;
    if (!cell.empty()) {
        it->second.cell = cell;
        if (auto cit = cells_.find(cell); cit != cells_.end()) {
            cit->second.members.insert(node);
        }
    }
    bool restamped = false;
    if (it->second.recovered) {
        // The node re-registered after our restart: its presence here is
        // fresh evidence, so the claim stamp moves to now and any pending
        // federation probation is moot.
        it->second.recovered = false;
        it->second.probation = false;
        it->second.since = now;
        restamped = true;
    }
    adapted_nodes_g_->set(static_cast<std::int64_t>(adapted_.size()));
    if (fresh) {
        record("adapt", label, "");
        log_info(now, "base@" + config_.issuer, "adapting node ", label);
    }
    if (fresh || restamped) {
        journal(BaseDurableState::rec_adapt(node.value, label, it->second.since));
        sim::FailPoints::hit(config_.issuer, "adapt.recorded");
    }
    for (const auto& [name, _] : policy_) {
        std::set<std::string> visiting;
        install_on(node, name, visiting);
    }
    if (on_adapt_) on_adapt_(it->second);
}

bool ExtensionBase::release_node(const std::string& label) {
    for (auto it = adapted_.begin(); it != adapted_.end(); ++it) {
        if (it->second.label != label) continue;
        nodes_handed_off_c_.inc();
        breaker_.forget(it->second.node);
        cell_forget(it->second);
        record("handoff", label, "");
        log_info(rpc_.router().simulator().now(), "base@" + config_.issuer, "node ",
                 label, " handed off to a neighbouring base");
        adapted_.erase(it);
        journal(BaseDurableState::rec_node_gone(label));
        adapted_nodes_g_->set(static_cast<std::int64_t>(adapted_.size()));
        return true;
    }
    return false;
}

std::vector<std::pair<std::string, SimTime>> ExtensionBase::begin_probation() {
    std::vector<std::pair<std::string, SimTime>> out;
    for (auto& [_, a] : adapted_) {
        if (!a.recovered) continue;
        a.probation = true;
        out.emplace_back(a.label, a.since);
    }
    return out;
}

bool ExtensionBase::confirm_node(const std::string& label) {
    for (auto& [_, a] : adapted_) {
        if (a.label != label) continue;
        a.probation = false;
        a.recovered = false;
        return true;
    }
    return false;
}

std::optional<SimTime> ExtensionBase::claim_stamp_of(const std::string& label) const {
    for (const auto& [_, a] : adapted_) {
        if (a.label == label) return a.since;
    }
    return std::nullopt;
}

void ExtensionBase::install_on(NodeId node, const std::string& name,
                               std::set<std::string>& visiting) {
    if (auto a = adapted_.find(node); a != adapted_.end() && cell_routed(a->second)) {
        // Batched cell: the roster sync ships installs — the next frame's
        // diff turns every missing (node, pkg) into a put op for the relay.
        return;
    }
    auto policy_it = policy_.find(name);
    if (policy_it == policy_.end()) {
        log_warn(rpc_.router().simulator().now(), "base@" + config_.issuer,
                 "policy references unknown extension '", name, "'");
        return;
    }
    if (!visiting.insert(name).second) return;  // dependency cycle guard

    // Implicit prerequisites first (paper: adding access control
    // automatically adds session management).
    for (const std::string& implied : policy_it->second.pkg.implies) {
        install_on(node, implied, visiting);
    }

    if (!breaker_.allow(node)) {
        // Breaker open toward this node: keep the package off the air. The
        // retry ledger re-arms for the next keep-alive tick, by which time
        // the cool-down may have elapsed (allow() then grants the probe).
        if (auto pre = adapted_.find(node); pre != adapted_.end()) {
            RetryState& rs = pre->second.retry[name];
            ++rs.attempts;
            rs.next_at = rpc_.router().simulator().now() + config_.keepalive_period;
        }
        return;
    }
    installs_sent_c_.inc();
    std::string label;
    if (auto pre = adapted_.find(node); pre != adapted_.end()) {
        pre->second.retry[name].in_flight = true;
        label = pre->second.label;
    }
    // Version selection: cohort members of an active rollout get the canary
    // package, everyone else the incumbent from the policy set.
    const Bytes* payload = &policy_it->second.sealed;
    bool canary_sent = false;
    if (rollout_ && rollout_->selects_canary(name, label)) {
        if (const Bytes* canary = rollout_->canary_sealed(name)) {
            payload = canary;
            canary_sent = true;
        }
    }
    std::uint64_t push_span = obs::TraceBuffer::global().begin_span(
        "midas.base", "pkg.push", {{"issuer", config_.issuer}, {"pkg", name}});
    // Everything this install causes — the rpc round-trip, the receiver's
    // verify + weave, even the first advice dispatch on the far node —
    // nests under the push span in one causal tree (ISSUE: the Fig 2
    // install chain must reconstruct as a single trace across nodes).
    obs::TraceBuffer::ContextScope push_scope(
        obs::TraceBuffer::global(), obs::TraceBuffer::global().context_of(push_span));
    std::int64_t lease_ms = config_.extension_lease.count() / 1'000'000;
    // One keep-alive period per attempt, with transport retries: a lost
    // install *ack* must surface and re-send well inside the lease the node
    // already started counting down, or the node pays for our blindness
    // with an expiration (the re-send lands as a refresh and re-arms it).
    // The default 2s-one-shot call would eat the whole lease first.
    rpc_.call_async(
        node, "adaptation", "install",
        {Value{*payload}, Value{lease_ms},
         Value{static_cast<std::int64_t>(epoch_)}},
        rt::CallOptions{.timeout = config_.keepalive_period, .retries = 2},
        [this, node, name, push_span, label, canary_sent](
            Value result, std::exception_ptr error, bool transport) {
            obs::TraceBuffer::global().end_span(push_span, {{"ok", error ? "false" : "true"}});
            auto adapted_it = adapted_.find(node);
            if (adapted_it == adapted_.end()) return;
            RetryState& rs = adapted_it->second.retry[name];
            rs.in_flight = false;
            if (error) {
                install_failures_c_.inc();
                ++rs.attempts;
                Duration backoff = install_backoff_for(rs.attempts);
                bool overloaded = false;
                bool quarantine_refusal = false;
                try {
                    std::rethrow_exception(error);
                } catch (const Overloaded& e) {
                    // The receiver is alive but shedding installs: honor
                    // its retry-after hint if it is the later bound.
                    overloaded = true;
                    if (e.retry_after() > backoff) backoff = e.retry_after();
                    log_warn(rpc_.router().simulator().now(), "base@" + config_.issuer,
                             "install of '", name, "' on ", adapted_it->second.label,
                             " shed: ", e.what());
                } catch (const std::exception& e) {
                    quarantine_refusal =
                        std::string_view{e.what()}.find("quarantined") !=
                        std::string_view::npos;
                    log_warn(rpc_.router().simulator().now(), "base@" + config_.issuer,
                             "install of '", name, "' on ", adapted_it->second.label,
                             " failed: ", e.what());
                }
                rs.next_at = rpc_.router().simulator().now() + backoff;
                breaker_.on_failure(node, transport || overloaded);
                if (canary_sent && rollout_) {
                    // Health feed: only non-transport verdicts count — a
                    // radio fault says nothing about the canary.
                    rollout_->note_install_error(name, label, transport || overloaded,
                                                 quarantine_refusal);
                }
                return;
            }
            breaker_.on_success(node);
            adapted_it->second.retry.erase(name);
            std::uint64_t ext =
                static_cast<std::uint64_t>(result.as_dict().at("ext").as_int());
            if (rollout_) {
                bool wants = rollout_->selects_canary(name, label);
                if (canary_sent != wants) {
                    // The assignment flipped while the install was on the
                    // air (promotion widened the cohort, or an abort shrank
                    // it to nothing). Leave the name uninstalled: the retry
                    // loop re-pushes the now-correct version and the
                    // receiver replaces on version difference.
                    return;
                }
                if (canary_sent) rollout_->note_install_ok(name, label);
            }
            adapted_it->second.installed[name] = ext;
            record("install", adapted_it->second.label, name);
            journal(BaseDurableState::rec_install(node.value, adapted_it->second.label,
                                                  name, ext));
            sim::FailPoints::hit(config_.issuer, "install.recorded");
        });
    // "After install sent, before activity recorded" — the canonical
    // crash-point: the package is on the air, nothing is journaled yet.
    sim::FailPoints::hit(config_.issuer, "install.sent");
}

Duration ExtensionBase::install_backoff_for(int attempts) {
    Duration d = config_.install_backoff;
    for (int i = 1; i < attempts && d < config_.install_backoff_max; ++i) d *= 2;
    if (d > config_.install_backoff_max) d = config_.install_backoff_max;
    if (config_.install_backoff_jitter > 0) {
        double swing = (backoff_rng_.next_double() * 2.0 - 1.0) * config_.install_backoff_jitter;
        d = Duration{static_cast<std::int64_t>(static_cast<double>(d.count()) * (1.0 + swing))};
    }
    return d;
}

void ExtensionBase::keepalive_tick() {
    std::int64_t lease_ms = config_.extension_lease.count() / 1'000'000;
    SimTime now = rpc_.router().simulator().now();
    // Re-adopt orphans the registrar still vouches for. A radio burst can
    // eat enough keep-alives to drop a perfectly healthy node, and no new
    // appearance edge will ever fire for it while its service registration
    // stays continuously renewed — drop_node() would orphan it forever. A
    // live registration is positive evidence the node is up and in range,
    // so adoption is safe; a genuinely dead node stops renewing and falls
    // out of lookup() within its registrar lease. for_each iterates the
    // type index in place: the old lookup() built a vector of ServiceItems
    // (attribute dicts and all) per tick — O(cell) allocations every
    // period even when nothing changed.
    registrar_.for_each("midas.adaptation", [this](const disco::ServiceItem& item) {
        if (adapted_.contains(item.provider)) return;
        const Value* label_v = item.attributes.find("node");
        const Value* cell_v = item.attributes.find("cell");
        adapt_node(item.provider,
                   label_v && label_v->is_str() ? label_v->as_str() : item.id.str(),
                   cell_v && cell_v->is_str() ? cell_v->as_str() : "");
    });
    for (auto& [node, adapted] : adapted_) {
        // A probation entry is a journal-recovered node the federation has
        // not yet confirmed: a neighbour may have adapted it while we were
        // down, so no traffic until the claim settles.
        if (adapted.probation) continue;
        // Batched cells run below, one frame per cell — not per node.
        if (cell_routed(adapted)) continue;
        // Breaker open toward this node: skip the whole tick for it — that
        // is the point (stop hammering a drowning receiver). Skipped ticks
        // do NOT count as keep-alive failures; only real answers (or their
        // absence) may drop a node.
        if (!breaker_.allow(node)) continue;
        // Retry policy extensions whose install never succeeded (the radio
        // may have eaten the package or the reply) — but at most one
        // attempt in flight per extension, and only once its backoff
        // window has elapsed. Without the gate a dead link costs one
        // install per tick, forever.
        for (const auto& [name, _] : policy_) {
            if (adapted.installed.contains(name)) continue;
            auto rs = adapted.retry.find(name);
            if (rs != adapted.retry.end() &&
                (rs->second.in_flight || now < rs->second.next_at)) {
                continue;
            }
            std::set<std::string> visiting;
            install_on(node, name, visiting);
        }
        for (const auto& [name, ext] : adapted.installed) {
            keepalives_sent_c_.inc();
            NodeId node_id = node;
            rpc_.call_async(
                node, "adaptation", "keepalive",
                {Value{static_cast<std::int64_t>(ext)}, Value{lease_ms},
                 Value{static_cast<std::int64_t>(epoch_)}},
                rt::CallOptions{.timeout = config_.keepalive_period},
                [this, node_id, name](Value result, std::exception_ptr error,
                                      bool transport) {
                    auto it = adapted_.find(node_id);
                    if (it == adapted_.end()) return;
                    if (error) {
                        keepalive_failures_c_.inc();
                        bool overloaded = false;
                        try {
                            std::rethrow_exception(error);
                        } catch (const Overloaded&) {
                            overloaded = true;
                        } catch (...) {
                        }
                        breaker_.on_failure(node_id, transport || overloaded);
                        if (++it->second.failures > config_.max_keepalive_failures) {
                            drop_node(node_id);
                        }
                        return;
                    }
                    breaker_.on_success(node_id);
                    it->second.failures = 0;
                    if (!result.as_bool()) {
                        // Receiver no longer knows the extension (expired
                        // there, restarted, or it detected our restart via
                        // the epoch). Drop the stale id — keeping it would
                        // re-enter this branch every tick and storm the
                        // node with installs — and let the backoff-gated
                        // retry loop re-install.
                        it->second.installed.erase(name);
                        std::set<std::string> visiting;
                        install_on(node_id, name, visiting);
                    }
                });
        }
    }
    for (auto& [cell, cs] : cells_) cell_tick(cell, cs);
}

// ------------------------------------------------- batched cell protocol ----

void ExtensionBase::attach_cell(const std::string& cell, NodeId relay) {
    CellState cs;
    cs.relay = relay;
    for (const auto& [node, a] : adapted_) {
        if (a.cell == cell) cs.members.insert(node);
    }
    cells_[cell] = std::move(cs);
    log_info(rpc_.router().simulator().now(), "base@" + config_.issuer,
             "cell '", cell, "' attached; batching keep-alives via relay");
}

void ExtensionBase::detach_cell(const std::string& cell) {
    if (cells_.erase(cell) == 0) return;
    log_info(rpc_.router().simulator().now(), "base@" + config_.issuer, "cell '",
             cell, "' detached; members fall back to direct keep-alives");
}

ExtensionBase::CellStats ExtensionBase::cell_stats(const std::string& cell) const {
    auto it = cells_.find(cell);
    return it == cells_.end() ? CellStats{} : it->second.stats;
}

std::string ExtensionBase::policy_hash(const std::string& name) const {
    auto it = policy_.find(name);
    return it == policy_.end() ? std::string{} : it->second.hash;
}

void ExtensionBase::cell_forget(const AdaptedNode& a) {
    if (a.cell.empty()) return;
    if (auto it = cells_.find(a.cell); it != cells_.end()) {
        it->second.members.erase(a.node);
    }
}

void ExtensionBase::cell_tick(const std::string& cell, CellState& cs) {
    // At most one frame in flight: the call timeout equals the keep-alive
    // period, so a slow relay simply halves the frame rate instead of
    // stacking calls.
    if (cs.in_flight) return;

    // Desired roster: every (member, policy) pair, installed entries as
    // keep-alive lines, missing ones as install lines named by content
    // hash. This is plain local bookkeeping — the per-period network cost
    // is the single frame below, whatever the cell size.
    std::map<RosterKey, RosterEntry> desired;
    List pause;
    for (NodeId node : cs.members) {
        auto ait = adapted_.find(node);
        if (ait == adapted_.end()) continue;
        const AdaptedNode& a = ait->second;
        if (a.probation) continue;
        if (!breaker_.allow(node)) {
            // Breaker open: the entries stay on the roster (no churn) but
            // the relay skips the node this round, and a skipped round
            // never counts against it — PR 4 semantics, batched.
            pause.push_back(Value{static_cast<std::int64_t>(node.value)});
        }
        for (const auto& [name, policy] : policy_) {
            // Version selection mirrors the direct path: cohort members of
            // an active rollout are rostered on the canary's content hash.
            const std::string* hash = &policy.hash;
            if (rollout_ && rollout_->selects_canary(name, a.label)) {
                if (const std::string* canary = rollout_->canary_hash(name)) {
                    hash = canary;
                }
            }
            auto iit = a.installed.find(name);
            if (iit != a.installed.end()) {
                desired[{node.value, name}] = RosterEntry{iit->second, *hash};
                keepalives_sent_c_.inc();
            } else {
                desired[{node.value, name}] = RosterEntry{0, *hash};
            }
        }
    }

    // Delta-encode against the last acknowledged roster.
    List ops;
    std::vector<std::string> blob_hashes;
    Dict blobs;
    for (const auto& [key, entry] : desired) {
        auto sit = cs.synced.find(key);
        if (sit != cs.synced.end() && sit->second == entry) continue;
        ops.push_back(Value{Dict{{"op", Value{"put"}},
                                 {"node", Value{static_cast<std::int64_t>(key.first)}},
                                 {"name", Value{key.second}},
                                 {"ext", Value{static_cast<std::int64_t>(entry.ext)}},
                                 {"hash", Value{entry.hash}}}});
        if (entry.ext == 0 && !cs.relay_has.contains(entry.hash) &&
            !blobs.contains(entry.hash)) {
            const Bytes* blob = nullptr;
            for (const auto& [_, policy] : policy_) {
                if (policy.hash != entry.hash) continue;
                blob = &policy.sealed;
                break;
            }
            // Canary blobs live in the rollout controller, not the policy
            // set, until the rollout completes.
            if (!blob && rollout_) blob = rollout_->sealed_for_hash(entry.hash);
            if (blob) {
                blobs.set(entry.hash, Value{*blob});
                blob_hashes.push_back(entry.hash);
            }
        }
    }
    for (const auto& [key, _] : cs.synced) {
        if (desired.contains(key)) continue;
        ops.push_back(Value{Dict{{"op", Value{"del"}},
                                 {"node", Value{static_cast<std::int64_t>(key.first)}},
                                 {"name", Value{key.second}}}});
    }

    std::uint64_t seq = ++cs.seq;
    Dict frame{{"seq", Value{static_cast<std::int64_t>(seq)}},
               {"base", Value{static_cast<std::int64_t>(cs.acked_seq)}},
               {"epoch", Value{static_cast<std::int64_t>(epoch_)}},
               {"lease_ms", Value{config_.extension_lease.count() / 1'000'000}},
               {"ack", Value{static_cast<std::int64_t>(cs.record_seen)}},
               {"pause", Value{std::move(pause)}},
               {"ops", Value{std::move(ops)}},
               {"blobs", Value{std::move(blobs)}}};
    // Rollback amnesties ride every frame until one carrying them is acked
    // (the key is optional: relays without rollout support ignore it).
    if (!cs.unq_outbox.empty()) {
        List unq;
        for (CellUnq& u : cs.unq_outbox) {
            u.seq = seq;
            unq.push_back(u.rec);
        }
        frame.set("unq", Value{std::move(unq)});
    }
    cs.pending = std::move(desired);
    cs.pending_blobs = std::move(blob_hashes);
    cs.in_flight = true;
    ++cs.stats.frames_sent;

    rpc_.call_async(
        cs.relay, "midas.cell", "batch", {Value{std::move(frame)}},
        rt::CallOptions{.timeout = config_.keepalive_period},
        [this, cell, seq](Value result, std::exception_ptr error, bool) {
            auto cit = cells_.find(cell);
            if (cit == cells_.end()) return;
            CellState& cs = cit->second;
            cs.in_flight = false;
            if (error) {
                ++cs.stats.frame_failures;
                // Relay link trouble tells us nothing about individual
                // members, so no node's failure ledger moves. A relay
                // that stays dark past the usual threshold costs the cell
                // its batching: detach, fall back to direct keep-alives.
                if (++cs.failures > config_.max_keepalive_failures) {
                    log_warn(rpc_.router().simulator().now(),
                             "base@" + config_.issuer, "cell '", cell,
                             "' relay unresponsive; detaching");
                    detach_cell(cell);
                }
                return;
            }
            cs.failures = 0;
            process_cell_reply(cell, seq, result);
        });
}

void ExtensionBase::process_cell_reply(const std::string& cell, std::uint64_t sent_seq,
                                       const rt::Value& reply) {
    auto cit = cells_.find(cell);
    if (cit == cells_.end()) return;
    CellState& cs = cit->second;
    const Dict& r = reply.as_dict();

    // 1. Liveness bitmap — the previous round's healthy keep-alives, one
    // bit per entry of the roster version both sides agreed on. Absence of
    // a bit is NOT a failure (the evidence may simply be a round behind or
    // the reply before this one was lost); only explicit status records
    // move failure ledgers.
    std::uint64_t bitmap_seq = static_cast<std::uint64_t>(r.at("bitmap_seq").as_int());
    if (bitmap_seq == cs.acked_seq && r.at("ok").is_blob()) {
        const Bytes& bits = r.at("ok").as_blob();
        std::size_t i = 0;
        for (const auto& [key, _] : cs.synced) {
            if (i / 8 < bits.size() && (bits[i / 8] >> (i % 8)) & 1) {
                if (auto ait = adapted_.find(NodeId{key.first}); ait != adapted_.end()) {
                    ait->second.failures = 0;
                    breaker_.on_success(ait->second.node);
                }
            }
            ++i;
        }
    }

    // 2. Status records, applied at most once via the id high-water mark:
    // a duplicated or retained-and-resent record can never double-count a
    // failure or double-apply an install.
    std::uint64_t seen0 = cs.record_seen;
    std::uint64_t high = seen0;
    for (const Value& sv : r.at("statuses").as_list()) {
        const Dict& s = sv.as_dict();
        std::uint64_t id = static_cast<std::uint64_t>(s.at("id").as_int());
        if (id > high) high = id;
        if (id <= seen0) continue;
        ++cs.stats.statuses;
        NodeId node{static_cast<std::uint64_t>(s.at("node").as_int())};
        const std::string& name = s.at("name").as_str();
        int code = static_cast<int>(s.at("code").as_int());
        if (code == cellproto::kNeedBlob) {
            // Relay lost the blob (typically a restart): mark the hash
            // unsent. Blobs only ride frames alongside put ops, and a
            // fully synced roster emits no ops — so also un-sync every
            // entry carrying the hash, forcing the next frame to re-emit
            // their puts with the blob attached. Pending must be scrubbed
            // too: step 4 below promotes it to synced on this very reply.
            std::string hash = policy_hash(name);
            cs.relay_has.erase(hash);
            auto lost = [&hash](const auto& e) { return e.second.hash == hash; };
            std::erase_if(cs.synced, lost);
            std::erase_if(cs.pending, lost);
            continue;
        }
        auto ait = adapted_.find(node);
        if (ait == adapted_.end()) continue;
        AdaptedNode& a = ait->second;
        switch (code) {
            case cellproto::kInstalled: {
                std::uint64_t ext = static_cast<std::uint64_t>(s.at("ext").as_int());
                a.failures = 0;
                breaker_.on_success(node);
                // Statuses carry no hash, but the roster line we sent does:
                // compare what rode the frame against what the node should
                // run *now* — a rollout promote/abort may have raced it.
                const RosterEntry* sent = nullptr;
                if (auto pit = cs.pending.find({node.value, name});
                    pit != cs.pending.end()) {
                    sent = &pit->second;
                } else if (auto syit = cs.synced.find({node.value, name});
                           syit != cs.synced.end()) {
                    sent = &syit->second;
                }
                if (rollout_ && sent) {
                    bool wants = rollout_->selects_canary(name, a.label);
                    const std::string* canary =
                        wants ? rollout_->canary_hash(name) : nullptr;
                    std::string want = canary ? *canary : policy_hash(name);
                    if (!want.empty() && sent->hash != want) {
                        // Wrong version landed: leave the name uninstalled
                        // so the next frame re-puts the right hash and the
                        // relay replaces the package on the node.
                        break;
                    }
                    if (wants) rollout_->note_install_ok(name, a.label);
                }
                a.installed[name] = ext;
                installs_sent_c_.inc();
                record("install", a.label, name);
                journal(BaseDurableState::rec_install(node.value, a.label, name, ext));
                break;
            }
            case cellproto::kRefused:
                // The receiver answered — it is alive — but no longer
                // honors the extension (lapsed there, or it spotted our
                // epoch change). Same cure as the direct path: drop the
                // stale id; the next frame re-installs.
                a.failures = 0;
                breaker_.on_success(node);
                a.installed.erase(name);
                break;
            case cellproto::kTransportFail:
            case cellproto::kShed:
            case cellproto::kError:
                keepalive_failures_c_.inc();
                breaker_.on_failure(node, code != cellproto::kError);
                // kError is the relay relaying a non-transport install
                // verdict — the only cell status that judges the package.
                if (code == cellproto::kError && rollout_ &&
                    rollout_->selects_canary(name, a.label)) {
                    rollout_->note_install_error(name, a.label, false, false);
                }
                if (++a.failures > config_.max_keepalive_failures) drop_node(node);
                break;
            default:
                break;
        }
    }

    // 3. Joins reported by the relay's registrar watch. adapt_node is
    // idempotent, so replays are harmless; the id gate skips them anyway.
    for (const Value& jv : r.at("joins").as_list()) {
        const Dict& j = jv.as_dict();
        std::uint64_t id = static_cast<std::uint64_t>(j.at("id").as_int());
        if (id > high) high = id;
        if (id <= seen0) continue;
        ++cs.stats.joins;
        adapt_node(NodeId{static_cast<std::uint64_t>(j.at("node").as_int())},
                   j.at("label").as_str(), cell);
    }
    // adapt_node may mutate cells_ (it never erases, but re-find for form).
    cit = cells_.find(cell);
    if (cit == cells_.end()) return;
    CellState& cs2 = cit->second;
    cs2.record_seen = high;

    // 4. Roster acknowledgement.
    if (r.at("resync").as_bool()) {
        ++cs2.stats.resyncs;
        cs2.synced.clear();
        cs2.acked_seq = 0;  // next frame is a full roster (delta from empty)
        cs2.pending_blobs.clear();
        // A relay that outlived a detach/re-attach keeps its applied_seq_
        // while our fresh CellState restarts at seq=0; without adopting
        // the relay's high-water mark every frame would be refused as
        // stale until seq catches up — one resync round per old frame,
        // with no fan-out the whole time.
        std::uint64_t applied = static_cast<std::uint64_t>(r.at("applied").as_int());
        if (applied > cs2.seq) cs2.seq = applied;
    } else {
        cs2.synced = std::move(cs2.pending);
        cs2.acked_seq = sent_seq;
        cs2.stats.blobs_sent += cs2.pending_blobs.size();
        for (std::string& h : cs2.pending_blobs) cs2.relay_has.insert(std::move(h));
        cs2.pending_blobs.clear();
        // Amnesties delivered by the acked frame are done; entries queued
        // after it went out (seq 0 or newer) ride the next one.
        std::erase_if(cs2.unq_outbox, [sent_seq](const CellUnq& u) {
            return u.seq != 0 && u.seq <= sent_seq;
        });
    }
}

void ExtensionBase::drop_node(NodeId node) {
    auto it = adapted_.find(node);
    if (it == adapted_.end()) return;
    nodes_dropped_c_.inc();
    breaker_.forget(node);
    cell_forget(it->second);
    std::string label = it->second.label;
    record("node-gone", label, "");
    log_info(rpc_.router().simulator().now(), "base@" + config_.issuer, "node ",
             label, " left; stopping keep-alives");
    adapted_.erase(it);
    journal(BaseDurableState::rec_node_gone(label));
    adapted_nodes_g_->set(static_cast<std::int64_t>(adapted_.size()));
}

// ------------------------------------------------ streaming catch-up -------

void ExtensionBase::build_catchup_object() {
    using rt::TypeKind;
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("MidasCatchup")) {
        auto type =
            rt::TypeInfo::Builder("MidasCatchup")
                .method("manifest", TypeKind::kDict, {},
                        [this](rt::ServiceObject&, List&) -> Value {
                            return catchup_manifest();
                        })
                .method("chunk", TypeKind::kDict,
                        {{"chain", TypeKind::kInt}, {"index", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return catchup_chunk(
                                static_cast<std::uint64_t>(args[0].as_int()),
                                args[1].as_int());
                        })
                .build();
        runtime.register_type(type);
    }
    catchup_object_ = runtime.create("MidasCatchup", "midas.catchup");
    rpc_.export_object("midas.catchup");
}

void ExtensionBase::refresh_catchup_image() {
    if (!catchup_dirty_) return;
    catchup_dirty_ = false;
    ++catchup_stats_.rebuilds;
    // The image carries the base's durable *policy* state only: epoch,
    // lease terms, and the sealed packages. Deliberately no book and no
    // hall events — those are per-fleet, and shipping them would make
    // catch-up bytes grow with federation size instead of staying flat.
    List policies;
    for (const auto& [name, policy] : policy_) {
        policies.push_back(Value{Dict{{"name", Value{name}},
                                      {"sealed", Value{policy.sealed}}}});
    }
    Dict image{{"epoch", Value{static_cast<std::int64_t>(epoch_)}},
               {"lease_ms", Value{config_.extension_lease.count() / 1'000'000}},
               {"base", Value{static_cast<std::int64_t>(rpc_.router().self().value)}},
               {"policies", Value{std::move(policies)}}};
    catchup_image_ = Value{std::move(image)}.encode();
    catchup_crc_ = db::crc32(std::span<const std::uint8_t>(catchup_image_));
    // The chain id must change on every rebuild AND differ across lives
    // (a reader that cached chain N before our restart must not resume
    // against a same-numbered but different image). Epoch is the life.
    ++catchup_chain_;
    if (catchup_chain_ / 1'000'000 != epoch_) catchup_chain_ = epoch_ * 1'000'000 + 1;
}

rt::Value ExtensionBase::catchup_manifest() {
    refresh_catchup_image();
    ++catchup_stats_.manifests;
    std::size_t chunk_bytes = config_.catchup_chunk_bytes == 0
                                  ? catchup_image_.size()
                                  : config_.catchup_chunk_bytes;
    if (chunk_bytes == 0) chunk_bytes = 1;
    std::size_t chunks = (catchup_image_.size() + chunk_bytes - 1) / chunk_bytes;
    return Value{Dict{
        {"chain", Value{static_cast<std::int64_t>(catchup_chain_)}},
        {"epoch", Value{static_cast<std::int64_t>(epoch_)}},
        {"lease_ms", Value{config_.extension_lease.count() / 1'000'000}},
        {"base", Value{static_cast<std::int64_t>(rpc_.router().self().value)}},
        {"total", Value{static_cast<std::int64_t>(catchup_image_.size())}},
        {"crc", Value{static_cast<std::int64_t>(catchup_crc_)}},
        {"chunks", Value{static_cast<std::int64_t>(chunks)}},
        {"chunk_bytes", Value{static_cast<std::int64_t>(chunk_bytes)}}}};
}

rt::Value ExtensionBase::catchup_chunk(std::uint64_t chain, std::int64_t index) {
    refresh_catchup_image();
    if (chain != catchup_chain_ || index < 0) {
        // The image moved on (policy change or our restart) since the
        // reader's manifest: tell it to refetch and restart on the new
        // chain rather than serve bytes that cannot CRC-verify.
        ++catchup_stats_.stale;
        return Value{Dict{{"stale", Value{true}}}};
    }
    std::size_t chunk_bytes = config_.catchup_chunk_bytes == 0
                                  ? catchup_image_.size()
                                  : config_.catchup_chunk_bytes;
    if (chunk_bytes == 0) chunk_bytes = 1;
    std::size_t start = static_cast<std::size_t>(index) * chunk_bytes;
    if (start >= catchup_image_.size() && !(start == 0 && catchup_image_.empty())) {
        ++catchup_stats_.stale;
        return Value{Dict{{"stale", Value{true}}}};
    }
    std::size_t len = std::min(chunk_bytes, catchup_image_.size() - start);
    Bytes data(catchup_image_.begin() + static_cast<std::ptrdiff_t>(start),
               catchup_image_.begin() + static_cast<std::ptrdiff_t>(start + len));
    ++catchup_stats_.chunks;
    catchup_stats_.bytes_served += len;
    return Value{Dict{{"data", Value{std::move(data)}}}};
}

ExtensionBase::Stats ExtensionBase::stats() const {
    return Stats{installs_sent_c_.value(),      install_failures_c_.value(),
                 keepalives_sent_c_.value(),    keepalive_failures_c_.value(),
                 nodes_dropped_c_.value(),      nodes_handed_off_c_.value()};
}

}  // namespace pmp::midas
