// Durable-state record formats for MIDAS (see docs/recovery.md).
//
// The journal (db::Journal) frames and checksums opaque rt::Values; this
// module defines what MIDAS actually writes into those frames and how a
// restarted node folds snapshot + WAL back into live state. Records are
// dicts tagged with an "op" key; unknown or malformed records are skipped
// (counted) rather than fatal, so a newer node can always read an older
// journal.
//
// Base journal ops:
//   epoch         {epoch}                       — adopted at (re)start
//   policy-add    {name, version, sealed}       — sealed signed package
//   policy-remove {name}
//   adapt         {node, label, since_ns}       — adapted-node book entry
//   install       {node, label, name, ext}      — remote ext id recorded
//   node-gone     {label}                       — dropped or handed off
//   event         {source, at_ns, data}         — hall EventStore record
//   rollout-begin {name, version, sealed, incumbent, stages_bp}
//                                               — staged canary opened
//   rollout-stage {name, stage}                 — promoted to stage index
//   rollout-abort {name, cause}                 — health gate breached
//   rollout-complete {name}                     — final stage confirmed
//
// Receiver journal ops:
//   install       {name, version, issuer}       — manifest entry
//   withdraw      {name}
//   quarantine    {name, version}               — survives restarts
//   unquarantine  {name, version}               — rollback amnesty / newer
//                                                 version lifted the entry
//   flight        {reason, at_ns, events}       — flight-recorder dump
//                                                 (black box at quarantine)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "db/journal.h"
#include "obs/trace.h"
#include "rt/value.h"

namespace pmp::midas {

/// The extension base's durable state, replayed from its journal.
struct BaseDurableState {
    std::uint64_t epoch = 0;  ///< 0 = journal held no prior life

    std::map<std::string, std::uint32_t> last_version;
    std::map<std::string, Bytes> policies;  ///< name -> sealed package

    struct BookEntry {
        std::uint64_t node = 0;  ///< NodeId value at crash time
        std::string label;
        SimTime since;
        std::map<std::string, std::uint64_t> installed;  ///< name -> remote ext
    };
    std::map<std::string, BookEntry> book;  ///< keyed by node label

    struct Event {
        std::string source;
        SimTime at;
        rt::Value data;
    };
    std::vector<Event> events;

    /// A staged canary rollout (see midas/rollout.h and docs/rollout.md).
    /// The journaled facts are exactly what a restarted base needs to
    /// resume at the right stage: the canary package, which version it
    /// replaces, the stage ladder (basis points of the fleet) and the last
    /// promoted stage. Health-window baselines are deliberately volatile —
    /// a new life re-measures from scratch rather than trusting counters
    /// from before the crash.
    struct RolloutEntry {
        std::string name;
        std::uint32_t version = 0;            ///< canary version
        Bytes sealed;                         ///< canary sealed package
        std::uint32_t incumbent_version = 0;  ///< version rolled back to
        std::vector<std::uint32_t> stages_bp; ///< cohort sizes, basis points
        std::uint32_t stage = 0;              ///< current stage index
        int status = 0;                       ///< 0 active, 1 aborted, 2 complete
        std::string abort_cause;
    };
    std::map<std::string, RolloutEntry> rollouts;

    std::size_t skipped_records = 0;  ///< malformed/unknown records ignored

    /// Fold snapshot + WAL into state. Total: never throws.
    static BaseDurableState replay(const db::Journal::Restored& restored);

    /// Serialize for db::Journal::compact().
    rt::Value to_snapshot() const;

    // Record builders (the write side of the formats above).
    static rt::Value rec_epoch(std::uint64_t epoch);
    static rt::Value rec_policy_add(const std::string& name, std::uint32_t version,
                                    const Bytes& sealed);
    static rt::Value rec_policy_remove(const std::string& name);
    static rt::Value rec_adapt(std::uint64_t node, const std::string& label, SimTime since);
    static rt::Value rec_install(std::uint64_t node, const std::string& label,
                                 const std::string& name, std::uint64_t ext);
    static rt::Value rec_node_gone(const std::string& label);
    static rt::Value rec_event(const std::string& source, SimTime at, const rt::Value& data);
    static rt::Value rec_rollout_begin(const RolloutEntry& entry);
    static rt::Value rec_rollout_stage(const std::string& name, std::uint32_t stage);
    static rt::Value rec_rollout_abort(const std::string& name, const std::string& cause);
    static rt::Value rec_rollout_complete(const std::string& name);
};

/// The adaptation service's durable state: the installed-extension
/// manifest as of the crash (for diagnosis — extensions are NOT
/// resurrected; the normal adaptation path re-extends the node) and the
/// quarantine list (which IS enforced again after restart).
struct ReceiverDurableState {
    struct ManifestEntry {
        std::string name;
        std::uint32_t version = 0;
        std::string issuer;
    };
    std::vector<ManifestEntry> manifest;
    std::vector<std::pair<std::string, std::uint32_t>> quarantined;  ///< (name, version)

    /// A flight-recorder dump journaled at quarantine time: the trace
    /// events immediately preceding the decision, for post-mortem without
    /// having caught the run live. Bounded (kMaxFlights, oldest dropped).
    struct FlightDump {
        std::string reason;
        SimTime at;
        std::vector<obs::TraceEvent> events;
    };
    static constexpr std::size_t kMaxFlights = 8;
    std::vector<FlightDump> flights;

    std::size_t skipped_records = 0;

    static ReceiverDurableState replay(const db::Journal::Restored& restored);
    rt::Value to_snapshot() const;

    static rt::Value rec_install(const std::string& name, std::uint32_t version,
                                 const std::string& issuer);
    static rt::Value rec_withdraw(const std::string& name);
    static rt::Value rec_quarantine(const std::string& name, std::uint32_t version);
    static rt::Value rec_unquarantine(const std::string& name, std::uint32_t version);
    static rt::Value rec_flight(const std::string& reason, SimTime at,
                                const std::vector<obs::TraceEvent>& events);
};

}  // namespace pmp::midas
