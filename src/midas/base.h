// Extension base: the proactive side of MIDAS (paper §3.2).
//
// An ExtensionBase embodies a location's policy. It holds a set of signed
// extension packages, watches its registrar for adaptation services coming
// into range, and pushes the policy onto every newcomer. While a node stays
// in the space the base keeps the node's extensions alive with periodic
// keep-alives; when the node leaves, keep-alives stop reaching it and the
// receiver's leases lapse. Changing the policy (add / replace / remove an
// extension) immediately propagates to all adapted nodes. The base records
// its extension activity — which nodes were adapted with what, when — the
// paper's "simple roaming algorithm" bookkeeping.
//
// The same class serves both deployment extremes: one base per hall
// (infrastructure mode) or one base inside every device (ad-hoc /
// symmetric mode).
#pragma once

#include "common/rng.h"
#include "crypto/trust.h"
#include "db/journal.h"
#include "db/store.h"
#include "disco/registrar.h"
#include "midas/durable.h"
#include "midas/package.h"
#include "midas/rollout.h"
#include "obs/metrics.h"
#include "rt/breaker.h"

namespace pmp::midas {

struct BaseConfig {
    std::string issuer;                       ///< signing identity, e.g. "hall-a"
    Duration extension_lease = seconds(2);    ///< lease requested per install
    Duration keepalive_period = milliseconds(800);
    int max_keepalive_failures = 2;           ///< consecutive failures before
                                              ///< the node is considered gone
    /// Install retries back off exponentially instead of hammering every
    /// keep-alive tick: delay doubles from `install_backoff` up to
    /// `install_backoff_max`, with ±`install_backoff_jitter` randomisation
    /// so a fleet of bases recovering from the same partition doesn't
    /// retry in lock-step.
    Duration install_backoff = milliseconds(200);
    Duration install_backoff_max = seconds(10);
    double install_backoff_jitter = 0.2;
    std::uint64_t backoff_seed = 0x51ee7ULL;  ///< jitter rng stream
    /// WAL frames between snapshot compactions (when journaling).
    std::size_t journal_compact_threshold = 256;
    /// Group-commit / chunked-snapshot knobs applied to the base's journal
    /// (docs/storage.md). All-zero keeps the seed per-record behavior.
    db::JournalConfig journal;
    /// Chunk size for the streaming catch-up image served under the
    /// "midas.catchup" object (docs/recovery.md). The image is policy-only
    /// — its size tracks the policy set, not the fleet — so catch-up bytes
    /// per restarted node stay flat as the federation grows.
    std::size_t catchup_chunk_bytes = 4096;
    /// Hall event-store retention installed when journaling (see
    /// db::Retention). Zero fields are unlimited — the seed behavior.
    std::size_t hall_retention_records = 0;
    std::size_t hall_retention_bytes = 0;
    /// Caller-side circuit breaker over the install / keep-alive paths:
    /// after `breaker_threshold` consecutive Overloaded-or-timeout failures
    /// toward one node, traffic to it is short-circuited for a doubling
    /// cool-down (breaker_open_period .. breaker_open_max), then a single
    /// half-open probe decides. <= 0 disables. The default threshold sits
    /// above max_keepalive_failures so a plainly dead node is dropped by
    /// the keep-alive ledger before its breaker ever opens; the breaker
    /// earns its keep against *alive but drowning* receivers.
    int breaker_threshold = 4;
    Duration breaker_open_period = seconds(1);
    Duration breaker_open_max = seconds(8);
    /// Staged canary rollout knobs (begin_rollout; see midas/rollout.h and
    /// docs/rollout.md).
    RolloutConfig rollout;
};

class ExtensionBase {
public:
    /// `registrar` is the lookup service this base watches (usually running
    /// on the same node). `keys` must hold a signing key for config.issuer.
    ///
    /// With a `journal` the base becomes durable: the policy set, the
    /// adapted-node book and (if `hall_store` is given) every hall record
    /// are journaled as they change, and a base constructed over a journal
    /// with prior state recovers it under a bumped epoch — see
    /// docs/recovery.md. Without a journal behaviour is unchanged.
    ExtensionBase(rt::RpcEndpoint& rpc, disco::Registrar& registrar,
                  const crypto::KeyStore& keys, BaseConfig config,
                  std::shared_ptr<db::Journal> journal = nullptr,
                  db::EventStore* hall_store = nullptr);
    ~ExtensionBase();

    ExtensionBase(const ExtensionBase&) = delete;
    ExtensionBase& operator=(const ExtensionBase&) = delete;

    /// Add or replace a policy extension. If a package with the same name
    /// exists, the version is bumped past it automatically so receivers
    /// treat the push as a replacement. Newly arrived and already-adapted
    /// nodes both get the (new) package.
    void add_extension(ExtensionPackage pkg);

    /// Drop a policy extension and revoke it from all adapted nodes.
    void remove_extension(const std::string& name);

    /// Stage a new version of an existing policy extension through cohort
    /// rollout instead of pushing it fleet-wide (docs/rollout.md). The
    /// incumbent stays pinned in the policy set (and the catch-up image)
    /// until the final stage confirms; a health-gate breach rolls every
    /// upgraded node back automatically. Returns the (auto-bumped) canary
    /// version. Throws Error if `pkg.name` has no incumbent policy, and
    /// RolloutInFlight if a rollout of that name is already active —
    /// add_extension is rejected the same way while one is in flight.
    std::uint32_t begin_rollout(ExtensionPackage pkg);

    /// The staged-rollout controller (stage/health views, blast-radius
    /// queries for tests, monitor snapshots).
    RolloutController& rollout() { return *rollout_; }
    const RolloutController& rollout() const { return *rollout_; }

    std::vector<std::string> policy_names() const;

    /// Per-(node, extension) install retry ledger. `in_flight` gates a
    /// second send while one is outstanding (the rpc timeout is longer
    /// than the keep-alive period); `next_at` is the earliest moment the
    /// keep-alive loop may retry after a failure.
    struct RetryState {
        int attempts = 0;
        SimTime next_at{};
        bool in_flight = false;
    };

    struct AdaptedNode {
        NodeId node;
        std::string label;
        std::map<std::string, std::uint64_t> installed;  // pkg name -> remote ext id
        std::map<std::string, RetryState> retry;
        int failures = 0;
        SimTime since;
        bool recovered = false;  ///< restored from the journal, not yet re-seen
        bool probation = false;  ///< federation claim pending; no traffic yet
        std::string cell;        ///< batched-lease cell, "" = direct path
    };
    std::size_t adapted_count() const { return adapted_.size(); }
    std::vector<AdaptedNode> adapted() const;

    /// The base's activity log ("what nodes were adapted, at what point in
    /// time").
    struct Activity {
        SimTime at;
        std::string event;  // "adapt" / "install" / "revoke" / "node-gone"
        std::string node_label;
        std::string extension;
    };
    const std::vector<Activity>& activity() const { return activity_; }

    /// Legacy stats view; authoritative counters live in the obs registry
    /// under `midas.base.*` (labelled by issuer).
    struct Stats {
        std::uint64_t installs_sent = 0;
        std::uint64_t install_failures = 0;
        std::uint64_t keepalives_sent = 0;
        std::uint64_t keepalive_failures = 0;  ///< call errors (timeout/unreachable)
        std::uint64_t nodes_dropped = 0;    ///< via keep-alive failure
        std::uint64_t nodes_handed_off = 0; ///< via federation claim
    };
    Stats stats() const;

    /// Roaming support (see midas::Federation). `on_adapt` fires whenever a
    /// node is (re-)adapted; `release_node` drops a node another base has
    /// claimed, without waiting for keep-alives to fail.
    void on_adapt(std::function<void(const AdaptedNode&)> fn) { on_adapt_ = std::move(fn); }
    bool release_node(const std::string& label);

    /// Epoch of this base's life. Starts at 1; a recovery from a journal
    /// with prior state bumps it. Carried on install/keepalive RPCs so
    /// receivers can tell a restarted base from the one that leased them.
    std::uint64_t epoch() const { return epoch_; }

    /// Batched lease protocol (see midas/cell.h and docs/federation.md).
    /// After attach_cell, nodes whose adaptation advertisement carries
    /// attrs["cell"] == `cell` — plus any member the relay reports — are
    /// kept alive through ONE delta-encoded frame per period sent to the
    /// CellRelay at `relay`, instead of per-(node, extension) RPCs. All
    /// bookkeeping (adapted_, failure ledgers, epoch, breakers) behaves
    /// exactly as on the direct path. If the relay stops answering for
    /// more than max_keepalive_failures periods the cell detaches itself
    /// and its nodes fall back to direct keep-alives.
    void attach_cell(const std::string& cell, NodeId relay);
    void detach_cell(const std::string& cell);

    struct CellStats {
        std::uint64_t frames_sent = 0;
        std::uint64_t frame_failures = 0;  ///< batch call errors (relay link)
        std::uint64_t resyncs = 0;         ///< full-roster resends
        std::uint64_t statuses = 0;        ///< status records processed
        std::uint64_t blobs_sent = 0;      ///< policy blobs shipped (1/hash/cell)
        std::uint64_t joins = 0;           ///< members learned from the relay
    };
    /// Stats for an attached cell; zeros if unknown/detached.
    CellStats cell_stats(const std::string& cell) const;

    /// Recovery support (see midas::Federation). begin_probation() gates
    /// every journal-recovered book entry out of the keep-alive loop and
    /// returns their (label, since) stamps; the federation claims each to
    /// its neighbours and then either confirm_node()s it (traffic resumes)
    /// or release_node()s it (a neighbour adapted it more recently while
    /// this base was down). A base without a federation never enters
    /// probation: recovered entries re-adapt on the first keep-alive tick.
    std::vector<std::pair<std::string, SimTime>> begin_probation();
    bool confirm_node(const std::string& label);
    /// Claim stamp (adaptation time) of a held node, or nullopt.
    std::optional<SimTime> claim_stamp_of(const std::string& label) const;

    /// Streaming catch-up server (docs/recovery.md). The base exports a
    /// "midas.catchup" object serving its durable policy image in bounded
    /// CRC-summed chunks:
    ///   manifest() -> {chain, epoch, lease_ms, base, total, crc,
    ///                  chunks, chunk_bytes}
    ///   chunk(chain, index) -> {data} | {stale: true}
    /// The image is rebuilt lazily whenever the policy set changes (the
    /// chain id bumps, so a reader mid-stream detects staleness and
    /// restarts on the new chain; a partition mid-stream resumes on the
    /// same chain from its cursor).
    struct CatchupStats {
        std::uint64_t manifests = 0;    ///< manifest requests served
        std::uint64_t chunks = 0;       ///< chunk requests served
        std::uint64_t stale = 0;        ///< chunk requests for a retired chain
        std::uint64_t bytes_served = 0; ///< chunk payload bytes shipped
        std::uint64_t rebuilds = 0;     ///< image (re)encodings
    };
    const CatchupStats& catchup_stats() const { return catchup_stats_; }
    /// Current chain id (bumps on every policy change); tests.
    std::uint64_t catchup_chain() const { return catchup_chain_; }

private:
    friend class RolloutController;

    struct Policy {
        ExtensionPackage pkg;
        Bytes sealed;      // cached signed bytes
        std::string hash;  // SHA-256 of sealed (content-hash policy sync)
    };

    /// One (node, pkg) line of a cell roster as the base wants the relay
    /// to see it. ext == 0 means "install the package with this hash".
    struct RosterEntry {
        std::uint64_t ext = 0;
        std::string hash;
        bool operator==(const RosterEntry&) const = default;
    };
    using RosterKey = std::pair<std::uint64_t, std::string>;
    /// A queued unquarantine directive riding the next cell frame (rollout
    /// rollback amnesty). `seq` is the frame that last carried it; 0 until
    /// sent. Entries retransmit until a frame carrying them is acked.
    struct CellUnq {
        std::uint64_t seq = 0;
        rt::Value rec;
    };
    struct CellState {
        NodeId relay;
        std::set<NodeId> members;
        std::map<RosterKey, RosterEntry> synced;   ///< roster as of acked_seq
        std::map<RosterKey, RosterEntry> pending;  ///< roster sent, unacked
        std::vector<std::string> pending_blobs;    ///< hashes riding the frame
        std::set<std::string> relay_has;           ///< blobs acked by the relay
        std::uint64_t seq = 0;
        std::uint64_t acked_seq = 0;
        std::uint64_t record_seen = 0;  ///< status/join id high-water mark
        bool in_flight = false;
        int failures = 0;  ///< consecutive batch-call failures (relay link)
        std::vector<CellUnq> unq_outbox;  ///< rollback amnesties to fan out
        CellStats stats;
    };

    void on_service(const disco::ServiceItem& item, bool appeared);
    void adapt_node(NodeId node, const std::string& label, const std::string& cell = "");
    bool cell_routed(const AdaptedNode& a) const {
        return !a.cell.empty() && cells_.contains(a.cell);
    }
    void cell_forget(const AdaptedNode& a);
    void cell_tick(const std::string& cell, CellState& cs);
    void process_cell_reply(const std::string& cell, std::uint64_t sent_seq,
                            const rt::Value& reply);
    std::string policy_hash(const std::string& name) const;
    /// Install `name` (prerequisites first) on an adapted node.
    void install_on(NodeId node, const std::string& name,
                    std::set<std::string>& visiting);
    void keepalive_tick();
    Duration install_backoff_for(int attempts);
    void drop_node(NodeId node);
    void record(const std::string& event, const std::string& node_label,
                const std::string& extension);
    /// Recover journaled state (epoch bump, policy set, book, hall events).
    void recover();
    void journal(const rt::Value& rec);
    /// Serialize live state and compact the journal.
    void compact_journal();
    /// Catch-up server internals.
    void build_catchup_object();
    void refresh_catchup_image();  ///< re-encode if a policy change dirtied it
    rt::Value catchup_manifest();
    rt::Value catchup_chunk(std::uint64_t chain, std::int64_t index);

    rt::RpcEndpoint& rpc_;
    disco::Registrar& registrar_;
    const crypto::KeyStore& keys_;
    BaseConfig config_;
    std::shared_ptr<db::Journal> journal_;
    db::EventStore* hall_store_ = nullptr;
    std::uint64_t epoch_ = 1;

    std::map<std::string, Policy> policy_;
    std::map<std::string, std::uint32_t> last_version_;
    std::map<NodeId, AdaptedNode> adapted_;
    std::map<std::string, CellState> cells_;
    std::vector<Activity> activity_;

    // Registry-backed counters, labelled by issuer.
    obs::OwnedCounter installs_sent_c_;
    obs::OwnedCounter install_failures_c_;
    obs::OwnedCounter keepalives_sent_c_;
    obs::OwnedCounter keepalive_failures_c_;
    obs::OwnedCounter nodes_dropped_c_;
    obs::OwnedCounter nodes_handed_off_c_;
    obs::OwnedCounter recoveries_c_;
    obs::OwnedGauge adapted_nodes_g_;
    obs::OwnedGauge epoch_g_;

    std::unique_ptr<RolloutController> rollout_;
    Rng backoff_rng_;
    rt::CircuitBreaker breaker_;
    std::uint64_t watch_token_ = 0;
    sim::TimerId keepalive_timer_;
    std::function<void(const AdaptedNode&)> on_adapt_;

    // Catch-up image: the encoded policy-only state, chunk-sliced on
    // demand. Dirty until the first manifest request after a policy change.
    Bytes catchup_image_;
    std::uint64_t catchup_chain_ = 0;
    std::uint32_t catchup_crc_ = 0;
    bool catchup_dirty_ = true;
    CatchupStats catchup_stats_;
    std::shared_ptr<rt::ServiceObject> catchup_object_;
};

}  // namespace pmp::midas
