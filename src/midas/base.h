// Extension base: the proactive side of MIDAS (paper §3.2).
//
// An ExtensionBase embodies a location's policy. It holds a set of signed
// extension packages, watches its registrar for adaptation services coming
// into range, and pushes the policy onto every newcomer. While a node stays
// in the space the base keeps the node's extensions alive with periodic
// keep-alives; when the node leaves, keep-alives stop reaching it and the
// receiver's leases lapse. Changing the policy (add / replace / remove an
// extension) immediately propagates to all adapted nodes. The base records
// its extension activity — which nodes were adapted with what, when — the
// paper's "simple roaming algorithm" bookkeeping.
//
// The same class serves both deployment extremes: one base per hall
// (infrastructure mode) or one base inside every device (ad-hoc /
// symmetric mode).
#pragma once

#include "common/rng.h"
#include "crypto/trust.h"
#include "db/journal.h"
#include "db/store.h"
#include "disco/registrar.h"
#include "midas/durable.h"
#include "midas/package.h"
#include "obs/metrics.h"
#include "rt/breaker.h"

namespace pmp::midas {

struct BaseConfig {
    std::string issuer;                       ///< signing identity, e.g. "hall-a"
    Duration extension_lease = seconds(2);    ///< lease requested per install
    Duration keepalive_period = milliseconds(800);
    int max_keepalive_failures = 2;           ///< consecutive failures before
                                              ///< the node is considered gone
    /// Install retries back off exponentially instead of hammering every
    /// keep-alive tick: delay doubles from `install_backoff` up to
    /// `install_backoff_max`, with ±`install_backoff_jitter` randomisation
    /// so a fleet of bases recovering from the same partition doesn't
    /// retry in lock-step.
    Duration install_backoff = milliseconds(200);
    Duration install_backoff_max = seconds(10);
    double install_backoff_jitter = 0.2;
    std::uint64_t backoff_seed = 0x51ee7ULL;  ///< jitter rng stream
    /// WAL frames between snapshot compactions (when journaling).
    std::size_t journal_compact_threshold = 256;
    /// Caller-side circuit breaker over the install / keep-alive paths:
    /// after `breaker_threshold` consecutive Overloaded-or-timeout failures
    /// toward one node, traffic to it is short-circuited for a doubling
    /// cool-down (breaker_open_period .. breaker_open_max), then a single
    /// half-open probe decides. <= 0 disables. The default threshold sits
    /// above max_keepalive_failures so a plainly dead node is dropped by
    /// the keep-alive ledger before its breaker ever opens; the breaker
    /// earns its keep against *alive but drowning* receivers.
    int breaker_threshold = 4;
    Duration breaker_open_period = seconds(1);
    Duration breaker_open_max = seconds(8);
};

class ExtensionBase {
public:
    /// `registrar` is the lookup service this base watches (usually running
    /// on the same node). `keys` must hold a signing key for config.issuer.
    ///
    /// With a `journal` the base becomes durable: the policy set, the
    /// adapted-node book and (if `hall_store` is given) every hall record
    /// are journaled as they change, and a base constructed over a journal
    /// with prior state recovers it under a bumped epoch — see
    /// docs/recovery.md. Without a journal behaviour is unchanged.
    ExtensionBase(rt::RpcEndpoint& rpc, disco::Registrar& registrar,
                  const crypto::KeyStore& keys, BaseConfig config,
                  std::shared_ptr<db::Journal> journal = nullptr,
                  db::EventStore* hall_store = nullptr);
    ~ExtensionBase();

    ExtensionBase(const ExtensionBase&) = delete;
    ExtensionBase& operator=(const ExtensionBase&) = delete;

    /// Add or replace a policy extension. If a package with the same name
    /// exists, the version is bumped past it automatically so receivers
    /// treat the push as a replacement. Newly arrived and already-adapted
    /// nodes both get the (new) package.
    void add_extension(ExtensionPackage pkg);

    /// Drop a policy extension and revoke it from all adapted nodes.
    void remove_extension(const std::string& name);

    std::vector<std::string> policy_names() const;

    /// Per-(node, extension) install retry ledger. `in_flight` gates a
    /// second send while one is outstanding (the rpc timeout is longer
    /// than the keep-alive period); `next_at` is the earliest moment the
    /// keep-alive loop may retry after a failure.
    struct RetryState {
        int attempts = 0;
        SimTime next_at{};
        bool in_flight = false;
    };

    struct AdaptedNode {
        NodeId node;
        std::string label;
        std::map<std::string, std::uint64_t> installed;  // pkg name -> remote ext id
        std::map<std::string, RetryState> retry;
        int failures = 0;
        SimTime since;
        bool recovered = false;  ///< restored from the journal, not yet re-seen
        bool probation = false;  ///< federation claim pending; no traffic yet
    };
    std::size_t adapted_count() const { return adapted_.size(); }
    std::vector<AdaptedNode> adapted() const;

    /// The base's activity log ("what nodes were adapted, at what point in
    /// time").
    struct Activity {
        SimTime at;
        std::string event;  // "adapt" / "install" / "revoke" / "node-gone"
        std::string node_label;
        std::string extension;
    };
    const std::vector<Activity>& activity() const { return activity_; }

    /// Legacy stats view; authoritative counters live in the obs registry
    /// under `midas.base.*` (labelled by issuer).
    struct Stats {
        std::uint64_t installs_sent = 0;
        std::uint64_t install_failures = 0;
        std::uint64_t keepalives_sent = 0;
        std::uint64_t keepalive_failures = 0;  ///< call errors (timeout/unreachable)
        std::uint64_t nodes_dropped = 0;    ///< via keep-alive failure
        std::uint64_t nodes_handed_off = 0; ///< via federation claim
    };
    Stats stats() const;

    /// Roaming support (see midas::Federation). `on_adapt` fires whenever a
    /// node is (re-)adapted; `release_node` drops a node another base has
    /// claimed, without waiting for keep-alives to fail.
    void on_adapt(std::function<void(const AdaptedNode&)> fn) { on_adapt_ = std::move(fn); }
    bool release_node(const std::string& label);

    /// Epoch of this base's life. Starts at 1; a recovery from a journal
    /// with prior state bumps it. Carried on install/keepalive RPCs so
    /// receivers can tell a restarted base from the one that leased them.
    std::uint64_t epoch() const { return epoch_; }

    /// Recovery support (see midas::Federation). begin_probation() gates
    /// every journal-recovered book entry out of the keep-alive loop and
    /// returns their (label, since) stamps; the federation claims each to
    /// its neighbours and then either confirm_node()s it (traffic resumes)
    /// or release_node()s it (a neighbour adapted it more recently while
    /// this base was down). A base without a federation never enters
    /// probation: recovered entries re-adapt on the first keep-alive tick.
    std::vector<std::pair<std::string, SimTime>> begin_probation();
    bool confirm_node(const std::string& label);
    /// Claim stamp (adaptation time) of a held node, or nullopt.
    std::optional<SimTime> claim_stamp_of(const std::string& label) const;

private:
    struct Policy {
        ExtensionPackage pkg;
        Bytes sealed;  // cached signed bytes
    };

    void on_service(const disco::ServiceItem& item, bool appeared);
    void adapt_node(NodeId node, const std::string& label);
    /// Install `name` (prerequisites first) on an adapted node.
    void install_on(NodeId node, const std::string& name,
                    std::set<std::string>& visiting);
    void keepalive_tick();
    Duration install_backoff_for(int attempts);
    void drop_node(NodeId node);
    void record(const std::string& event, const std::string& node_label,
                const std::string& extension);
    /// Recover journaled state (epoch bump, policy set, book, hall events).
    void recover();
    void journal(const rt::Value& rec);
    /// Serialize live state and compact the journal.
    void compact_journal();

    rt::RpcEndpoint& rpc_;
    disco::Registrar& registrar_;
    const crypto::KeyStore& keys_;
    BaseConfig config_;
    std::shared_ptr<db::Journal> journal_;
    db::EventStore* hall_store_ = nullptr;
    std::uint64_t epoch_ = 1;

    std::map<std::string, Policy> policy_;
    std::map<std::string, std::uint32_t> last_version_;
    std::map<NodeId, AdaptedNode> adapted_;
    std::vector<Activity> activity_;

    // Registry-backed counters, labelled by issuer.
    obs::OwnedCounter installs_sent_c_;
    obs::OwnedCounter install_failures_c_;
    obs::OwnedCounter keepalives_sent_c_;
    obs::OwnedCounter keepalive_failures_c_;
    obs::OwnedCounter nodes_dropped_c_;
    obs::OwnedCounter nodes_handed_off_c_;
    obs::OwnedCounter recoveries_c_;
    obs::OwnedGauge adapted_nodes_g_;
    obs::OwnedGauge epoch_g_;

    Rng backoff_rng_;
    rt::CircuitBreaker breaker_;
    std::uint64_t watch_token_ = 0;
    sim::TimerId keepalive_timer_;
    std::function<void(const AdaptedNode&)> on_adapt_;
};

}  // namespace pmp::midas
