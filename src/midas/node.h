// Whole-node assemblies.
//
// A participating device runs a fixed stack: router -> runtime -> RPC ->
// weaver -> discovery -> (receiver and/or base + registrar + collector).
// These classes wire the stack up in the right order so scenarios, tests
// and benchmarks can say "one base station, three robots" in a few lines.
//
//   MobileNode  — extension receiver only (a robot, a PDA entering a hall)
//   BaseStation — registrar + extension base + collector/database
//   Peer        — both roles (the paper's symmetric / ad-hoc mode: "if a
//                 mobile device is capable of receiving extensions, it
//                 should also be able to provide extensions to other nodes")
#pragma once

#include "midas/base.h"
#include "midas/catchup.h"
#include "midas/cell.h"
#include "midas/collector.h"
#include "midas/receiver.h"

namespace pmp::midas {

/// The stack every node shares.
class NodeStack {
public:
    /// `disco_config` tunes the node's discovery client. Large fleets
    /// stretch `probe_period`: a probe is a broadcast, and ten thousand
    /// nodes probing twice a second is a control-plane storm all by itself
    /// (registrar beacons keep liveness fresh without it).
    NodeStack(net::Network& network, const std::string& label, net::Position pos,
              double range, disco::DiscoveryConfig disco_config = {});

    NodeId id() const { return id_; }
    const std::string& label() const { return label_; }
    net::Network& network() { return network_; }
    net::MessageRouter& router() { return *router_; }
    rt::Runtime& runtime() { return *runtime_; }
    rt::RpcEndpoint& rpc() { return *rpc_; }
    prose::Weaver& weaver() { return *weaver_; }
    disco::DiscoveryClient& discovery() { return *discovery_; }
    sim::Simulator& simulator() { return network_.simulator(); }

    /// Teleport the node (scenarios usually use net::PathMover instead).
    void move_to(net::Position pos) { network_.move_node(id_, pos); }
    net::Position position() const { return network_.position_of(id_); }

private:
    net::Network& network_;
    std::string label_;
    NodeId id_;
    std::unique_ptr<net::MessageRouter> router_;
    std::unique_ptr<rt::Runtime> runtime_;
    std::unique_ptr<rt::RpcEndpoint> rpc_;
    std::unique_ptr<prose::Weaver> weaver_;
    std::unique_ptr<disco::DiscoveryClient> discovery_;
};

/// A mobile device that can be adapted by proactive environments.
///
/// Pass a `durable` storage (a shared "disk" that outlives the object —
/// see db::JournalStorage) to make the receiver's quarantine list and
/// installed manifest survive a crash–restart: rebuild the node over the
/// same storage and it recovers them.
class MobileNode : public NodeStack {
public:
    MobileNode(net::Network& network, const std::string& label, net::Position pos,
               double range, ReceiverConfig receiver_config = {},
               std::shared_ptr<db::JournalStorage> durable = nullptr,
               disco::DiscoveryConfig disco_config = {});

    crypto::TrustStore& trust() { return trust_; }
    AdaptationService& receiver() { return *receiver_; }
    /// The receiver's journal (null when constructed without storage).
    const std::shared_ptr<db::Journal>& journal() const { return journal_; }

    /// Opt into streaming catch-up (midas/catchup.h): on every registrar
    /// appearance the node looks for a "midas.catchup" provider and streams
    /// the base's durable policy image in bounded, resumable chunks.
    void enable_catchup(CatchupConfig config = {});
    /// The catch-up client, or null until enable_catchup().
    CatchupClient* catchup() { return catchup_.get(); }

private:
    crypto::TrustStore trust_;
    std::shared_ptr<db::Journal> journal_;
    std::unique_ptr<AdaptationService> receiver_;
    std::unique_ptr<CatchupClient> catchup_;
};

/// A base station: the proactive environment of one physical space.
///
/// With a `durable` storage the base journals its policy set, adapted-node
/// book and the hall database; a BaseStation rebuilt over the same storage
/// recovers all three under a bumped epoch (docs/recovery.md).
class BaseStation : public NodeStack {
public:
    BaseStation(net::Network& network, const std::string& label, net::Position pos,
                double range, BaseConfig base_config,
                disco::RegistrarConfig registrar_config = {},
                std::shared_ptr<db::JournalStorage> durable = nullptr,
                disco::DiscoveryConfig disco_config = {});

    crypto::KeyStore& keys() { return keys_; }
    disco::Registrar& registrar() { return *registrar_; }
    ExtensionBase& base() { return *base_; }
    Collector& collector() { return *collector_; }
    db::EventStore& store() { return store_; }
    /// The base's journal (null when constructed without storage).
    const std::shared_ptr<db::Journal>& journal() const { return journal_; }

private:
    crypto::KeyStore keys_;
    db::EventStore store_;
    std::shared_ptr<db::Journal> journal_;
    std::unique_ptr<disco::Registrar> registrar_;
    std::unique_ptr<Collector> collector_;
    std::unique_ptr<ExtensionBase> base_;
};

/// A cell anchor for federated deployments: a local registrar (the cell's
/// discovery scope) plus a CellRelay that batches the cell's lease traffic
/// toward a far-away ExtensionBase (midas/cell.h, docs/federation.md). It
/// holds no policy of its own — it is cheap infrastructure, one per radio
/// cell.
class CellStation : public NodeStack {
public:
    CellStation(net::Network& network, const std::string& label, net::Position pos,
                double range, CellRelayConfig relay_config = {},
                disco::RegistrarConfig registrar_config = {},
                disco::DiscoveryConfig disco_config = {});

    disco::Registrar& registrar() { return *registrar_; }
    CellRelay& relay() { return *relay_; }

private:
    std::unique_ptr<disco::Registrar> registrar_;
    std::unique_ptr<CellRelay> relay_;
};

/// A symmetric peer: receives extensions from others and provides its own.
class Peer : public NodeStack {
public:
    Peer(net::Network& network, const std::string& label, net::Position pos, double range,
         BaseConfig base_config, ReceiverConfig receiver_config = {});

    crypto::TrustStore& trust() { return trust_; }
    crypto::KeyStore& keys() { return keys_; }
    AdaptationService& receiver() { return *receiver_; }
    disco::Registrar& registrar() { return *registrar_; }
    ExtensionBase& base() { return *base_; }
    Collector& collector() { return *collector_; }
    db::EventStore& store() { return store_; }

private:
    crypto::TrustStore trust_;
    crypto::KeyStore keys_;
    db::EventStore store_;
    std::unique_ptr<disco::Registrar> registrar_;
    std::unique_ptr<Collector> collector_;
    std::unique_ptr<AdaptationService> receiver_;
    std::unique_ptr<ExtensionBase> base_;
};

}  // namespace pmp::midas
