#include "midas/receiver.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "midas/channel.h"
#include "script/check.h"

#include "common/log.h"
#include "obs/flight.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/failpoint.h"

namespace pmp::midas {

using rt::Dict;
using rt::List;
using rt::Value;

AdaptationService::AdaptationService(rt::RpcEndpoint& rpc, prose::Weaver& weaver,
                                     crypto::TrustStore& trust,
                                     disco::DiscoveryClient& discovery, ReceiverConfig config,
                                     std::shared_ptr<db::Journal> journal)
    : rpc_(rpc),
      weaver_(weaver),
      trust_(trust),
      discovery_(discovery),
      config_(std::move(config)),
      journal_(std::move(journal)),
      host_builtins_(script::BuiltinRegistry::with_core()),
      installs_c_("midas.installs", config_.node_label),
      replacements_c_("midas.replacements", config_.node_label),
      refreshes_c_("midas.refreshes", config_.node_label),
      rejections_c_("midas.rejections", config_.node_label),
      sig_rejections_c_("midas.sig_rejections", config_.node_label),
      expirations_c_("midas.lease.expirations", config_.node_label),
      renewals_c_("midas.lease.renewals", config_.node_label),
      revocations_c_("midas.revocations", config_.node_label),
      quarantined_c_("midas.receiver.quarantined", config_.node_label),
      unquarantines_c_("midas.receiver.unquarantined", config_.node_label),
      governor_throttles_c_("recv.governor.throttles", config_.node_label),
      governor_suspends_c_("recv.governor.suspends", config_.node_label),
      governor_skipped_c_("recv.governor.skipped", config_.node_label),
      governor_watchdog_c_("recv.governor.watchdog_trips", config_.node_label),
      governor_quarantines_c_("recv.governor.quarantines", config_.node_label),
      compile_hits_c_("script.compile.cache_hits", config_.node_label),
      compile_misses_c_("script.compile.cache_misses", config_.node_label),
      pointcut_hits_c_("prose.pointcut.cache_hits", config_.node_label),
      cache_evictions_c_("midas.receiver.cache_evictions", config_.node_label),
      extensions_g_("midas.extensions", config_.node_label) {
    compile_cache_.cap = config_.compile_cache_cap;
    pointcut_cache_.cap = config_.pointcut_cache_cap;
    if (journal_) recover();

    // Protocol machinery, not telemetry: the weaver reports every advice
    // outcome and repeated script failures quarantine the extension.
    weaver_.set_advice_observer([this](AspectId aspect, const std::exception* error) {
        on_advice_outcome(aspect, error);
    });
    // The governor's enforcement point: consulted before every advice
    // dispatch. Only installed when a budget is configured, so an
    // ungoverned node pays nothing on its hot path.
    if (governor_enabled()) {
        weaver_.set_dispatch_gate([this](AspectId aspect) { return governor_allows(aspect); });
    }

    // Node facilities every extension may request.
    host_builtins_.add("sys.now_ms", "", [this](List&) -> Value {
        return Value{rpc_.router().simulator().now().ns / 1'000'000};
    });
    host_builtins_.add("sys.node", "", [this](List&) -> Value {
        return Value{config_.node_label};
    });
    host_builtins_.add("sys.caller", "", [this](List&) -> Value {
        NodeId caller = rpc_.current_caller();
        return caller.valid() ? Value{rpc_.router().network().name_of(caller)} : Value{};
    });
    host_builtins_.add("log.info", "log", [this](List& args) -> Value {
        std::string line;
        for (const Value& v : args) line += v.is_str() ? v.as_str() : v.to_string();
        log_info(rpc_.router().simulator().now(), "ext@" + config_.node_label, line);
        return Value{};
    });

    build_service_object();

    // Advertise the adaptation service at every registrar in range; the
    // advertisement itself is leased, so it evaporates when we leave.
    registrar_token_ = discovery_.on_registrar([this](NodeId registrar, bool reachable) {
        if (reachable) {
            register_at(registrar);
        } else {
            advertisements_.erase(registrar);
        }
    });
}

AdaptationService::~AdaptationService() {
    *alive_ = false;
    // Detach the observer and gate before withdrawing: shutdown advice runs
    // during withdraw_all and must not count toward quarantine — nor be
    // skipped by a suspended extension's gate.
    weaver_.set_advice_observer(nullptr);
    weaver_.set_dispatch_gate(nullptr);
    discovery_.off_registrar(registrar_token_);
    withdraw_all(prose::WithdrawReason::kExplicit);
}

void AdaptationService::recover() {
    ReceiverDurableState st = ReceiverDurableState::replay(journal_->restore());
    for (const auto& q : st.quarantined) quarantined_.insert(q);
    recovered_manifest_ = std::move(st.manifest);
    flights_ = std::move(st.flights);
    if (!quarantined_.empty() || !recovered_manifest_.empty()) {
        obs::TraceBuffer::global().instant(
            "midas.recovery", "receiver.recover",
            {{"node", config_.node_label},
             {"manifest", std::to_string(recovered_manifest_.size())},
             {"quarantined", std::to_string(quarantined_.size())},
             {"skipped", std::to_string(st.skipped_records)}});
        log_info(rpc_.router().simulator().now(), "midas@" + config_.node_label,
                 "recovered journal: ", recovered_manifest_.size(),
                 " extensions were installed, ", quarantined_.size(), " quarantined");
    }
    // Nothing is installed in this life yet; fold the journal down to the
    // quarantine list (the only part enforced again).
    compact_journal();
}

void AdaptationService::journal(const rt::Value& rec) {
    if (!journal_) return;
    journal_->append(rec);
    if (journal_->wal_records() >= 256) compact_journal();
}

void AdaptationService::compact_journal() {
    if (!journal_) return;
    ReceiverDurableState st;
    for (const auto& [_, entry] : installed_) {
        st.manifest.push_back(ReceiverDurableState::ManifestEntry{
            entry.info.name, entry.info.version, entry.info.issuer});
    }
    for (const auto& q : quarantined_) st.quarantined.push_back(q);
    st.flights = flights_;
    journal_->compact(st.to_snapshot());
}

void AdaptationService::on_advice_outcome(AspectId aspect, const std::exception* error) {
    auto at = by_aspect_.find(aspect);
    if (at == by_aspect_.end()) return;  // hand-woven aspects are not leased code
    ExtensionId ext = at->second;
    if (!error) {
        advice_failures_.erase(ext);
        return;
    }
    // Broken or runaway extension code counts — a script fault, a blown
    // sandbox budget, or a tripped watchdog deadline all mean the code
    // cannot be trusted to run. AccessDenied is this node's own capability
    // policy saying no — the script is fine — and never counts.
    const bool watchdog = dynamic_cast<const DeadlineExceeded*>(error) != nullptr;
    if (watchdog) governor_watchdog_c_.inc();
    bool counts = watchdog ||
                  dynamic_cast<const ScriptError*>(error) != nullptr ||
                  dynamic_cast<const ResourceExhausted*>(error) != nullptr;
    if (!counts) return;
    if (++advice_failures_[ext] < config_.quarantine_after) return;
    if (!pending_quarantine_.insert(ext).second) return;
    // Deferred: this observer fires inside the failing advice dispatch;
    // withdrawing the aspect here would destroy the hook list the weaver
    // is still iterating.
    rpc_.router().simulator().schedule_after(Duration{0}, [this, ext, alive = alive_]() {
        if (!*alive) return;
        pending_quarantine_.erase(ext);
        quarantine(ext);
    });
}

bool AdaptationService::governor_allows(AspectId aspect) {
    auto at = by_aspect_.find(aspect);
    if (at == by_aspect_.end()) return true;  // not leased code; not governed
    auto gt = governor_.find(at->second);
    if (gt == governor_.end()) return true;
    GovernorState& st = gt->second;
    switch (st.mode) {
        case GovernorMode::kSuspended:
            governor_skipped_c_.inc();
            return false;
        case GovernorMode::kThrottled:
            if (st.throttle_counter++ % static_cast<std::uint64_t>(
                                            std::max(config_.governor_throttle_keep, 1)) != 0) {
                governor_skipped_c_.inc();
                return false;
            }
            break;
        case GovernorMode::kNormal:
            break;
    }
    ++st.window_invocations;
    if (config_.governor_invocation_budget != 0) {
        const double budget = static_cast<double>(config_.governor_invocation_budget);
        if (static_cast<double>(st.window_invocations) >
            budget * config_.governor_suspend_factor) {
            governor_escalate(at->second, st, GovernorMode::kSuspended);
            // This dispatch was already granted; suspension bites from the
            // next one.
        } else if (st.window_invocations > config_.governor_invocation_budget) {
            governor_escalate(at->second, st, GovernorMode::kThrottled);
        }
    }
    return true;
}

void AdaptationService::governor_charge(ExtensionId id, std::uint64_t steps) {
    auto gt = governor_.find(id);
    if (gt == governor_.end()) return;
    GovernorState& st = gt->second;
    st.window_steps += steps;
    if (config_.governor_step_budget == 0) return;
    const double budget = static_cast<double>(config_.governor_step_budget);
    if (static_cast<double>(st.window_steps) > budget * config_.governor_suspend_factor) {
        governor_escalate(id, st, GovernorMode::kSuspended);
    } else if (st.window_steps > config_.governor_step_budget) {
        governor_escalate(id, st, GovernorMode::kThrottled);
    }
}

void AdaptationService::governor_escalate(ExtensionId id, GovernorState& st,
                                          GovernorMode to) {
    if (st.mode >= to) return;  // the ladder only climbs within a window
    st.mode = to;
    auto it = installed_.find(id);
    const std::string name = it != installed_.end() ? it->second.info.name : "?";
    const char* rung = to == GovernorMode::kSuspended ? "suspend" : "throttle";
    const char* verb = to == GovernorMode::kSuspended ? "suspending" : "throttling";
    if (to == GovernorMode::kSuspended) {
        governor_suspends_c_.inc();
    } else {
        governor_throttles_c_.inc();
    }
    obs::TraceBuffer::global().instant(
        "midas.receiver", std::string("governor.") + rung,
        {{"node", config_.node_label},
         {"pkg", name},
         {"steps", std::to_string(st.window_steps)},
         {"invocations", std::to_string(st.window_invocations)}});
    log_warn(rpc_.router().simulator().now(), "midas@" + config_.node_label,
             "governor: ", verb, " '", name, "' (", st.window_steps, " steps, ",
             st.window_invocations, " invocations this lease window)");
}

void AdaptationService::governor_window_reset(ExtensionId id) {
    auto gt = governor_.find(id);
    if (gt == governor_.end()) return;
    GovernorState& st = gt->second;
    if (st.mode == GovernorMode::kSuspended) {
        ++st.suspended_streak;
        if (config_.governor_quarantine_after > 0 &&
            st.suspended_streak >= config_.governor_quarantine_after &&
            pending_quarantine_.insert(id).second) {
            // An extension that stays pinned at the top of the ladder
            // window after window isn't having a bad moment — it is what
            // it is. Hand it to the quarantine path (deferred: the reset
            // runs inside do_install/do_keepalive, which still use the
            // entry afterwards).
            governor_quarantines_c_.inc();
            rpc_.router().simulator().schedule_after(Duration{0},
                                                     [this, id, alive = alive_]() {
                if (!*alive) return;
                pending_quarantine_.erase(id);
                quarantine(id);
            });
        }
    } else {
        st.suspended_streak = 0;
    }
    st.window_steps = 0;
    st.window_invocations = 0;
    st.throttle_counter = 0;
    st.mode = GovernorMode::kNormal;
}

AdaptationService::GovernorMode AdaptationService::governor_mode(ExtensionId id) const {
    auto gt = governor_.find(id);
    return gt == governor_.end() ? GovernorMode::kNormal : gt->second.mode;
}

void AdaptationService::quarantine(ExtensionId id) {
    auto it = installed_.find(id);
    if (it == installed_.end()) return;  // withdrawn in the meantime
    Installed info = it->second.info;
    quarantined_.insert({info.name, info.version});
    quarantined_c_.inc();
    obs::TraceBuffer::global().instant(
        "midas.receiver", "pkg.quarantine",
        {{"node", config_.node_label},
         {"pkg", info.name},
         {"version", std::to_string(info.version)}});
    log_warn(rpc_.router().simulator().now(), "midas@" + config_.node_label,
             "quarantining '", info.name, "' v", info.version,
             " after ", config_.quarantine_after, " consecutive advice failures");
    // Black box: freeze the flight recorder's tail — the events leading up
    // to this decision — and journal it with the quarantine record, so the
    // post-mortem survives a later crash-restart of this node.
    const obs::FlightRecorder::Dump& dump = obs::FlightRecorder::global().dump(
        config_.node_label, "quarantine:" + info.name, rpc_.router().simulator().now());
    flights_.push_back(
        ReceiverDurableState::FlightDump{dump.reason, dump.at, dump.events});
    while (flights_.size() > ReceiverDurableState::kMaxFlights) {
        flights_.erase(flights_.begin());
    }
    withdraw(id, prose::WithdrawReason::kQuarantined);
    journal(ReceiverDurableState::rec_quarantine(info.name, info.version));
    journal(ReceiverDurableState::rec_flight(dump.reason, dump.at, dump.events));
    emit("quarantine", info);
}

bool AdaptationService::unquarantine(const std::string& name, std::uint32_t version) {
    if (quarantined_.erase({name, version}) == 0) return false;
    unquarantines_c_.inc();
    obs::TraceBuffer::global().instant(
        "midas.receiver", "pkg.unquarantine",
        {{"node", config_.node_label},
         {"pkg", name},
         {"version", std::to_string(version)}});
    log_info(rpc_.router().simulator().now(), "midas@" + config_.node_label,
             "quarantine lifted for '", name, "' v", version);
    journal(ReceiverDurableState::rec_unquarantine(name, version));
    return true;
}

void AdaptationService::register_at(NodeId registrar) {
    Dict attrs{{"node", Value{config_.node_label}}};
    if (!config_.cell.empty()) attrs.set("cell", Value{config_.cell});
    // If the advertisement is lost (renewals eaten by a lossy radio) or the
    // registration attempt itself fails while the registrar is still
    // around, try again shortly — otherwise the node would silently stop
    // being adaptable until it left and re-entered the cell.
    auto retry_if_still_there = [this, registrar, alive = alive_]() {
        if (!*alive) return;
        advertisements_.erase(registrar);
        rpc_.router().simulator().schedule_after(milliseconds(500),
                                                 [this, registrar, alive]() {
            if (!*alive) return;
            if (advertisements_.contains(registrar)) return;  // re-registered already
            for (NodeId known : discovery_.registrars()) {
                if (known == registrar) {
                    register_at(registrar);
                    return;
                }
            }
        });
    };
    discovery_.register_service(
        registrar, "midas.adaptation", std::move(attrs),
        /*on_lost=*/retry_if_still_there,
        /*on_done=*/
        [this, registrar, retry_if_still_there](
            std::shared_ptr<disco::LeasedResource> handle, std::exception_ptr error) {
            if (!error && handle) {
                advertisements_[registrar] = std::move(handle);
            } else {
                retry_if_still_there();
            }
        });
}

void AdaptationService::allow_capabilities(const std::string& issuer,
                                           std::set<std::string> caps) {
    issuer_caps_[issuer] = std::move(caps);
}

void AdaptationService::add_host_builtin(const std::string& name,
                                         const std::string& capability,
                                         script::BuiltinRegistry::Fn fn) {
    host_builtins_.add(name, capability, std::move(fn));
}

void AdaptationService::build_service_object() {
    using rt::TypeKind;
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("AdaptationService")) {
        auto type =
            rt::TypeInfo::Builder("AdaptationService")
                .method("install", TypeKind::kDict,
                        {{"pkg", TypeKind::kBlob},
                         {"lease_ms", TypeKind::kInt},
                         {"epoch", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_install(rpc_.current_caller(), args[0].as_blob(),
                                              args[1].as_int(),
                                              static_cast<std::uint64_t>(args[2].as_int()));
                        })
                .method("keepalive", TypeKind::kBool,
                        {{"ext", TypeKind::kInt},
                         {"lease_ms", TypeKind::kInt},
                         {"epoch", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return Value{do_keepalive(
                                static_cast<std::uint64_t>(args[0].as_int()),
                                args[1].as_int(),
                                static_cast<std::uint64_t>(args[2].as_int()))};
                        })
                .method("revoke", TypeKind::kBool, {{"ext", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return Value{
                                do_revoke(static_cast<std::uint64_t>(args[0].as_int()))};
                        })
                .method("list", TypeKind::kList, {},
                        [this](rt::ServiceObject&, List&) -> Value { return do_list(); })
                .method("unquarantine", TypeKind::kBool,
                        {{"name", TypeKind::kStr},
                         {"version", TypeKind::kInt},
                         {"epoch", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            // `epoch` rides for uniformity with the other
                            // base calls; the amnesty itself is idempotent.
                            return Value{unquarantine(
                                args[0].as_str(),
                                static_cast<std::uint32_t>(args[1].as_int()))};
                        })
                .build();
        runtime.register_type(type);
    }
    self_object_ = runtime.create("AdaptationService", "adaptation");
    rpc_.export_object("adaptation");
}

Duration AdaptationService::clamp(std::int64_t lease_ms) const {
    if (lease_ms <= 0) return config_.max_extension_lease;
    Duration want = milliseconds(lease_ms);
    return want > config_.max_extension_lease ? config_.max_extension_lease : want;
}

void AdaptationService::emit(const std::string& event, const Installed& entry) {
    if (event_fn_) event_fn_(event, entry);
}

rt::Value AdaptationService::do_install(NodeId base, const Bytes& sealed,
                                        std::int64_t lease_ms, std::uint64_t epoch) {
    SimTime now = rpc_.router().simulator().now();
    auto& trace = obs::TraceBuffer::global();
    ExtensionPackage pkg;
    crypto::Signature sig;
    std::uint64_t verify_span =
        trace.begin_span("midas.receiver", "pkg.verify", {{"node", config_.node_label}});
    try {
        std::tie(pkg, sig) = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
        // Trust first: nothing from an untrusted or tampered package is
        // even parsed as code.
        trust_.verify(std::span<const std::uint8_t>(pkg.signed_payload()), sig);
    } catch (const Error& e) {
        rejections_c_.inc();
        sig_rejections_c_.inc();
        trace.end_span(verify_span, {{"ok", "false"}});
        trace.instant("midas.receiver", "sig.reject",
                      {{"node", config_.node_label}, {"error", e.what()}});
        log_warn(now, "midas@" + config_.node_label, "rejected package: ", e.what());
        throw;
    } catch (const std::exception& e) {
        // A non-Error escape (hostile package tripping the allocator, a
        // host-side bug) must not leak the verify span half-open or skip
        // the rejection counters. Re-raise as Error so the rpc layer
        // replies instead of dropping the call.
        rejections_c_.inc();
        sig_rejections_c_.inc();
        trace.end_span(verify_span, {{"ok", "false"}});
        trace.instant("midas.receiver", "sig.reject",
                      {{"node", config_.node_label}, {"error", e.what()}});
        log_warn(now, "midas@" + config_.node_label, "rejected package: ", e.what());
        throw Error(e.what());
    }
    trace.end_span(verify_span, {{"ok", "true"}, {"pkg", pkg.name}, {"issuer", sig.issuer}});

    // Quarantined code stays out until a *newer* version arrives — checked
    // after the signature so a forged package can't probe the list, before
    // anything is compiled.
    if (quarantined_.contains({pkg.name, pkg.version})) {
        rejections_c_.inc();
        trace.instant("midas.receiver", "pkg.refuse_quarantined",
                      {{"node", config_.node_label},
                       {"pkg", pkg.name},
                       {"version", std::to_string(pkg.version)}});
        throw Error("extension '" + pkg.name + "' v" + std::to_string(pkg.version) +
                    " is quarantined on this node");
    }

    // Capability policy: every requested capability must be grantable for
    // this issuer.
    const auto caps_it = issuer_caps_.find(sig.issuer);
    for (const std::string& cap : pkg.capabilities) {
        if (caps_it == issuer_caps_.end() || !caps_it->second.contains(cap)) {
            rejections_c_.inc();
            throw TrustError("issuer '" + sig.issuer + "' may not grant capability '" +
                             cap + "' on this node");
        }
    }

    Duration lease = clamp(lease_ms);

    // Same name already installed?
    if (auto it = by_name_.find(pkg.name); it != by_name_.end()) {
        Entry& existing = installed_.at(it->second);
        if (pkg.version == existing.info.version) {
            // Idempotent re-install: refresh the lease only. The epoch
            // moves too — a restarted base that re-pushes the same
            // version has re-adopted the lease under its new life.
            refreshes_c_.inc();
            existing.info.base = base;
            if (epoch != 0) existing.info.base_epoch = epoch;
            arm_expiry(existing.info.id, lease);
            emit("refresh", existing.info);
            Dict out{{"ext", Value{static_cast<std::int64_t>(existing.info.id.value)}},
                     {"lease_ms", Value{lease.count() / 1'000'000}}};
            return Value{std::move(out)};
        }
        // A *different* version — newer or older — replaces (shutdown runs
        // first). The base is the policy authority: a push of an older
        // version is a deliberate rollback (a staged rollout re-installing
        // the incumbent), not a stale duplicate — duplicates carry the
        // version the node already runs and land in the refresh branch
        // above, and a flip lost to a race heals because the base's retry
        // loop keeps pushing its current choice until the node matches.
        replacements_c_.inc();
        withdraw(it->second, prose::WithdrawReason::kReplaced);
    }

    // Compile and weave. Compilation failures (bad script, missing bound
    // functions) propagate to the installing base.
    script::Sandbox sandbox;
    sandbox.capabilities.insert(pkg.capabilities.begin(), pkg.capabilities.end());
    sandbox.step_budget = config_.script_step_budget;
    sandbox.max_recursion = config_.script_max_recursion;
    if (config_.governor_advice_deadline.count() > 0 &&
        config_.governor_step_cost.count() > 0) {
        // Virtual-time watchdog, priced in steps: an advice entry may run
        // for at most deadline/step_cost interpreter steps before being
        // killed with DeadlineExceeded.
        sandbox.deadline_steps = static_cast<std::uint64_t>(
            config_.governor_advice_deadline.count() / config_.governor_step_cost.count());
        if (sandbox.deadline_steps == 0) sandbox.deadline_steps = 1;
    }

    // Per-extension builtins: owner.post reaches back to whatever node
    // installed this extension (the base station or a peer).
    script::BuiltinRegistry builtins = host_builtins_;
    rt::RpcEndpoint* rpc = &rpc_;
    NodeId owner = base;

    // rpc.set_channel(key): the paper's application-blind encryption
    // extension — "encrypt every outgoing call from an application and
    // decrypt every incoming call". Installs keyed wire filters on this
    // node's rpc path; they are withdrawn with the extension. The toy
    // stream cipher (magic + repeating-key XOR) stands in for a real one;
    // what matters is the join point and the lifecycle.
    ExtensionId id = ids_.next();
    rt::HookOwner wire_owner = 0x8000000000000000ull | id.value;
    builtins.add("rpc.set_channel", "rpc", [rpc, wire_owner](List& args) -> Value {
        if (args.size() != 1 || !args[0].is_str()) {
            throw ScriptError("rpc.set_channel expects (key)");
        }
        try {
            key_channel(*rpc, wire_owner, args[0].as_str());
        } catch (const Error& e) {
            throw ScriptError(e.what());
        }
        return Value{};
    });
    builtins.add("owner.post", "net", [rpc, owner](List& args) -> Value {
        if (args.size() != 3 || !args[0].is_str() || !args[1].is_str() || !args[2].is_list()) {
            throw ScriptError("owner.post expects (object, method, args)");
        }
        rpc->call_async(owner, args[0].as_str(), args[1].as_str(), args[2].as_list(),
                        [](Value, std::exception_ptr) {});
        return Value{};
    });

    std::vector<prose::ScriptBinding> bindings;
    for (const PackageBinding& b : pkg.bindings) {
        prose::ScriptBinding sb{b.kind, b.pointcut, b.function, b.priority, {}};
        sb.parsed = pointcut_for(b.pointcut);
        bindings.push_back(std::move(sb));
    }

    AspectId aspect;
    try {
        // One parse + one bytecode compile per distinct script on this
        // node; re-installs and fleet-wide pushes of the same extension
        // hit the cache. The cached unit retains the Program, so the
        // static check below never re-parses either.
        std::shared_ptr<const script::CompiledUnit> unit = compiled_unit_for(pkg.script);
        if (config_.static_check) {
            // The checker sees the same world the script will: host and
            // per-extension builtins plus the ctx.* join-point builtins
            // that ScriptAspect adds during compilation.
            script::BuiltinRegistry checkable = builtins;
            for (const auto& [name, capability] : prose::ctx_builtin_names()) {
                checkable.add(name, capability,
                              [](List&) -> Value { return Value{}; });
            }
            auto diagnostics = script::check(*unit->program, checkable);
            if (!diagnostics.empty()) {
                throw ScriptError("extension '" + pkg.name + "' rejected by static check: " +
                                  script::format_diagnostics(diagnostics));
            }
        }
        prose::ScriptAspect compiled(pkg.name, std::move(unit), std::move(bindings),
                                     std::move(sandbox), builtins, pkg.config);
        // One step observer, two consumers: the profiler's per-extension
        // step counter is always fed (cost attribution is free — one
        // counter bump per outermost advice return), and the governor's
        // lease-window account only when budgets are armed. The interpreter
        // lives in the shared aspect, which the receiver withdraws before
        // dying, so `this` outlives the observer.
        obs::Counter* steps_c = obs::Profiler::global().step_counter(pkg.name);
        compiled.engine().set_step_observer(
            [this, id, steps_c, governed = governor_enabled()](std::uint64_t steps) {
                steps_c->inc(steps);
                if (governed) governor_charge(id, steps);
            });
        aspect = weaver_.weave(compiled.aspect());
    } catch (...) {
        // The top level may have installed wire filters before compilation
        // failed; do not leave them orphaned.
        rpc_.remove_wire_filters(wire_owner);
        rejections_c_.inc();
        throw;
    }

    Entry entry;
    entry.info = Installed{id, pkg.name, pkg.version, sig.issuer, base, aspect,
                           now + lease, epoch};
    entry.wire_owner = wire_owner;
    installed_.emplace(id, std::move(entry));
    by_name_[pkg.name] = id;
    by_aspect_[aspect] = id;
    if (governor_enabled()) governor_.emplace(id, GovernorState{});
    arm_expiry(id, lease);
    installs_c_.inc();
    extensions_g_->set(static_cast<std::int64_t>(installed_.size()));
    // The documented contract: a newer version arriving lifts quarantine
    // entries for *older* versions of the same name — the broken build is
    // superseded, so refusing it forever serves nothing and would block a
    // later rollback to it as a proven-good incumbent.
    for (auto qit = quarantined_.begin(); qit != quarantined_.end();) {
        if (qit->first == pkg.name && qit->second < pkg.version) {
            journal(ReceiverDurableState::rec_unquarantine(qit->first, qit->second));
            unquarantines_c_.inc();
            qit = quarantined_.erase(qit);
        } else {
            ++qit;
        }
    }
    journal(ReceiverDurableState::rec_install(pkg.name, pkg.version, sig.issuer));
    // Crash-point: the extension is woven and journaled, the reply not yet
    // on the air — the installing base will see a timeout for a success.
    sim::FailPoints::hit(config_.node_label, "install.applied");
    trace.instant("midas.receiver", "pkg.install",
                  {{"node", config_.node_label},
                   {"pkg", pkg.name},
                   {"version", std::to_string(pkg.version)},
                   {"issuer", sig.issuer}});
    emit("install", installed_.at(id).info);
    log_info(now, "midas@" + config_.node_label, "installed '", pkg.name, "' v",
             pkg.version, " from ", sig.issuer);

    Dict out{{"ext", Value{static_cast<std::int64_t>(id.value)}},
             {"lease_ms", Value{lease.count() / 1'000'000}}};
    return Value{std::move(out)};
}

std::shared_ptr<const script::CompiledUnit> AdaptationService::compiled_unit_for(
    const std::string& script) {
    // Keyed by content hash, not the (potentially large) source text; the
    // digest also names the unit in traces. A failed parse/compile throws
    // before insertion, so bad scripts are never cached.
    std::string key = crypto::to_hex(crypto::Sha256::hash(script));
    if (auto* cached = compile_cache_.get(key)) {
        compile_hits_c_.inc();
        return *cached;
    }
    compile_misses_c_.inc();
    auto unit = script::compile(
        std::make_shared<const script::Program>(script::parse(script)));
    cache_evictions_c_.inc(compile_cache_.put(std::move(key), unit));
    return unit;
}

prose::Pointcut AdaptationService::pointcut_for(const std::string& source) {
    if (auto* cached = pointcut_cache_.get(source)) {
        pointcut_hits_c_.inc();
        return *cached;
    }
    prose::Pointcut pc = prose::Pointcut::parse(source);
    cache_evictions_c_.inc(pointcut_cache_.put(source, pc));
    return pc;
}

void AdaptationService::arm_expiry(ExtensionId id, Duration lease) {
    auto& entry = installed_.at(id);
    // Every lease renewal opens a fresh governor window (and settles the
    // old one — a window that ended suspended feeds the quarantine streak).
    governor_window_reset(id);
    rpc_.router().simulator().cancel(entry.expiry_timer);
    entry.info.expires = rpc_.router().simulator().now() + lease;
    entry.expiry_timer = rpc_.router().simulator().schedule_after(lease, [this, id]() {
        auto it = installed_.find(id);
        if (it == installed_.end()) return;
        expirations_c_.inc();
        Installed info = it->second.info;
        obs::TraceBuffer::global().instant(
            "midas.receiver", "lease.expire",
            {{"node", config_.node_label}, {"pkg", info.name}});
        log_info(rpc_.router().simulator().now(), "midas@" + config_.node_label,
                 "lease expired, withdrawing '", info.name, "'");
        withdraw(id, prose::WithdrawReason::kLeaseExpired);
        emit("expire", info);
    });
}

bool AdaptationService::do_keepalive(std::uint64_t ext, std::int64_t lease_ms,
                                     std::uint64_t epoch) {
    ExtensionId id{ext};
    auto it = installed_.find(id);
    if (it == installed_.end()) return false;
    if (epoch != 0 && it->second.info.base_epoch != 0 &&
        epoch != it->second.info.base_epoch) {
        // The base restarted since it leased this extension: the ext id it
        // recovered belongs to its previous life. Withdraw the stale lease
        // (shutdown advice runs first) and answer false — the recovered
        // base drops the id and re-installs through its normal retry path,
        // so the extension comes back exactly once.
        Installed info = it->second.info;
        obs::TraceBuffer::global().instant(
            "midas.receiver", "lease.stale_epoch",
            {{"node", config_.node_label},
             {"pkg", info.name},
             {"leased_epoch", std::to_string(info.base_epoch)},
             {"seen_epoch", std::to_string(epoch)}});
        log_info(rpc_.router().simulator().now(), "midas@" + config_.node_label,
                 "base epoch moved ", info.base_epoch, " -> ", epoch,
                 "; withdrawing stale '", info.name, "'");
        withdraw(id, prose::WithdrawReason::kBaseRestarted);
        return false;
    }
    renewals_c_.inc();
    obs::TraceBuffer::global().instant(
        "midas.receiver", "lease.renew",
        {{"node", config_.node_label}, {"pkg", it->second.info.name}});
    arm_expiry(id, clamp(lease_ms));
    return true;
}

bool AdaptationService::do_revoke(std::uint64_t ext) {
    ExtensionId id{ext};
    auto it = installed_.find(id);
    if (it == installed_.end()) return false;
    revocations_c_.inc();
    Installed info = it->second.info;
    withdraw(id, prose::WithdrawReason::kExplicit);
    emit("revoke", info);
    return true;
}

rt::Value AdaptationService::do_list() const {
    List out;
    for (const auto& [id, entry] : installed_) {
        Dict d{{"ext", Value{static_cast<std::int64_t>(id.value)}},
               {"name", Value{entry.info.name}},
               {"version", Value{static_cast<std::int64_t>(entry.info.version)}},
               {"issuer", Value{entry.info.issuer}}};
        out.push_back(Value{std::move(d)});
    }
    return Value{std::move(out)};
}

void AdaptationService::withdraw(ExtensionId id, prose::WithdrawReason reason) {
    auto it = installed_.find(id);
    if (it == installed_.end()) return;
    rpc_.router().simulator().cancel(it->second.expiry_timer);
    weaver_.withdraw(it->second.info.aspect, reason);
    if (it->second.wire_owner != 0) {
        rpc_.remove_wire_filters(it->second.wire_owner);
    }
    std::string name = it->second.info.name;
    by_name_.erase(name);
    by_aspect_.erase(it->second.info.aspect);
    installed_.erase(it);
    advice_failures_.erase(id);
    governor_.erase(id);
    extensions_g_->set(static_cast<std::int64_t>(installed_.size()));
    // After the erase: a compaction inside journal() snapshots the live
    // manifest, which must no longer list this extension.
    journal(ReceiverDurableState::rec_withdraw(name));
}

void AdaptationService::withdraw_all(prose::WithdrawReason reason) {
    while (!installed_.empty()) {
        withdraw(installed_.begin()->first, reason);
    }
}

AdaptationService::Stats AdaptationService::stats() const {
    return Stats{installs_c_.value(),    replacements_c_.value(), refreshes_c_.value(),
                 rejections_c_.value(),  expirations_c_.value(),  revocations_c_.value()};
}

std::vector<AdaptationService::Installed> AdaptationService::installed() const {
    std::vector<Installed> out;
    out.reserve(installed_.size());
    for (const auto& [_, entry] : installed_) out.push_back(entry.info);
    return out;
}

}  // namespace pmp::midas
