#include "midas/rollout.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "crypto/sha256.h"
#include "midas/base.h"
#include "obs/trace.h"

namespace pmp::midas {

using rt::Dict;
using rt::List;
using rt::Value;

namespace {

constexpr std::size_t kNoStage = static_cast<std::size_t>(-1);

/// FNV-1a over (pkg name, NUL, node label). Hashing the *label* — not the
/// NodeId — keeps cohort membership identical across base restarts (ids
/// are per-life) and across seed replays; mixing the package name in
/// decorrelates cohorts of different rollouts so the same unlucky nodes
/// aren't always the canary.
std::uint32_t cohort_bucket(const std::string& pkg, const std::string& label) {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](unsigned char c) {
        h ^= c;
        h *= 1099511628211ULL;
    };
    for (unsigned char c : pkg) mix(c);
    mix(0);
    for (unsigned char c : label) mix(c);
    return static_cast<std::uint32_t>(h % 10000);
}

/// Same interpolation as obs::Histogram::quantile, over externally summed
/// buckets (we fold every profile site of one extension, and window by
/// subtracting a baseline — a live Histogram can do neither).
double p95_of(const std::vector<double>& bounds,
              const std::vector<std::uint64_t>& buckets, std::uint64_t count) {
    if (count == 0 || bounds.empty()) return 0.0;
    double rank = 0.95 * static_cast<double>(count);
    double cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        double next = cumulative + static_cast<double>(buckets[i]);
        if (next >= rank && buckets[i] > 0) {
            if (i >= bounds.size()) return bounds.back();
            double lo = i == 0 ? 0.0 : bounds[i - 1];
            double hi = bounds[i];
            double fraction = (rank - cumulative) / static_cast<double>(buckets[i]);
            return lo + fraction * (hi - lo);
        }
        cumulative = next;
    }
    return bounds.back();
}

/// Fold every profile.advice_ns site of `pkg` ("<pkg>|<pointcut>" labels)
/// into one bucket vector. Sites are per (extension, pointcut) — the
/// incumbent and the canary share them, so the windowed delta mixes both
/// while a stage runs; docs/rollout.md spells out the dilution caveat.
void fold_advice_ns(const std::string& pkg, std::vector<double>& bounds,
                    std::vector<std::uint64_t>& buckets, std::uint64_t& count) {
    const std::string prefix = pkg + "|";
    obs::Registry::global().visit_histograms(
        [&](const std::string& name, const std::string& label, const obs::Histogram& h) {
            if (name != "profile.advice_ns") return;
            if (label.rfind(prefix, 0) != 0) return;
            if (bounds.empty()) bounds = h.bounds();
            if (buckets.size() < h.buckets().size()) buckets.resize(h.buckets().size(), 0);
            for (std::size_t i = 0; i < h.buckets().size(); ++i) buckets[i] += h.buckets()[i];
            count += h.count();
        });
}

const char* status_name(RolloutController::Status s) {
    switch (s) {
        case RolloutController::Status::kActive: return "active";
        case RolloutController::Status::kAborted: return "aborted";
        case RolloutController::Status::kComplete: return "complete";
    }
    return "?";
}

}  // namespace

RolloutController::RolloutController(ExtensionBase& base, RolloutConfig config)
    : base_(base),
      config_(std::move(config)),
      promotions_c_("midas.rollout.promotions", base_.config_.issuer),
      aborts_c_("midas.rollout.aborts", base_.config_.issuer),
      completions_c_("midas.rollout.completions", base_.config_.issuer),
      strikes_c_("midas.rollout.strikes", base_.config_.issuer),
      rollback_installs_c_("midas.rollout.rollback_installs", base_.config_.issuer) {
    if (config_.stages.empty()) config_.stages = {1.0};
}

RolloutController::~RolloutController() {
    if (timer_armed_) base_.rpc_.router().simulator().cancel(timer_);
}

// --------------------------------------------------------- public views ----

bool RolloutController::active(const std::string& name) const {
    auto it = rollouts_.find(name);
    return it != rollouts_.end() && it->second.status == Status::kActive;
}

bool RolloutController::selects_canary(const std::string& name,
                                       const std::string& label) const {
    auto it = rollouts_.find(name);
    if (it == rollouts_.end() || it->second.status != Status::kActive) return false;
    return in_cohort(it->second, it->second.stage, label);
}

std::optional<RolloutController::View> RolloutController::view(
    const std::string& name) const {
    auto it = rollouts_.find(name);
    if (it == rollouts_.end()) return std::nullopt;
    return view_of(it->second);
}

std::vector<RolloutController::View> RolloutController::views() const {
    std::vector<View> out;
    for (const auto& [_, r] : rollouts_) out.push_back(view_of(r));
    return out;
}

RolloutController::View RolloutController::view_of(const Rollout& r) const {
    View v;
    v.name = r.name;
    v.version = r.pkg.version;
    v.incumbent_version = r.incumbent_version;
    v.stage = r.stage;
    v.stage_count = r.stages_bp.size();
    v.stage_fraction =
        r.stage < r.stages_bp.size() ? r.stages_bp[r.stage] / 10000.0 : 1.0;
    v.cohort = cohort_size(r, r.stage);
    v.upgraded = confirmed_in_cohort(r);
    v.status = r.status;
    v.abort_cause = r.abort_cause;
    v.health = Health{r.quarantines, r.escalations, r.refusal_streak,
                      r.baseline_p95, r.window_p95};
    v.verdicts = r.verdicts;
    return v;
}

rt::Value RolloutController::status_value() const {
    List out;
    for (const auto& [_, r] : rollouts_) {
        View v = view_of(r);
        List verdicts;
        for (const std::string& s : v.verdicts) verdicts.push_back(Value{s});
        out.push_back(Value{Dict{
            {"name", Value{v.name}},
            {"version", Value{static_cast<std::int64_t>(v.version)}},
            {"incumbent", Value{static_cast<std::int64_t>(v.incumbent_version)}},
            {"status", Value{status_name(v.status)}},
            {"stage", Value{static_cast<std::int64_t>(v.stage)}},
            {"stages", Value{static_cast<std::int64_t>(v.stage_count)}},
            {"fraction", Value{v.stage_fraction}},
            {"cohort", Value{static_cast<std::int64_t>(v.cohort)}},
            {"upgraded", Value{static_cast<std::int64_t>(v.upgraded)}},
            {"abort_cause", Value{v.abort_cause}},
            {"health",
             Value{Dict{{"quarantines", Value{static_cast<std::int64_t>(v.health.quarantines)}},
                        {"escalations", Value{static_cast<std::int64_t>(v.health.escalations)}},
                        {"refusal_streak",
                         Value{static_cast<std::int64_t>(v.health.refusal_streak)}},
                        {"baseline_p95_ns", Value{v.health.baseline_p95_ns}},
                        {"window_p95_ns", Value{v.health.window_p95_ns}}}}},
            {"verdicts", Value{std::move(verdicts)}}}});
    }
    return Value{std::move(out)};
}

// ------------------------------------------------------------ lifecycle ----

void RolloutController::begin(ExtensionPackage pkg, Bytes sealed, std::string hash,
                              std::uint32_t incumbent_version) {
    Rollout r;
    r.name = pkg.name;
    r.sealed = std::move(sealed);
    r.hash = std::move(hash);
    r.incumbent_version = incumbent_version;
    r.pkg = std::move(pkg);
    for (double f : config_.stages) {
        auto bp = static_cast<std::uint32_t>(std::lround(std::clamp(f, 0.0, 1.0) * 10000));
        if (!r.stages_bp.empty() && bp < r.stages_bp.back()) bp = r.stages_bp.back();
        r.stages_bp.push_back(bp);
    }
    if (r.stages_bp.back() != 10000) r.stages_bp.push_back(10000);
    r.stage_since = base_.rpc_.router().simulator().now();

    // Latency baseline: the incumbent's advice distribution as of now.
    if (config_.latency_factor > 0) {
        std::vector<double> bounds;
        fold_advice_ns(r.name, bounds, r.lat_buckets0, r.lat_count0);
        if (r.lat_count0 >= config_.latency_min_samples) {
            r.baseline_p95 = p95_of(bounds, r.lat_buckets0, r.lat_count0);
        }
    }

    const std::string name = r.name;
    auto [it, _] = rollouts_.insert_or_assign(name, std::move(r));
    Rollout& live = it->second;
    base_.journal(BaseDurableState::rec_rollout_begin(snapshot_entry(live)));
    obs::TraceBuffer::global().instant(
        "midas.rollout", "rollout.begin",
        {{"issuer", base_.config_.issuer},
         {"pkg", live.name},
         {"version", std::to_string(live.pkg.version)},
         {"incumbent", std::to_string(live.incumbent_version)},
         {"stages", std::to_string(live.stages_bp.size())}});
    log_info(base_.rpc_.router().simulator().now(), "base@" + base_.config_.issuer,
             "rollout of '", live.name, "' v", live.pkg.version, " begins: ",
             live.stages_bp.size(), " stages, incumbent v", live.incumbent_version);
    capture_stage_baselines(live);
    open_stage_span(live);
    push_canary_to_cohort(live, kNoStage);
    arm_timer();
    update_gauges();
}

BaseDurableState::RolloutEntry RolloutController::snapshot_entry(const Rollout& r) {
    BaseDurableState::RolloutEntry e;
    e.name = r.name;
    e.version = r.pkg.version;
    e.sealed = r.sealed;
    e.incumbent_version = r.incumbent_version;
    e.stages_bp = r.stages_bp;
    e.stage = static_cast<std::uint32_t>(r.stage);
    e.status = r.status == Status::kActive ? 0 : r.status == Status::kAborted ? 1 : 2;
    e.abort_cause = r.abort_cause;
    return e;
}

void RolloutController::adopt(const BaseDurableState::RolloutEntry& entry) {
    Rollout r;
    r.name = entry.name;
    r.sealed = entry.sealed;
    r.incumbent_version = entry.incumbent_version;
    r.stages_bp = entry.stages_bp;
    if (r.stages_bp.empty()) r.stages_bp = {10000};
    r.stage = std::min<std::size_t>(entry.stage, r.stages_bp.size() - 1);
    r.status = entry.status == 1   ? Status::kAborted
               : entry.status == 2 ? Status::kComplete
                                   : Status::kActive;
    r.abort_cause = entry.abort_cause;
    try {
        auto [pkg, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(r.sealed));
        r.pkg = std::move(pkg);
    } catch (const std::exception& e) {
        // CRC-valid journal, unreadable package (should not happen): a
        // rollout we cannot serve cannot continue — abort it rather than
        // promote a package we cannot push.
        if (r.status == Status::kActive) {
            r.status = Status::kAborted;
            r.abort_cause = std::string("canary package unreadable after recovery: ") +
                            e.what();
        }
    }
    r.hash = crypto::to_hex(
        crypto::Sha256::hash(std::span<const std::uint8_t>(r.sealed)));
    // Resume at the journaled stage with a fresh window: health baselines
    // from the previous life are gone, so the stage re-measures from now
    // rather than promoting on stale evidence.
    r.stage_since = base_.rpc_.router().simulator().now();
    r.verdicts.push_back("recovered at stage " + std::to_string(r.stage) + " (" +
                         status_name(r.status) + "); health window restarted");
    const bool is_active = r.status == Status::kActive;
    const std::string name = r.name;
    auto [it, _] = rollouts_.insert_or_assign(name, std::move(r));
    if (is_active) {
        capture_stage_baselines(it->second);
        open_stage_span(it->second);
        arm_timer();
        log_info(base_.rpc_.router().simulator().now(), "base@" + base_.config_.issuer,
                 "resuming rollout of '", name, "' at stage ", it->second.stage);
    }
    update_gauges();
}

void RolloutController::snapshot_into(BaseDurableState& st) const {
    for (const auto& [name, r] : rollouts_) st.rollouts[name] = snapshot_entry(r);
}

void RolloutController::arm_timer() {
    if (timer_armed_) return;
    timer_armed_ = true;
    timer_ = base_.rpc_.router().simulator().schedule_every(config_.tick_period,
                                                            [this]() { tick(); });
}

// ------------------------------------------------------- cohort queries ----

bool RolloutController::in_cohort(const Rollout& r, std::size_t stage,
                                  const std::string& label) const {
    if (stage >= r.stages_bp.size()) stage = r.stages_bp.size() - 1;
    return cohort_bucket(r.name, label) < r.stages_bp[stage];
}

std::size_t RolloutController::cohort_size(const Rollout& r, std::size_t stage) const {
    std::size_t n = 0;
    for (const auto& [_, a] : base_.adapted_) {
        if (!a.probation && in_cohort(r, stage, a.label)) ++n;
    }
    return n;
}

std::size_t RolloutController::confirmed_in_cohort(const Rollout& r) const {
    std::size_t n = 0;
    for (const auto& [_, a] : base_.adapted_) {
        if (!a.probation && in_cohort(r, r.stage, a.label) && r.upgraded.contains(a.label)) {
            ++n;
        }
    }
    return n;
}

const Bytes* RolloutController::canary_sealed(const std::string& name) const {
    auto it = rollouts_.find(name);
    if (it == rollouts_.end() || it->second.status != Status::kActive) return nullptr;
    return &it->second.sealed;
}

const Bytes* RolloutController::sealed_for_hash(const std::string& hash) const {
    for (const auto& [_, r] : rollouts_) {
        if (r.status == Status::kActive && r.hash == hash) return &r.sealed;
    }
    return nullptr;
}

const std::string* RolloutController::canary_hash(const std::string& name) const {
    auto it = rollouts_.find(name);
    if (it == rollouts_.end() || it->second.status != Status::kActive) return nullptr;
    return &it->second.hash;
}

std::uint32_t RolloutController::canary_version(const std::string& name) const {
    auto it = rollouts_.find(name);
    return it == rollouts_.end() ? 0 : it->second.pkg.version;
}

// -------------------------------------------------------- health intake ----

void RolloutController::note_install_ok(const std::string& name,
                                        const std::string& label) {
    auto it = rollouts_.find(name);
    if (it == rollouts_.end() || it->second.status != Status::kActive) return;
    it->second.upgraded.insert(label);
    it->second.refusal_streak = 0;
}

void RolloutController::note_install_error(const std::string& name,
                                           const std::string& label, bool transport,
                                           bool quarantine_refusal) {
    auto it = rollouts_.find(name);
    if (it == rollouts_.end() || it->second.status != Status::kActive) return;
    // Transport trouble (timeouts, out of range, shedding) says nothing
    // about the package — radio faults must not abort a healthy rollout.
    if (transport) return;
    ++it->second.refusal_streak;
    strikes_c_.inc();
    obs::TraceBuffer::global().instant(
        "midas.rollout", "rollout.strike",
        {{"pkg", name},
         {"node", label},
         {"kind", quarantine_refusal ? "quarantine-refusal" : "install-refusal"},
         {"streak", std::to_string(it->second.refusal_streak)}});
}

void RolloutController::capture_stage_baselines(Rollout& r) {
    // Counter baselines are first-sight and never reset: a quarantine at
    // stage 0 still counts at stage 2 — terminal evidence doesn't expire
    // with a promotion. Only the latency window restarts per stage.
    auto& reg = obs::Registry::global();
    for (const auto& [_, a] : base_.adapted_) {
        if (a.probation || !in_cohort(r, r.stage, a.label)) continue;
        if (!r.quarantine0.contains(a.label)) {
            r.quarantine0[a.label] =
                reg.counter("midas.receiver.quarantined", a.label).value();
        }
        if (!r.governor0.contains(a.label)) {
            r.governor0[a.label] = reg.counter("recv.governor.throttles", a.label).value() +
                                   reg.counter("recv.governor.suspends", a.label).value();
        }
    }
    if (config_.latency_factor > 0) {
        std::vector<double> bounds;
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        fold_advice_ns(r.name, bounds, buckets, count);
        r.lat_buckets0 = std::move(buckets);
        r.lat_count0 = count;
        r.window_p95 = 0;
    }
}

void RolloutController::poll_health(Rollout& r) {
    auto& reg = obs::Registry::global();
    int quarantines = 0;
    int escalations = 0;
    for (const auto& [_, a] : base_.adapted_) {
        if (a.probation || !in_cohort(r, r.stage, a.label)) continue;
        auto q0 = r.quarantine0.find(a.label);
        if (q0 == r.quarantine0.end()) {
            // A node that joined the cohort mid-stage: baseline from first
            // sight, so its pre-rollout history never counts against us.
            q0 = r.quarantine0
                     .emplace(a.label,
                              reg.counter("midas.receiver.quarantined", a.label).value())
                     .first;
        }
        quarantines += static_cast<int>(
            reg.counter("midas.receiver.quarantined", a.label).value() - q0->second);
        auto g0 = r.governor0.find(a.label);
        if (g0 == r.governor0.end()) {
            g0 = r.governor0
                     .emplace(a.label,
                              reg.counter("recv.governor.throttles", a.label).value() +
                                  reg.counter("recv.governor.suspends", a.label).value())
                     .first;
        }
        escalations += static_cast<int>(
            (reg.counter("recv.governor.throttles", a.label).value() +
             reg.counter("recv.governor.suspends", a.label).value()) -
            g0->second);
    }
    r.quarantines = quarantines;
    r.escalations = escalations;

    if (config_.latency_factor > 0 && r.baseline_p95 > 0) {
        std::vector<double> bounds;
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        fold_advice_ns(r.name, bounds, buckets, count);
        if (buckets.size() >= r.lat_buckets0.size() && count >= r.lat_count0) {
            std::vector<std::uint64_t> delta = buckets;
            for (std::size_t i = 0; i < r.lat_buckets0.size(); ++i) {
                delta[i] -= r.lat_buckets0[i];
            }
            std::uint64_t window_count = count - r.lat_count0;
            if (window_count >= config_.latency_min_samples) {
                r.window_p95 = p95_of(bounds, delta, window_count);
            }
        }
    }
}

std::string RolloutController::gate_breach(const Rollout& r) const {
    if (config_.quarantine_tolerance > 0 && r.quarantines >= config_.quarantine_tolerance) {
        return "quarantine: " + std::to_string(r.quarantines) +
               " cohort node(s) quarantined the canary";
    }
    if (config_.refusal_tolerance > 0 && r.refusal_streak >= config_.refusal_tolerance) {
        return "install-refusals: " + std::to_string(r.refusal_streak) +
               " consecutive non-transport canary install failures";
    }
    if (config_.escalation_tolerance > 0 && r.escalations >= config_.escalation_tolerance) {
        return "governor-escalation: " + std::to_string(r.escalations) +
               " throttle/suspend escalations on cohort nodes";
    }
    if (config_.latency_factor > 0 && r.baseline_p95 > 0 && r.window_p95 > 0 &&
        r.window_p95 > config_.latency_factor * r.baseline_p95) {
        return "latency-regression: advice p95 " + std::to_string(r.window_p95) +
               "ns vs incumbent baseline " + std::to_string(r.baseline_p95) + "ns";
    }
    return {};
}

// -------------------------------------------------------------- driving ----

void RolloutController::tick() {
    bool any_active = false;
    for (auto& [_, r] : rollouts_) {
        if (r.status != Status::kActive) continue;
        poll_health(r);
        std::string cause = gate_breach(r);
        if (!cause.empty()) {
            abort(r, cause);
            continue;
        }
        any_active = true;
        SimTime now = base_.rpc_.router().simulator().now();
        if (now - r.stage_since < config_.stage_window) continue;
        std::size_t cohort = cohort_size(r, r.stage);
        std::size_t confirmed = confirmed_in_cohort(r);
        std::size_t required =
            cohort == 0 ? 0
                        : static_cast<std::size_t>(std::ceil(
                              config_.confirm_fraction * static_cast<double>(cohort)));
        if (confirmed < required) continue;  // wait for the cohort to prove it
        if (r.stage + 1 < r.stages_bp.size()) {
            promote(r);
        } else {
            complete(r);
        }
    }
    update_gauges();
    if (!any_active) {
        // Everything terminal: stop ticking until the next begin()/adopt().
        base_.rpc_.router().simulator().cancel(timer_);
        timer_armed_ = false;
    }
}

void RolloutController::push_canary_to_cohort(Rollout& r, std::size_t from_stage) {
    // Erasing the install bookkeeping is the push: the direct retry loop
    // (or the next cell frame's roster diff) re-installs the name, and
    // install selection picks the canary for cohort members. Done only for
    // *newly covered* nodes on promotion, so each node is upgraded once.
    for (auto& [node, a] : base_.adapted_) {
        if (a.probation) continue;
        if (!in_cohort(r, r.stage, a.label)) continue;
        if (from_stage != kNoStage && in_cohort(r, from_stage, a.label)) continue;
        a.installed.erase(r.name);
        a.retry.erase(r.name);
        if (!base_.cell_routed(a)) {
            std::set<std::string> visiting;
            base_.install_on(node, r.name, visiting);
        }
    }
}

void RolloutController::promote(Rollout& r) {
    std::size_t old_stage = r.stage;
    std::size_t confirmed = confirmed_in_cohort(r);
    std::size_t cohort = cohort_size(r, r.stage);
    close_stage_span(r, "promote");
    r.verdicts.push_back(
        "stage " + std::to_string(old_stage) + " (" +
        std::to_string(r.stages_bp[old_stage] / 100) + "%): promoted — " +
        std::to_string(confirmed) + "/" + std::to_string(cohort) + " confirmed, " +
        std::to_string(r.quarantines) + " quarantines, " +
        std::to_string(r.escalations) + " escalations");
    ++r.stage;
    r.stage_since = base_.rpc_.router().simulator().now();
    promotions_c_.inc();
    base_.journal(
        BaseDurableState::rec_rollout_stage(r.name, static_cast<std::uint32_t>(r.stage)));
    base_.record("rollout-stage", "", r.name);
    obs::TraceBuffer::global().instant(
        "midas.rollout", "rollout.promote",
        {{"pkg", r.name},
         {"stage", std::to_string(r.stage)},
         {"fraction", std::to_string(r.stages_bp[r.stage] / 10000.0)}});
    log_info(base_.rpc_.router().simulator().now(), "base@" + base_.config_.issuer,
             "rollout of '", r.name, "' promoted to stage ", r.stage, " (",
             r.stages_bp[r.stage] / 100, "% of fleet)");
    capture_stage_baselines(r);
    open_stage_span(r);
    push_canary_to_cohort(r, old_stage);
}

void RolloutController::complete(Rollout& r) {
    std::size_t confirmed = confirmed_in_cohort(r);
    close_stage_span(r, "complete");
    r.status = Status::kComplete;
    r.verdicts.push_back("stage " + std::to_string(r.stage) + " (100%): complete — " +
                         std::to_string(confirmed) + " nodes confirmed on v" +
                         std::to_string(r.pkg.version));
    completions_c_.inc();

    // The canary graduates: it becomes the policy (and with it the catch-up
    // image, which served the pinned incumbent the whole rollout).
    base_.policy_[r.name] = ExtensionBase::Policy{r.pkg, r.sealed, r.hash};
    base_.catchup_dirty_ = true;
    base_.record("rollout-complete", "", r.name);
    // Journal order matters: the policy-add makes the canary the durable
    // incumbent, the rollout-complete closes the rollout — replaying a
    // prefix of the two leaves a completed-in-all-but-name rollout that
    // the resumed controller finishes idempotently.
    base_.journal(BaseDurableState::rec_policy_add(r.name, r.pkg.version, r.sealed));
    base_.journal(BaseDurableState::rec_rollout_complete(r.name));
    obs::TraceBuffer::global().instant(
        "midas.rollout", "rollout.complete",
        {{"pkg", r.name}, {"version", std::to_string(r.pkg.version)}});
    log_info(base_.rpc_.router().simulator().now(), "base@" + base_.config_.issuer,
             "rollout of '", r.name, "' v", r.pkg.version, " complete");

    // Stragglers that never confirmed the canary (the completion quota is a
    // fraction, not everyone): drop their bookkeeping so the normal install
    // machinery brings them to the new policy version.
    for (auto& [node, a] : base_.adapted_) {
        if (a.probation || r.upgraded.contains(a.label)) continue;
        if (!a.installed.contains(r.name) && !a.retry.contains(r.name)) continue;
        a.installed.erase(r.name);
        a.retry.erase(r.name);
        if (!base_.cell_routed(a)) {
            std::set<std::string> visiting;
            base_.install_on(node, r.name, visiting);
        }
    }
}

void RolloutController::abort(Rollout& r, const std::string& cause) {
    close_stage_span(r, "abort: " + cause);
    r.status = Status::kAborted;
    r.abort_cause = cause;
    r.verdicts.push_back("stage " + std::to_string(r.stage) + ": ABORT — " + cause);
    aborts_c_.inc();
    base_.record("rollout-abort", "", r.name);
    base_.journal(BaseDurableState::rec_rollout_abort(r.name, cause));
    obs::TraceBuffer::global().instant(
        "midas.rollout", "rollout.abort",
        {{"pkg", r.name},
         {"stage", std::to_string(r.stage)},
         {"cause", cause}});
    log_warn(base_.rpc_.router().simulator().now(), "base@" + base_.config_.issuer,
             "rollout of '", r.name, "' v", r.pkg.version, " ABORTED at stage ",
             r.stage, ": ", cause, "; rolling back to v", r.incumbent_version);

    // Roll the cohort back to the incumbent. policy_ still holds it (the
    // rollout never touched the policy set), so erasing the canary's
    // bookkeeping makes the normal machinery re-push the incumbent — the
    // receiver replaces on version difference. The unquarantine is the
    // scoped amnesty: a node that once quarantined the incumbent's exact
    // version (and was then upgraded) must accept it back, or rollback
    // would strand it with nothing.
    std::int64_t incumbent = static_cast<std::int64_t>(r.incumbent_version);
    for (auto& [node, a] : base_.adapted_) {
        if (a.probation || !in_cohort(r, r.stage, a.label)) continue;
        a.installed.erase(r.name);
        a.retry.erase(r.name);
        rollback_installs_c_.inc();
        if (base_.cell_routed(a)) {
            if (auto cit = base_.cells_.find(a.cell); cit != base_.cells_.end()) {
                cit->second.unq_outbox.push_back(ExtensionBase::CellUnq{
                    0, Value{Dict{{"node", Value{static_cast<std::int64_t>(node.value)}},
                                  {"name", Value{r.name}},
                                  {"version", Value{incumbent}}}}});
            }
        } else {
            base_.rpc_.call_async(
                node, "adaptation", "unquarantine",
                {Value{r.name}, Value{incumbent},
                 Value{static_cast<std::int64_t>(base_.epoch_)}},
                rt::CallOptions{.timeout = base_.config_.keepalive_period, .retries = 2},
                [](Value, std::exception_ptr, bool) {
                    // Best effort: a node that never quarantined the
                    // incumbent answers false, a dark node misses the
                    // amnesty and keeps refusing — both are visible as
                    // install refusals and heal when the radio does.
                });
            std::set<std::string> visiting;
            base_.install_on(node, r.name, visiting);
        }
    }
}

void RolloutController::open_stage_span(Rollout& r) {
    r.stage_span = obs::TraceBuffer::global().begin_span(
        "midas.rollout", "rollout.stage",
        {{"pkg", r.name},
         {"stage", std::to_string(r.stage)},
         {"fraction", std::to_string(r.stages_bp[std::min(r.stage, r.stages_bp.size() - 1)] /
                                     10000.0)},
         {"cohort", std::to_string(cohort_size(r, r.stage))}});
}

void RolloutController::close_stage_span(Rollout& r, const std::string& verdict) {
    if (r.stage_span == 0) return;
    obs::TraceBuffer::global().end_span(
        r.stage_span, {{"verdict", verdict},
                       {"upgraded", std::to_string(r.upgraded.size())},
                       {"quarantines", std::to_string(r.quarantines)},
                       {"escalations", std::to_string(r.escalations)},
                       {"refusal_streak", std::to_string(r.refusal_streak)}});
    r.stage_span = 0;
}

void RolloutController::update_gauges() const {
    auto& reg = obs::Registry::global();
    std::int64_t active_count = 0;
    for (const auto& [name, r] : rollouts_) {
        if (r.status == Status::kActive) ++active_count;
        reg.gauge("midas.rollout.stage", name)
            .set(static_cast<std::int64_t>(r.stage));
        reg.gauge("midas.rollout.cohort", name)
            .set(static_cast<std::int64_t>(cohort_size(r, r.stage)));
        reg.gauge("midas.rollout.upgraded", name)
            .set(static_cast<std::int64_t>(confirmed_in_cohort(r)));
    }
    reg.gauge("midas.rollout.active", base_.config_.issuer).set(active_count);
}

}  // namespace pmp::midas
