// Dynamic value type of the metaobject runtime.
//
// Value plays the role Java's Object plays in the paper: the type of every
// method argument and result crossing the middleware, of marshaled RPC
// payloads, of AdviceScript values, and of extension configuration. It is a
// tree: scalars, byte blobs, lists and string-keyed dictionaries, with a
// canonical byte encoding (used both on the wire and as the signed payload
// of extension packages).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.h"

namespace pmp::rt {

class Value;

/// Ordered sequence of values.
using List = std::vector<Value>;

/// String-keyed mapping with deterministic (sorted) iteration order.
/// Implemented as a sorted vector so it works with the incomplete Value
/// type and encodes canonically (same content => same bytes => same MAC).
class Dict {
public:
    using Entry = std::pair<std::string, Value>;
    using const_iterator = std::vector<Entry>::const_iterator;

    Dict() = default;
    Dict(std::initializer_list<Entry> entries);

    /// Insert or overwrite.
    void set(const std::string& key, Value value);

    /// nullptr if absent.
    const Value* find(const std::string& key) const;

    /// Reference to the value; throws TypeError if absent.
    const Value& at(const std::string& key) const;

    bool contains(const std::string& key) const { return find(key) != nullptr; }
    bool erase(const std::string& key);

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

    bool operator==(const Dict&) const;

private:
    std::vector<Entry>::iterator lower_bound(const std::string& key);
    std::vector<Entry>::const_iterator lower_bound(const std::string& key) const;

    std::vector<Entry> entries_;  // kept sorted by key
};

/// The dynamic value.
class Value {
public:
    enum class Kind : std::uint8_t {
        kNull = 0,
        kBool = 1,
        kInt = 2,
        kReal = 3,
        kStr = 4,
        kBlob = 5,
        kList = 6,
        kDict = 7,
    };

    Value() : v_(std::monostate{}) {}
    Value(bool b) : v_(b) {}
    Value(std::int64_t i) : v_(i) {}
    Value(int i) : v_(static_cast<std::int64_t>(i)) {}
    Value(double d) : v_(d) {}
    Value(const char* s) : v_(std::string(s)) {}
    Value(std::string s) : v_(std::move(s)) {}
    Value(Bytes b) : v_(std::move(b)) {}
    Value(List l) : v_(std::move(l)) {}
    Value(Dict d) : v_(std::move(d)) {}

    Kind kind() const { return static_cast<Kind>(v_.index()); }
    static const char* kind_name(Kind k);

    bool is_null() const { return kind() == Kind::kNull; }
    bool is_bool() const { return kind() == Kind::kBool; }
    bool is_int() const { return kind() == Kind::kInt; }
    bool is_real() const { return kind() == Kind::kReal; }
    bool is_number() const { return is_int() || is_real(); }
    bool is_str() const { return kind() == Kind::kStr; }
    bool is_blob() const { return kind() == Kind::kBlob; }
    bool is_list() const { return kind() == Kind::kList; }
    bool is_dict() const { return kind() == Kind::kDict; }

    /// Inline non-throwing accessor: nullptr unless the value is an Int.
    /// For engine fast paths that cannot afford an out-of-line call.
    const std::int64_t* if_int() const { return std::get_if<std::int64_t>(&v_); }

    /// Checked accessors; throw TypeError on kind mismatch.
    bool as_bool() const;
    std::int64_t as_int() const;
    /// Numeric accessor: accepts both Int and Real.
    double as_real() const;
    const std::string& as_str() const;
    const Bytes& as_blob() const;
    const List& as_list() const;
    List& as_list();
    const Dict& as_dict() const;
    Dict& as_dict();

    /// Script truthiness: null/false/0/""/empty containers are false.
    bool truthy() const;

    bool operator==(const Value& other) const { return v_ == other.v_; }

    /// Human-readable JSON-like rendering (for logs and examples).
    std::string to_string() const;

    /// Canonical binary encoding (self-delimiting).
    void encode(Bytes& out) const;
    Bytes encode() const;
    static Value decode(ByteReader& reader);
    static Value decode(std::span<const std::uint8_t> data);

private:
    std::variant<std::monostate, bool, std::int64_t, double, std::string, Bytes, List, Dict> v_;
};

}  // namespace pmp::rt
