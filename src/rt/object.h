// Service objects: instances of TypeInfo with per-instance field storage
// and optional native backing state.
#pragma once

#include <memory>
#include <string>

#include "common/error.h"
#include "rt/type.h"

namespace pmp::rt {

/// An instance of a service class. All invocations — local calls, remote
/// calls after unmarshaling, script calls — go through ServiceObject::call,
/// which is where PROSE's join points fire.
class ServiceObject {
public:
    ServiceObject(std::shared_ptr<TypeInfo> type, std::string instance_name);

    TypeInfo& type() { return *type_; }
    const TypeInfo& type() const { return *type_; }
    const std::shared_ptr<TypeInfo>& type_ptr() const { return type_; }

    /// Instance name, e.g. "motor:x" or "robot:1:1".
    const std::string& name() const { return name_; }

    /// Invoke through the platform dispatch path (minimal hook included).
    Value call(std::string_view method, List args = {});

    /// Invoke as if the platform were absent (E3 baseline only).
    Value call_unhooked(std::string_view method, List args = {});

    /// Field access. Reads and writes flow through the field's hook slot so
    /// state-change join points fire (the paper's quality-assurance
    /// extension intercepts robot state changes this way).
    Value get(std::string_view field);
    void set(std::string_view field, Value value);

    /// Raw field access bypassing hooks (used by native handlers that need
    /// to update state without re-entering advice).
    const Value& peek(std::string_view field) const;
    void poke(std::string_view field, Value value);

    /// Native backing state for handlers implemented in C++ (e.g. the motor
    /// physics model). The object keeps it alive.
    template <typename T>
    T& state() {
        if (!state_) throw TypeError("object '" + name_ + "' has no native state");
        return *static_cast<T*>(state_.get());
    }
    template <typename T, typename... Args>
    T& emplace_state(Args&&... args) {
        auto owned = std::make_shared<T>(std::forward<Args>(args)...);
        T& ref = *owned;
        state_ = std::move(owned);
        return ref;
    }
    /// Share state owned elsewhere (e.g. a device model also held by its
    /// controller). state<T>() must be called with the same T.
    template <typename T>
    void adopt_state(std::shared_ptr<T> state) {
        state_ = std::move(state);
    }

private:
    Method& require_method(std::string_view name);
    std::size_t require_field(std::string_view name) const;

    std::shared_ptr<TypeInfo> type_;
    std::string name_;
    std::vector<Value> fields_;  // parallel to TypeInfo::fields()
    std::shared_ptr<void> state_;
};

}  // namespace pmp::rt
