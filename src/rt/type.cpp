#include "rt/type.h"

#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "rt/epoch.h"
#include "rt/object.h"

namespace pmp::rt {

namespace {
// Join-point hit counters on the dispatch hot path. Resolved once; the
// references stay valid for the process lifetime (pinned registry slots).
struct DispatchMetrics {
    obs::Counter& unwoven = obs::Registry::global().counter("rt.dispatch.unwoven");
    obs::Counter& advised = obs::Registry::global().counter("rt.dispatch.advised");
};

DispatchMetrics& dispatch_metrics() {
    static DispatchMetrics m;
    return m;
}

// SmallVec is move-only (dispatch never copies); building an RCU snapshot
// aside is the one place a deep copy is needed.
template <typename Fn>
void copy_table(const HookTable<Fn>& from, HookTable<Fn>& to) {
    for (const auto& slot : from) to.push_back(HookSlot<Fn>{slot.owner, slot.priority, slot.fn});
}

// Shared empty snapshot for invoke_debugger_style on an un-woven method.
const AdviceTables& no_advice() {
    static const AdviceTables empty;
    return empty;
}
}  // namespace

const char* type_kind_name(TypeKind k) {
    switch (k) {
        case TypeKind::kAny: return "any";
        case TypeKind::kVoid: return "void";
        case TypeKind::kBool: return "bool";
        case TypeKind::kInt: return "int";
        case TypeKind::kReal: return "real";
        case TypeKind::kStr: return "str";
        case TypeKind::kBlob: return "blob";
        case TypeKind::kList: return "list";
        case TypeKind::kDict: return "dict";
    }
    return "?";
}

std::optional<TypeKind> parse_type_kind(std::string_view name) {
    if (name == "any") return TypeKind::kAny;
    if (name == "void") return TypeKind::kVoid;
    if (name == "bool") return TypeKind::kBool;
    if (name == "int") return TypeKind::kInt;
    if (name == "real") return TypeKind::kReal;
    if (name == "str") return TypeKind::kStr;
    if (name == "blob" || name == "bytes") return TypeKind::kBlob;
    if (name == "list") return TypeKind::kList;
    if (name == "dict") return TypeKind::kDict;
    return std::nullopt;
}

bool value_matches(TypeKind kind, const Value& v) {
    switch (kind) {
        case TypeKind::kAny: return true;
        case TypeKind::kVoid: return v.is_null();
        case TypeKind::kBool: return v.is_bool();
        case TypeKind::kInt: return v.is_int();
        case TypeKind::kReal: return v.is_number();
        case TypeKind::kStr: return v.is_str();
        case TypeKind::kBlob: return v.is_blob();
        case TypeKind::kList: return v.is_list();
        case TypeKind::kDict: return v.is_dict();
    }
    return false;
}

std::string MethodDecl::signature(std::string_view type_name) const {
    std::ostringstream os;
    os << type_kind_name(returns) << ' ' << type_name << '.' << name << '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i) os << ", ";
        os << type_kind_name(params[i].type);
    }
    if (varargs) {
        if (!params.empty()) os << ", ";
        os << "..";
    }
    os << ')';
    return os.str();
}

// -------------------------------------------------------------- Method ----

void Method::validate(const List& args) const {
    if (decl_.varargs ? args.size() < decl_.params.size()
                      : args.size() != decl_.params.size()) {
        throw TypeError("method '" + decl_.name + "' expects " +
                        std::to_string(decl_.params.size()) +
                        (decl_.varargs ? "+ args, got " : " args, got ") +
                        std::to_string(args.size()));
    }
    for (std::size_t i = 0; i < decl_.params.size(); ++i) {
        if (!value_matches(decl_.params[i].type, args[i])) {
            throw TypeError("method '" + decl_.name + "' parameter '" + decl_.params[i].name +
                            "' expects " + type_kind_name(decl_.params[i].type) + ", got " +
                            Value::kind_name(args[i].kind()));
        }
    }
}

Method::~Method() { publish(nullptr); }

Value Method::invoke(ServiceObject& self, List args) {
    validate(args);
    // The minimal hook. When the method carries no advice this is the whole
    // cost of carrying the adaptation platform: one well-predicted load +
    // branch (plus one more branch for the join-point counter).
    const AdviceTables* tables = advice_.load(std::memory_order_acquire);
    if (tables == nullptr) [[likely]] {
        dispatch_metrics().unwoven.inc();
        return handler_(self, args);
    }
    dispatch_metrics().advised.inc();
    // Woven slow path: pin reclamation (no-op on epoch-covered worker
    // threads), then re-load — the snapshot read *under* the guard is one
    // whose retirement cannot have been reaped yet.
    EpochDomain::ReadGuard guard;
    tables = advice_.load(std::memory_order_seq_cst);
    if (tables == nullptr) return handler_(self, args);  // raced with withdraw
    return invoke_hooked(*tables, self, args);
}

Value Method::invoke_unhooked(ServiceObject& self, List args) {
    validate(args);
    return handler_(self, args);
}

Value Method::invoke_no_obs(ServiceObject& self, List args) {
    validate(args);
    const AdviceTables* tables = advice_.load(std::memory_order_acquire);
    if (tables == nullptr) [[likely]] {
        return handler_(self, args);
    }
    EpochDomain::ReadGuard guard;
    tables = advice_.load(std::memory_order_seq_cst);
    if (tables == nullptr) return handler_(self, args);
    return invoke_hooked(*tables, self, args);
}

Value Method::invoke_debugger_style(ServiceObject& self, List args) {
    validate(args);
    EpochDomain::ReadGuard guard;
    const AdviceTables* tables = advice_.load(std::memory_order_seq_cst);
    return invoke_hooked(tables ? *tables : no_advice(), self, args);  // no short-circuit
}

Value Method::invoke_hooked(const AdviceTables& tables, ServiceObject& self, List& args) {
    CallFrame frame{self, *this, args, Value{}, Dict{}};
    frame.result = run_advice_chain(tables, 0, frame, self, args);
    return frame.result;
}

Value Method::run_advice_chain(const AdviceTables& tables, std::size_t index, CallFrame& frame,
                               ServiceObject& self, List& args) {
    if (index == tables.around.size()) {
        // The innermost stage: entry advice, the original handler, exit
        // advice; error advice fires if any of those throw.
        try {
            for (const auto& slot : tables.entry) slot.fn(frame);
            frame.result = handler_(self, args);
            for (const auto& slot : tables.exit) slot.fn(frame);
        } catch (...) {
            auto error = std::current_exception();
            for (const auto& slot : tables.error) slot.fn(frame, error);
            throw;
        }
        return frame.result;
    }

    // Around advice at `index` wraps everything deeper in the table. Its
    // proceed() continuation re-enters this function at index + 1, so the
    // chain lives in the call stack instead of a per-dispatch tower of
    // heap-allocated closures. The lambda captures one pointer to a
    // stack-local context, which std::function keeps in its small-object
    // buffer — dispatch stays allocation-free however deep the advice
    // stack. The continuation is only valid during the hook call (as
    // before: proceed must not be stashed past the join point).
    struct Continuation {
        Method* method;
        const AdviceTables* tables;
        CallFrame* frame;
        ServiceObject* self;
        List* args;
        std::size_t next_index;
    } cont{this, &tables, &frame, &self, &args, index + 1};
    Continuation* ctx = &cont;
    const std::function<Value()> proceed = [ctx]() -> Value {
        return ctx->method->run_advice_chain(*ctx->tables, ctx->next_index, *ctx->frame,
                                             *ctx->self, *ctx->args);
    };
    return tables.around[index].fn(frame, proceed);
}

std::unique_ptr<AdviceTables> Method::copy_tables() const {
    auto next = std::make_unique<AdviceTables>();
    // The single-mutator contract makes this load the mutator's own last
    // publish — no torn or stale snapshot is possible.
    if (const AdviceTables* cur = advice_.load(std::memory_order_acquire)) {
        copy_table(cur->entry, next->entry);
        copy_table(cur->exit, next->exit);
        copy_table(cur->error, next->error);
        copy_table(cur->around, next->around);
    }
    return next;
}

void Method::publish(std::unique_ptr<AdviceTables> next) {
    const AdviceTables* fresh = (next != nullptr && !next->empty()) ? next.release() : nullptr;
    const AdviceTables* old = advice_.exchange(fresh, std::memory_order_seq_cst);
    if (old != nullptr) EpochDomain::global().retire([old] { delete old; });
}

void Method::add_entry_hook(HookOwner owner, int priority, EntryHook fn) {
    auto next = copy_tables();
    detail::insert_by_priority(next->entry, {owner, priority, std::move(fn)});
    publish(std::move(next));
}

void Method::add_exit_hook(HookOwner owner, int priority, ExitHook fn) {
    auto next = copy_tables();
    detail::insert_by_priority(next->exit, {owner, priority, std::move(fn)});
    publish(std::move(next));
}

void Method::add_error_hook(HookOwner owner, int priority, ErrorHook fn) {
    auto next = copy_tables();
    detail::insert_by_priority(next->error, {owner, priority, std::move(fn)});
    publish(std::move(next));
}

void Method::add_around_hook(HookOwner owner, int priority, AroundHook fn) {
    auto next = copy_tables();
    detail::insert_by_priority(next->around, {owner, priority, std::move(fn)});
    publish(std::move(next));
}

bool Method::remove_hooks(HookOwner owner) {
    if (advice_.load(std::memory_order_acquire) == nullptr) return false;
    auto next = copy_tables();
    bool removed = detail::remove_owner(next->entry, owner);
    removed |= detail::remove_owner(next->exit, owner);
    removed |= detail::remove_owner(next->error, owner);
    removed |= detail::remove_owner(next->around, owner);
    if (!removed) return false;  // nothing of `owner`'s here; keep the snapshot
    publish(std::move(next));
    return true;
}

// --------------------------------------------------------------- Field ----

Field::~Field() { publish(nullptr); }

std::unique_ptr<FieldHookTables> Field::copy_tables() const {
    auto next = std::make_unique<FieldHookTables>();
    if (const FieldHookTables* cur = hooks_.load(std::memory_order_acquire)) {
        copy_table(cur->set, next->set);
        copy_table(cur->get, next->get);
    }
    return next;
}

void Field::publish(std::unique_ptr<FieldHookTables> next) {
    const FieldHookTables* fresh = (next != nullptr && !next->empty()) ? next.release() : nullptr;
    const FieldHookTables* old = hooks_.exchange(fresh, std::memory_order_seq_cst);
    if (old != nullptr) EpochDomain::global().retire([old] { delete old; });
}

void Field::add_set_hook(HookOwner owner, int priority, FieldSetHook fn) {
    auto next = copy_tables();
    detail::insert_by_priority(next->set, {owner, priority, std::move(fn)});
    publish(std::move(next));
}

void Field::add_get_hook(HookOwner owner, int priority, FieldGetHook fn) {
    auto next = copy_tables();
    detail::insert_by_priority(next->get, {owner, priority, std::move(fn)});
    publish(std::move(next));
}

bool Field::remove_hooks(HookOwner owner) {
    if (hooks_.load(std::memory_order_acquire) == nullptr) return false;
    auto next = copy_tables();
    bool removed = detail::remove_owner(next->set, owner);
    removed |= detail::remove_owner(next->get, owner);
    if (!removed) return false;
    publish(std::move(next));
    return true;
}

void Field::on_set(ServiceObject& self, const Value& old_value, Value& new_value) {
    const FieldHookTables* tables = hooks_.load(std::memory_order_acquire);
    if (tables == nullptr) [[likely]] return;
    EpochDomain::ReadGuard guard;
    tables = hooks_.load(std::memory_order_seq_cst);
    if (tables == nullptr) return;
    for (const auto& slot : tables->set) slot.fn(self, decl_, old_value, new_value);
}

void Field::on_get(ServiceObject& self, Value& value) {
    const FieldHookTables* tables = hooks_.load(std::memory_order_acquire);
    if (tables == nullptr) [[likely]] return;
    EpochDomain::ReadGuard guard;
    tables = hooks_.load(std::memory_order_seq_cst);
    if (tables == nullptr) return;
    for (const auto& slot : tables->get) slot.fn(self, decl_, value);
}

// ------------------------------------------------------------ TypeInfo ----

TypeInfo::Builder& TypeInfo::Builder::extends(std::shared_ptr<TypeInfo> parent) {
    parent_ = std::move(parent);
    return *this;
}

TypeInfo::Builder& TypeInfo::Builder::method(std::string name, TypeKind returns,
                                             std::vector<ParamSpec> params,
                                             MethodHandler handler, bool varargs) {
    MethodDecl decl{std::move(name), returns, std::move(params), varargs};
    methods_.push_back(std::make_unique<Method>(std::move(decl), std::move(handler)));
    return *this;
}

TypeInfo::Builder& TypeInfo::Builder::field(std::string name, TypeKind type, Value initial) {
    fields_.push_back(Field{FieldDecl{std::move(name), type, std::move(initial)}});
    return *this;
}

std::shared_ptr<TypeInfo> TypeInfo::Builder::build() {
    auto type = std::shared_ptr<TypeInfo>(new TypeInfo());
    type->name_ = std::move(name_);
    type->parent_ = parent_;

    if (parent_) {
        // Copy-down inheritance: inherited members come first (stable field
        // layout for tooling), own declarations override by name.
        auto declares = [](const auto& owned, std::string_view member) {
            for (const auto& m : owned) {
                if constexpr (requires { m->decl(); }) {
                    if (m->decl().name == member) return true;
                } else {
                    if (m.decl().name == member) return true;
                }
            }
            return false;
        };
        for (const auto& parent_method : parent_->methods_) {
            if (!declares(methods_, parent_method->decl().name)) {
                type->methods_.push_back(parent_method->clone_unwoven());
            }
        }
        for (const Field& parent_field : parent_->fields_) {
            if (!declares(fields_, parent_field.decl().name)) {
                type->fields_.push_back(Field{parent_field.decl()});
            }
        }
    }
    for (auto& m : methods_) type->methods_.push_back(std::move(m));
    for (auto& f : fields_) type->fields_.push_back(std::move(f));
    for (std::size_t i = 0; i < type->methods_.size(); ++i) {
        const auto& decl = type->methods_[i]->decl();
        if (!type->method_index_.emplace(decl.name, i).second) {
            throw TypeError("duplicate method '" + decl.name + "' in type '" + type->name_ + "'");
        }
    }
    for (std::size_t i = 0; i < type->fields_.size(); ++i) {
        const auto& decl = type->fields_[i].decl();
        if (!type->field_index_.emplace(decl.name, i).second) {
            throw TypeError("duplicate field '" + decl.name + "' in type '" + type->name_ + "'");
        }
    }
    return type;
}

bool TypeInfo::is_a(std::string_view ancestor_name) const {
    for (const TypeInfo* t = this; t != nullptr; t = t->parent_.get()) {
        if (t->name_ == ancestor_name) return true;
    }
    return false;
}

Method* TypeInfo::method(std::string_view name) {
    auto it = method_index_.find(std::string(name));
    return it == method_index_.end() ? nullptr : methods_[it->second].get();
}

const Method* TypeInfo::method(std::string_view name) const {
    auto it = method_index_.find(std::string(name));
    return it == method_index_.end() ? nullptr : methods_[it->second].get();
}

Field* TypeInfo::field(std::string_view name) {
    auto it = field_index_.find(std::string(name));
    return it == field_index_.end() ? nullptr : &fields_[it->second];
}

const Field* TypeInfo::field(std::string_view name) const {
    auto it = field_index_.find(std::string(name));
    return it == field_index_.end() ? nullptr : &fields_[it->second];
}

std::size_t TypeInfo::field_index(std::string_view name) const {
    auto it = field_index_.find(std::string(name));
    return it == field_index_.end() ? SIZE_MAX : it->second;
}

std::vector<Method*> TypeInfo::methods() {
    std::vector<Method*> out;
    out.reserve(methods_.size());
    for (auto& m : methods_) out.push_back(m.get());
    return out;
}

}  // namespace pmp::rt
