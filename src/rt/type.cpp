#include "rt/type.h"

#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "rt/object.h"

namespace pmp::rt {

namespace {
// Join-point hit counters on the dispatch hot path. Resolved once; the
// references stay valid for the process lifetime (pinned registry slots).
struct DispatchMetrics {
    obs::Counter& unwoven = obs::Registry::global().counter("rt.dispatch.unwoven");
    obs::Counter& advised = obs::Registry::global().counter("rt.dispatch.advised");
};

DispatchMetrics& dispatch_metrics() {
    static DispatchMetrics m;
    return m;
}
}  // namespace

const char* type_kind_name(TypeKind k) {
    switch (k) {
        case TypeKind::kAny: return "any";
        case TypeKind::kVoid: return "void";
        case TypeKind::kBool: return "bool";
        case TypeKind::kInt: return "int";
        case TypeKind::kReal: return "real";
        case TypeKind::kStr: return "str";
        case TypeKind::kBlob: return "blob";
        case TypeKind::kList: return "list";
        case TypeKind::kDict: return "dict";
    }
    return "?";
}

std::optional<TypeKind> parse_type_kind(std::string_view name) {
    if (name == "any") return TypeKind::kAny;
    if (name == "void") return TypeKind::kVoid;
    if (name == "bool") return TypeKind::kBool;
    if (name == "int") return TypeKind::kInt;
    if (name == "real") return TypeKind::kReal;
    if (name == "str") return TypeKind::kStr;
    if (name == "blob" || name == "bytes") return TypeKind::kBlob;
    if (name == "list") return TypeKind::kList;
    if (name == "dict") return TypeKind::kDict;
    return std::nullopt;
}

bool value_matches(TypeKind kind, const Value& v) {
    switch (kind) {
        case TypeKind::kAny: return true;
        case TypeKind::kVoid: return v.is_null();
        case TypeKind::kBool: return v.is_bool();
        case TypeKind::kInt: return v.is_int();
        case TypeKind::kReal: return v.is_number();
        case TypeKind::kStr: return v.is_str();
        case TypeKind::kBlob: return v.is_blob();
        case TypeKind::kList: return v.is_list();
        case TypeKind::kDict: return v.is_dict();
    }
    return false;
}

std::string MethodDecl::signature(std::string_view type_name) const {
    std::ostringstream os;
    os << type_kind_name(returns) << ' ' << type_name << '.' << name << '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i) os << ", ";
        os << type_kind_name(params[i].type);
    }
    if (varargs) {
        if (!params.empty()) os << ", ";
        os << "..";
    }
    os << ')';
    return os.str();
}

// -------------------------------------------------------------- Method ----

void Method::validate(const List& args) const {
    if (decl_.varargs ? args.size() < decl_.params.size()
                      : args.size() != decl_.params.size()) {
        throw TypeError("method '" + decl_.name + "' expects " +
                        std::to_string(decl_.params.size()) +
                        (decl_.varargs ? "+ args, got " : " args, got ") +
                        std::to_string(args.size()));
    }
    for (std::size_t i = 0; i < decl_.params.size(); ++i) {
        if (!value_matches(decl_.params[i].type, args[i])) {
            throw TypeError("method '" + decl_.name + "' parameter '" + decl_.params[i].name +
                            "' expects " + type_kind_name(decl_.params[i].type) + ", got " +
                            Value::kind_name(args[i].kind()));
        }
    }
}

Value Method::invoke(ServiceObject& self, List args) {
    validate(args);
    // The minimal hook. When the method carries no advice this is the whole
    // cost of carrying the adaptation platform: one well-predicted branch
    // (plus one more for the join-point counter).
    if (!armed_) [[likely]] {
        dispatch_metrics().unwoven.inc();
        return handler_(self, args);
    }
    dispatch_metrics().advised.inc();
    return invoke_hooked(self, args);
}

Value Method::invoke_unhooked(ServiceObject& self, List args) {
    validate(args);
    return handler_(self, args);
}

Value Method::invoke_no_obs(ServiceObject& self, List args) {
    validate(args);
    if (!armed_) [[likely]] {
        return handler_(self, args);
    }
    return invoke_hooked(self, args);
}

Value Method::invoke_debugger_style(ServiceObject& self, List args) {
    validate(args);
    return invoke_hooked(self, args);  // no armed_ short-circuit
}

Value Method::invoke_hooked(ServiceObject& self, List& args) {
    CallFrame frame{self, *this, args, Value{}, Dict{}};
    frame.result = run_advice_chain(0, frame, self, args);
    return frame.result;
}

Value Method::run_advice_chain(std::size_t index, CallFrame& frame, ServiceObject& self,
                               List& args) {
    if (index == around_hooks_.size()) {
        // The innermost stage: entry advice, the original handler, exit
        // advice; error advice fires if any of those throw.
        try {
            for (auto& slot : entry_hooks_) slot.fn(frame);
            frame.result = handler_(self, args);
            for (auto& slot : exit_hooks_) slot.fn(frame);
        } catch (...) {
            auto error = std::current_exception();
            for (auto& slot : error_hooks_) slot.fn(frame, error);
            throw;
        }
        return frame.result;
    }

    // Around advice at `index` wraps everything deeper in the table. Its
    // proceed() continuation re-enters this function at index + 1, so the
    // chain lives in the call stack instead of a per-dispatch tower of
    // heap-allocated closures. The lambda captures one pointer to a
    // stack-local context, which std::function keeps in its small-object
    // buffer — dispatch stays allocation-free however deep the advice
    // stack. The continuation is only valid during the hook call (as
    // before: proceed must not be stashed past the join point).
    struct Continuation {
        Method* method;
        CallFrame* frame;
        ServiceObject* self;
        List* args;
        std::size_t next_index;
    } cont{this, &frame, &self, &args, index + 1};
    Continuation* ctx = &cont;
    const std::function<Value()> proceed = [ctx]() -> Value {
        return ctx->method->run_advice_chain(ctx->next_index, *ctx->frame, *ctx->self,
                                             *ctx->args);
    };
    return around_hooks_[index].fn(frame, proceed);
}

void Method::refresh_armed() {
    armed_ = !(entry_hooks_.empty() && exit_hooks_.empty() && error_hooks_.empty() &&
               around_hooks_.empty());
}

void Method::add_entry_hook(HookOwner owner, int priority, EntryHook fn) {
    detail::insert_by_priority(entry_hooks_, {owner, priority, std::move(fn)});
    refresh_armed();
}

void Method::add_exit_hook(HookOwner owner, int priority, ExitHook fn) {
    detail::insert_by_priority(exit_hooks_, {owner, priority, std::move(fn)});
    refresh_armed();
}

void Method::add_error_hook(HookOwner owner, int priority, ErrorHook fn) {
    detail::insert_by_priority(error_hooks_, {owner, priority, std::move(fn)});
    refresh_armed();
}

void Method::add_around_hook(HookOwner owner, int priority, AroundHook fn) {
    detail::insert_by_priority(around_hooks_, {owner, priority, std::move(fn)});
    refresh_armed();
}

bool Method::remove_hooks(HookOwner owner) {
    bool removed = detail::remove_owner(entry_hooks_, owner);
    removed |= detail::remove_owner(exit_hooks_, owner);
    removed |= detail::remove_owner(error_hooks_, owner);
    removed |= detail::remove_owner(around_hooks_, owner);
    refresh_armed();
    return removed;
}

// --------------------------------------------------------------- Field ----

void Field::add_set_hook(HookOwner owner, int priority, FieldSetHook fn) {
    detail::insert_by_priority(set_hooks_, {owner, priority, std::move(fn)});
    armed_ = true;
}

void Field::add_get_hook(HookOwner owner, int priority, FieldGetHook fn) {
    detail::insert_by_priority(get_hooks_, {owner, priority, std::move(fn)});
    armed_ = true;
}

bool Field::remove_hooks(HookOwner owner) {
    bool removed = detail::remove_owner(set_hooks_, owner);
    removed |= detail::remove_owner(get_hooks_, owner);
    armed_ = !(set_hooks_.empty() && get_hooks_.empty());
    return removed;
}

void Field::on_set(ServiceObject& self, const Value& old_value, Value& new_value) {
    for (auto& slot : set_hooks_) slot.fn(self, decl_, old_value, new_value);
}

void Field::on_get(ServiceObject& self, Value& value) {
    for (auto& slot : get_hooks_) slot.fn(self, decl_, value);
}

// ------------------------------------------------------------ TypeInfo ----

TypeInfo::Builder& TypeInfo::Builder::extends(std::shared_ptr<TypeInfo> parent) {
    parent_ = std::move(parent);
    return *this;
}

TypeInfo::Builder& TypeInfo::Builder::method(std::string name, TypeKind returns,
                                             std::vector<ParamSpec> params,
                                             MethodHandler handler, bool varargs) {
    MethodDecl decl{std::move(name), returns, std::move(params), varargs};
    methods_.push_back(std::make_unique<Method>(std::move(decl), std::move(handler)));
    return *this;
}

TypeInfo::Builder& TypeInfo::Builder::field(std::string name, TypeKind type, Value initial) {
    fields_.push_back(Field{FieldDecl{std::move(name), type, std::move(initial)}});
    return *this;
}

std::shared_ptr<TypeInfo> TypeInfo::Builder::build() {
    auto type = std::shared_ptr<TypeInfo>(new TypeInfo());
    type->name_ = std::move(name_);
    type->parent_ = parent_;

    if (parent_) {
        // Copy-down inheritance: inherited members come first (stable field
        // layout for tooling), own declarations override by name.
        auto declares = [](const auto& owned, std::string_view member) {
            for (const auto& m : owned) {
                if constexpr (requires { m->decl(); }) {
                    if (m->decl().name == member) return true;
                } else {
                    if (m.decl().name == member) return true;
                }
            }
            return false;
        };
        for (const auto& parent_method : parent_->methods_) {
            if (!declares(methods_, parent_method->decl().name)) {
                type->methods_.push_back(parent_method->clone_unwoven());
            }
        }
        for (const Field& parent_field : parent_->fields_) {
            if (!declares(fields_, parent_field.decl().name)) {
                type->fields_.push_back(Field{parent_field.decl()});
            }
        }
    }
    for (auto& m : methods_) type->methods_.push_back(std::move(m));
    for (auto& f : fields_) type->fields_.push_back(std::move(f));
    for (std::size_t i = 0; i < type->methods_.size(); ++i) {
        const auto& decl = type->methods_[i]->decl();
        if (!type->method_index_.emplace(decl.name, i).second) {
            throw TypeError("duplicate method '" + decl.name + "' in type '" + type->name_ + "'");
        }
    }
    for (std::size_t i = 0; i < type->fields_.size(); ++i) {
        const auto& decl = type->fields_[i].decl();
        if (!type->field_index_.emplace(decl.name, i).second) {
            throw TypeError("duplicate field '" + decl.name + "' in type '" + type->name_ + "'");
        }
    }
    return type;
}

bool TypeInfo::is_a(std::string_view ancestor_name) const {
    for (const TypeInfo* t = this; t != nullptr; t = t->parent_.get()) {
        if (t->name_ == ancestor_name) return true;
    }
    return false;
}

Method* TypeInfo::method(std::string_view name) {
    auto it = method_index_.find(std::string(name));
    return it == method_index_.end() ? nullptr : methods_[it->second].get();
}

const Method* TypeInfo::method(std::string_view name) const {
    auto it = method_index_.find(std::string(name));
    return it == method_index_.end() ? nullptr : methods_[it->second].get();
}

Field* TypeInfo::field(std::string_view name) {
    auto it = field_index_.find(std::string(name));
    return it == field_index_.end() ? nullptr : &fields_[it->second];
}

const Field* TypeInfo::field(std::string_view name) const {
    auto it = field_index_.find(std::string(name));
    return it == field_index_.end() ? nullptr : &fields_[it->second];
}

std::size_t TypeInfo::field_index(std::string_view name) const {
    auto it = field_index_.find(std::string(name));
    return it == field_index_.end() ? SIZE_MAX : it->second;
}

std::vector<Method*> TypeInfo::methods() {
    std::vector<Method*> out;
    out.reserve(methods_.size());
    for (auto& m : methods_) out.push_back(m.get());
    return out;
}

}  // namespace pmp::rt
