#include "rt/value.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/error.h"

namespace pmp::rt {

// ---------------------------------------------------------------- Dict ----

Dict::Dict(std::initializer_list<Entry> entries) {
    for (const auto& e : entries) set(e.first, e.second);
}

std::vector<Dict::Entry>::iterator Dict::lower_bound(const std::string& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, const std::string& k) { return e.first < k; });
}

std::vector<Dict::Entry>::const_iterator Dict::lower_bound(const std::string& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, const std::string& k) { return e.first < k; });
}

void Dict::set(const std::string& key, Value value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
        it->second = std::move(value);
    } else {
        entries_.insert(it, Entry{key, std::move(value)});
    }
}

const Value* Dict::find(const std::string& key) const {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
}

const Value& Dict::at(const std::string& key) const {
    if (const Value* v = find(key)) return *v;
    throw TypeError("dict has no key '" + key + "'");
}

bool Dict::erase(const std::string& key) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
        entries_.erase(it);
        return true;
    }
    return false;
}

bool Dict::operator==(const Dict& other) const { return entries_ == other.entries_; }

// --------------------------------------------------------------- Value ----

const char* Value::kind_name(Kind k) {
    switch (k) {
        case Kind::kNull: return "null";
        case Kind::kBool: return "bool";
        case Kind::kInt: return "int";
        case Kind::kReal: return "real";
        case Kind::kStr: return "str";
        case Kind::kBlob: return "blob";
        case Kind::kList: return "list";
        case Kind::kDict: return "dict";
    }
    return "?";
}

namespace {
[[noreturn]] void kind_error(Value::Kind want, Value::Kind got) {
    throw TypeError(std::string("expected ") + Value::kind_name(want) + ", got " +
                    Value::kind_name(got));
}
}  // namespace

bool Value::as_bool() const {
    if (auto* p = std::get_if<bool>(&v_)) return *p;
    kind_error(Kind::kBool, kind());
}

std::int64_t Value::as_int() const {
    if (auto* p = std::get_if<std::int64_t>(&v_)) return *p;
    kind_error(Kind::kInt, kind());
}

double Value::as_real() const {
    if (auto* p = std::get_if<double>(&v_)) return *p;
    if (auto* p = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*p);
    kind_error(Kind::kReal, kind());
}

const std::string& Value::as_str() const {
    if (auto* p = std::get_if<std::string>(&v_)) return *p;
    kind_error(Kind::kStr, kind());
}

const Bytes& Value::as_blob() const {
    if (auto* p = std::get_if<Bytes>(&v_)) return *p;
    kind_error(Kind::kBlob, kind());
}

const List& Value::as_list() const {
    if (auto* p = std::get_if<List>(&v_)) return *p;
    kind_error(Kind::kList, kind());
}

List& Value::as_list() {
    if (auto* p = std::get_if<List>(&v_)) return *p;
    kind_error(Kind::kList, kind());
}

const Dict& Value::as_dict() const {
    if (auto* p = std::get_if<Dict>(&v_)) return *p;
    kind_error(Kind::kDict, kind());
}

Dict& Value::as_dict() {
    if (auto* p = std::get_if<Dict>(&v_)) return *p;
    kind_error(Kind::kDict, kind());
}

bool Value::truthy() const {
    switch (kind()) {
        case Kind::kNull: return false;
        case Kind::kBool: return std::get<bool>(v_);
        case Kind::kInt: return std::get<std::int64_t>(v_) != 0;
        case Kind::kReal: return std::get<double>(v_) != 0.0;
        case Kind::kStr: return !std::get<std::string>(v_).empty();
        case Kind::kBlob: return !std::get<Bytes>(v_).empty();
        case Kind::kList: return !std::get<List>(v_).empty();
        case Kind::kDict: return !std::get<Dict>(v_).empty();
    }
    return false;
}

namespace {
void quote_into(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
    }
    os << '"';
}
}  // namespace

std::string Value::to_string() const {
    std::ostringstream os;
    switch (kind()) {
        case Kind::kNull: os << "null"; break;
        case Kind::kBool: os << (std::get<bool>(v_) ? "true" : "false"); break;
        case Kind::kInt: os << std::get<std::int64_t>(v_); break;
        case Kind::kReal: os << std::get<double>(v_); break;
        case Kind::kStr: quote_into(os, std::get<std::string>(v_)); break;
        case Kind::kBlob:
            os << "blob(" << hex_encode(std::span<const std::uint8_t>(std::get<Bytes>(v_)))
               << ")";
            break;
        case Kind::kList: {
            os << '[';
            const auto& list = std::get<List>(v_);
            for (std::size_t i = 0; i < list.size(); ++i) {
                if (i) os << ", ";
                os << list[i].to_string();
            }
            os << ']';
            break;
        }
        case Kind::kDict: {
            os << '{';
            bool first = true;
            for (const auto& [k, v] : std::get<Dict>(v_)) {
                if (!first) os << ", ";
                first = false;
                quote_into(os, k);
                os << ": " << v.to_string();
            }
            os << '}';
            break;
        }
    }
    return os.str();
}

void Value::encode(Bytes& out) const {
    out.push_back(static_cast<std::uint8_t>(kind()));
    switch (kind()) {
        case Kind::kNull: break;
        case Kind::kBool: out.push_back(std::get<bool>(v_) ? 1 : 0); break;
        case Kind::kInt:
            append_u64(out, static_cast<std::uint64_t>(std::get<std::int64_t>(v_)));
            break;
        case Kind::kReal: {
            double d = std::get<double>(v_);
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(d));
            std::memcpy(&bits, &d, sizeof(bits));
            append_u64(out, bits);
            break;
        }
        case Kind::kStr: {
            const auto& s = std::get<std::string>(v_);
            append_u32(out, static_cast<std::uint32_t>(s.size()));
            append(out, as_bytes(s));
            break;
        }
        case Kind::kBlob: {
            const auto& b = std::get<Bytes>(v_);
            append_u32(out, static_cast<std::uint32_t>(b.size()));
            append(out, std::span<const std::uint8_t>(b));
            break;
        }
        case Kind::kList: {
            const auto& list = std::get<List>(v_);
            append_u32(out, static_cast<std::uint32_t>(list.size()));
            for (const auto& v : list) v.encode(out);
            break;
        }
        case Kind::kDict: {
            const auto& dict = std::get<Dict>(v_);
            append_u32(out, static_cast<std::uint32_t>(dict.size()));
            for (const auto& [k, v] : dict) {
                append_u32(out, static_cast<std::uint32_t>(k.size()));
                append(out, as_bytes(k));
                v.encode(out);
            }
            break;
        }
    }
}

Bytes Value::encode() const {
    Bytes out;
    encode(out);
    return out;
}

Value Value::decode(ByteReader& reader) {
    auto tag = reader.read(1)[0];
    switch (static_cast<Kind>(tag)) {
        case Kind::kNull: return Value{};
        case Kind::kBool: return Value{reader.read(1)[0] != 0};
        case Kind::kInt: return Value{static_cast<std::int64_t>(reader.read_u64())};
        case Kind::kReal: {
            std::uint64_t bits = reader.read_u64();
            double d;
            std::memcpy(&d, &bits, sizeof(d));
            return Value{d};
        }
        case Kind::kStr: {
            std::uint32_t n = reader.read_u32();
            return Value{reader.read_string(n)};
        }
        case Kind::kBlob: {
            std::uint32_t n = reader.read_u32();
            auto span = reader.read(n);
            return Value{Bytes(span.begin(), span.end())};
        }
        case Kind::kList: {
            std::uint32_t n = reader.read_u32();
            // A hostile length prefix must not drive allocation: every
            // element needs at least its one-byte tag, so n can never
            // exceed the bytes actually present.
            if (n > reader.remaining()) {
                throw ParseError("list length exceeds available bytes", 0, 0);
            }
            List list;
            list.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) list.push_back(decode(reader));
            return Value{std::move(list)};
        }
        case Kind::kDict: {
            std::uint32_t n = reader.read_u32();
            if (n > reader.remaining()) {
                throw ParseError("dict size exceeds available bytes", 0, 0);
            }
            Dict dict;
            for (std::uint32_t i = 0; i < n; ++i) {
                std::uint32_t klen = reader.read_u32();
                std::string key = reader.read_string(klen);
                dict.set(key, decode(reader));
            }
            return Value{std::move(dict)};
        }
    }
    throw ParseError("unknown value tag " + std::to_string(tag), 0, 0);
}

Value Value::decode(std::span<const std::uint8_t> data) {
    ByteReader reader(data);
    return decode(reader);
}

}  // namespace pmp::rt
