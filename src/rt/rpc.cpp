#include "rt/rpc.h"

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmp::rt {

namespace {
constexpr const char* kCallKind = "rpc.call";
constexpr const char* kReplyKind = "rpc.reply";
// Control-plane variants bypass wire filters (see exempt_from_filters).
constexpr const char* kCtlCallKind = "rpc.call.ctl";
constexpr const char* kCtlReplyKind = "rpc.reply.ctl";

// Pinned registry slots, resolved once per process.
struct RpcMetrics {
    obs::Counter& calls_sent = obs::Registry::global().counter("rpc.calls_sent");
    obs::Counter& calls_received = obs::Registry::global().counter("rpc.calls_received");
    obs::Counter& replies_received = obs::Registry::global().counter("rpc.replies_received");
    obs::Counter& errors_returned = obs::Registry::global().counter("rpc.errors_returned");
    obs::Counter& timeouts = obs::Registry::global().counter("rpc.timeouts");
    obs::Counter& unreachable = obs::Registry::global().counter("rpc.unreachable");
    obs::Counter& garbled = obs::Registry::global().counter("rpc.garbled");
    obs::Counter& retries = obs::Registry::global().counter("rpc.retries");
    obs::Counter& dup_calls = obs::Registry::global().counter("rpc.dup_calls");
    obs::Counter& shed = obs::Registry::global().counter("rpc.shed");
    obs::Counter& overload_retries = obs::Registry::global().counter("rpc.overload_retries");
    obs::Counter& reply_cache_evictions =
        obs::Registry::global().counter("rpc.reply_cache_evictions");
    obs::Histogram& roundtrip_ms = obs::Registry::global().histogram(
        "rpc.roundtrip_ms", {}, obs::Histogram::latency_ms_bounds());
};

RpcMetrics& metrics() {
    static RpcMetrics m;
    return m;
}
}  // namespace

RpcEndpoint::RpcEndpoint(net::MessageRouter& router, Runtime& runtime)
    : router_(router),
      runtime_(runtime),
      reply_cache_size_g_("rpc.reply_cache_size", router.network().name_of(router.self())) {
    router_.route(kCallKind, [this](const net::Message& m) { on_call(m, false); });
    router_.route(kReplyKind, [this](const net::Message& m) { on_reply(m, false); });
    router_.route(kCtlCallKind, [this](const net::Message& m) { on_call(m, true); });
    router_.route(kCtlReplyKind, [this](const net::Message& m) { on_reply(m, true); });
}

RpcEndpoint::~RpcEndpoint() {
    *alive_ = false;
    for (auto& [id, p] : pending_) {
        router_.simulator().cancel(p.timeout_timer);
        obs::TraceBuffer::global().end_span(p.span, {{"outcome", "abandoned"}});
    }
}

void RpcEndpoint::exempt_from_filters(const std::string& prefix) {
    exempt_prefixes_.push_back(prefix);
}

bool RpcEndpoint::is_exempt(const std::string& object) const {
    for (const std::string& prefix : exempt_prefixes_) {
        if (object.size() >= prefix.size() &&
            object.compare(0, prefix.size(), prefix) == 0) {
            return true;
        }
    }
    return false;
}

void RpcEndpoint::add_wire_filter(HookOwner owner, int priority, WireFilter outbound,
                                  WireFilter inbound) {
    FilterSlot slot{owner, priority, std::move(outbound), std::move(inbound)};
    auto it = wire_filters_.begin();
    while (it != wire_filters_.end() && it->priority <= slot.priority) ++it;
    wire_filters_.insert(it, std::move(slot));
}

bool RpcEndpoint::remove_wire_filters(HookOwner owner) {
    auto before = wire_filters_.size();
    std::erase_if(wire_filters_, [owner](const FilterSlot& s) { return s.owner == owner; });
    return wire_filters_.size() != before;
}

Bytes RpcEndpoint::apply_outbound(Bytes payload) const {
    for (const FilterSlot& slot : wire_filters_) {
        payload = slot.outbound(std::move(payload));
    }
    return payload;
}

Bytes RpcEndpoint::apply_inbound(Bytes payload) const {
    for (auto it = wire_filters_.rbegin(); it != wire_filters_.rend(); ++it) {
        payload = it->inbound(std::move(payload));
    }
    return payload;
}

void RpcEndpoint::export_object(const std::string& instance_name) {
    exported_.insert(instance_name);
}

void RpcEndpoint::unexport_object(const std::string& instance_name) {
    exported_.erase(instance_name);
}

bool RpcEndpoint::exported(const std::string& instance_name) const {
    return exported_.contains(instance_name);
}

void RpcEndpoint::call_once(NodeId target, const std::string& object,
                            const std::string& method, List args, Duration timeout,
                            AttemptHandler on_done) {
    std::uint64_t call_id = ++next_call_;
    metrics().calls_sent.inc();
    auto& tracebuf = obs::TraceBuffer::global();
    std::uint64_t span =
        tracebuf.begin_span("rt.rpc", "rpc.call", {{"obj", object}, {"method", method}});
    obs::TraceContext call_ctx = tracebuf.context_of(span);
    Dict request{{"id", Value{static_cast<std::int64_t>(call_id)}},
                 {"obj", Value{object}},
                 {"method", Value{method}},
                 {"args", Value{std::move(args)}}};
    bool control = is_exempt(object);
    Bytes payload = Value{std::move(request)}.encode();
    if (!control) payload = apply_outbound(std::move(payload));
    bool sent;
    {
        // The frame on the air carries the call span as its parent: the
        // remote dispatch (and everything it causes) joins this trace.
        obs::TraceBuffer::ContextScope scope(tracebuf, call_ctx);
        sent = router_.send(target, control ? kCtlCallKind : kCallKind, std::move(payload));
    }

    auto timer = router_.simulator().schedule_after(timeout, [this, call_id]() {
        auto it = pending_.find(call_id);
        if (it == pending_.end()) return;
        auto handler = std::move(it->second.handler);
        obs::TraceContext ctx = it->second.ctx;
        metrics().timeouts.inc();
        obs::TraceBuffer::global().end_span(
            it->second.span, {{"outcome", "timeout"}, {"cause", "transport"}});
        pending_.erase(it);
        obs::TraceBuffer::ContextScope scope(obs::TraceBuffer::global(), ctx);
        handler(Value{}, std::make_exception_ptr(RemoteError("rpc call timed out")),
                /*transport=*/true);
    });
    pending_.emplace(call_id, Pending{std::move(on_done), timer, router_.simulator().now(),
                                      span, call_ctx});

    if (!sent) {
        // Out of radio range at send time: fail fast instead of waiting out
        // the timeout.
        router_.simulator().schedule_after(Duration{0}, [this, call_id,
                                                         alive = alive_]() {
            if (!*alive) return;
            auto it = pending_.find(call_id);
            if (it == pending_.end()) return;
            auto pending = std::move(it->second);
            pending_.erase(it);
            router_.simulator().cancel(pending.timeout_timer);
            metrics().unreachable.inc();
            obs::TraceBuffer::global().end_span(
                pending.span, {{"outcome", "unreachable"}, {"cause", "transport"}});
            obs::TraceBuffer::ContextScope scope(obs::TraceBuffer::global(), pending.ctx);
            pending.handler(Value{},
                            std::make_exception_ptr(RemoteError("rpc target unreachable")),
                            /*transport=*/true);
        });
    }
}

void RpcEndpoint::call_async(NodeId target, const std::string& object,
                             const std::string& method, List args, ReplyHandler on_reply,
                             Duration timeout) {
    call_async(target, object, method, std::move(args), CallOptions{.timeout = timeout},
               std::move(on_reply));
}

void RpcEndpoint::call_async(NodeId target, const std::string& object,
                             const std::string& method, List args, CallOptions options,
                             ReplyHandler on_reply) {
    call_async(target, object, method, std::move(args), options,
               RichReplyHandler([on_reply = std::move(on_reply)](
                                    Value result, std::exception_ptr error, bool) {
                   on_reply(std::move(result), error);
               }));
}

void RpcEndpoint::call_async(NodeId target, const std::string& object,
                             const std::string& method, List args, CallOptions options,
                             RichReplyHandler on_reply) {
    // Retry driver: each transport failure re-issues the call (fresh call
    // id, same payload) after an exponentially growing delay, until the
    // budget is spent. Remote answers — results *and* error replies — end
    // the call immediately, with one exception: an Overloaded reply is the
    // callee asking to be called back later, so it is retried too, no
    // earlier than its retry-after hint.
    struct Attempt {
        RpcEndpoint* self;
        std::shared_ptr<bool> alive;  ///< self is dangling once this clears
        NodeId target;
        std::string object;
        std::string method;
        List args;
        CallOptions options;
        RichReplyHandler on_reply;
        int tries_left;
        Duration next_backoff;
        /// Where this call chain sits causally. Captured once at
        /// call_async and restored around every attempt, so a retry fired
        /// from a backoff timer attaches to the *same* trace as attempt
        /// one instead of rooting a fresh one.
        obs::TraceContext ctx;

        void fire(const std::shared_ptr<Attempt>& state) {
            obs::TraceBuffer::ContextScope scope(obs::TraceBuffer::global(), ctx);
            self->call_once(
                target, object, method, args, options.timeout,
                [state](Value result, std::exception_ptr error, bool transport) {
                    if (error && state->tries_left > 0) {
                        bool retryable = transport;
                        Duration delay = state->next_backoff;
                        if (!retryable) {
                            try {
                                std::rethrow_exception(error);
                            } catch (const Overloaded& o) {
                                retryable = true;
                                metrics().overload_retries.inc();
                                if (o.retry_after() > delay) delay = o.retry_after();
                            } catch (...) {
                            }
                        }
                        if (retryable) {
                            --state->tries_left;
                            metrics().retries.inc();
                            state->next_backoff *= 2;
                            state->self->router_.simulator().schedule_after(
                                delay, [state]() {
                                    if (!*state->alive) return;
                                    state->fire(state);
                                });
                            return;
                        }
                    }
                    state->on_reply(std::move(result), error, transport);
                });
        }
    };
    obs::TraceContext ctx = obs::TraceBuffer::global().current();
    if (!ctx.valid()) ctx = obs::TraceBuffer::global().new_root();
    auto state = std::make_shared<Attempt>(
        Attempt{this, alive_, target, object, method, std::move(args), options,
                std::move(on_reply), options.retries, options.retry_backoff, ctx});
    state->fire(state);
}

Value RpcEndpoint::call_sync(NodeId target, const std::string& object,
                             const std::string& method, List args, Duration timeout) {
    bool done = false;
    Value out;
    std::exception_ptr error;
    call_async(
        target, object, method, std::move(args),
        [&](Value result, std::exception_ptr err) {
            done = true;
            out = std::move(result);
            error = err;
        },
        timeout);
    while (!done && router_.simulator().step()) {
    }
    if (!done) throw RemoteError("rpc call never completed (simulation drained)");
    if (error) std::rethrow_exception(error);
    return out;
}

Bytes RpcEndpoint::encode_error(std::uint64_t call_id, const std::string& etype,
                                const std::string& message, Duration retry_after) {
    Dict reply{{"id", Value{static_cast<std::int64_t>(call_id)}},
               {"ok", Value{false}},
               {"etype", Value{etype}},
               {"emsg", Value{message}}};
    if (retry_after.count() > 0) {
        // Milliseconds on the wire; sub-ms hints round up so "soon" never
        // degenerates to "immediately".
        auto ms = (retry_after.count() + 999'999) / 1'000'000;
        reply.set("retry_ms", Value{static_cast<std::int64_t>(ms)});
    }
    return Value{std::move(reply)}.encode();
}

net::AdmitClass RpcEndpoint::classify(const std::string& object,
                                      const std::string& method) const {
    // The exempt-prefix list *is* the node's control plane (adaptation
    // service, registrar, discovery listeners, tuple space) — with one
    // exception: extension installs ride the control channel but carry
    // whole signed packages and a compile+weave, so they rank below the
    // keep-alives that hold existing leases up.
    if (object == "adaptation" && method == "install") return net::AdmitClass::kInstall;
    // Catch-up streams ship whole policy images: recovery work, same rank
    // as installs — a restart storm must not crowd out the keep-alives
    // holding healthy nodes' leases up.
    if (object == "midas.catchup") return net::AdmitClass::kInstall;
    if (is_exempt(object)) return net::AdmitClass::kControl;
    return net::AdmitClass::kApp;
}

void RpcEndpoint::on_call(const net::Message& msg, bool control) {
    Value request;
    try {
        Bytes plain = control ? msg.payload : apply_inbound(msg.payload);
        request = Value::decode(std::span<const std::uint8_t>(plain));
    } catch (const Error& e) {
        // Unintelligible request — e.g. the peer encrypts and we do not
        // (only one end adapted). Drop it; the caller times out.
        metrics().garbled.inc();
        log_warn(router_.simulator().now(), "rpc", "dropped garbled call: ", e.what());
        return;
    }
    metrics().calls_received.inc();
    const Dict& req = request.as_dict();
    auto call_id = static_cast<std::uint64_t>(req.at("id").as_int());
    const std::string& object_name = req.at("obj").as_str();
    const std::string& method = req.at("method").as_str();

    // At-most-once: a duplicated radio frame (or a retry racing its own
    // late reply) must not re-execute the method. Re-send the cached wire
    // reply verbatim instead — it costs no dispatch, so it skips admission
    // too (shedding a dup would punish the caller twice).
    ReplyCacheKey cache_key{msg.from.value, call_id};
    if (auto cached = reply_cache_.find(cache_key); cached != reply_cache_.end()) {
        metrics().dup_calls.inc();
        router_.send(msg.from, control ? kCtlReplyKind : kReplyKind, cached->second);
        return;
    }
    if (inflight_.contains(cache_key)) {
        // Duplicate of a call still parked in the admission queue: drop it;
        // the original's reply is coming (or the caller's retry finds the
        // cache).
        metrics().dup_calls.inc();
        return;
    }

    // Admission: classify and offer the dispatch work to the node's gate.
    // Excess load is shed with a typed Overloaded error carrying the
    // queue's own estimate of when to come back.
    net::AdmitClass cls = classify(object_name, method);
    List args = req.at("args").as_list();
    // The ambient context (the caller's rpc.call span, installed by the
    // network delivery) must survive the admission queue: a dispatch
    // admitted now but run later still belongs to the caller's trace.
    obs::TraceContext ctx = obs::TraceBuffer::global().current();
    auto decision = router_.admission().offer(
        cls, [this, alive = alive_, ctx, from = msg.from, control, call_id, object_name,
              method, args = std::move(args)]() mutable {
            if (!*alive) return;
            obs::TraceBuffer::ContextScope scope(obs::TraceBuffer::global(), ctx);
            inflight_.erase(ReplyCacheKey{from.value, call_id});
            execute_call(from, control, call_id, object_name, method, std::move(args));
        });
    if (!decision.admitted) {
        metrics().shed.inc();
        obs::TraceBuffer::global().instant(
            "rt.rpc", "rpc.shed",
            {{"obj", object_name}, {"class", net::to_string(cls)}});
        Bytes reply = encode_error(call_id, "Overloaded",
                                   "call shed at admission (" +
                                       std::string(net::to_string(cls)) + " queue full)",
                                   decision.retry_after);
        if (!control) reply = apply_outbound(std::move(reply));
        // Deliberately not cached: a retry should get a fresh admission
        // decision, not a replay of "go away".
        router_.send(msg.from, control ? kCtlReplyKind : kReplyKind, std::move(reply));
        return;
    }
    if (decision.queued) inflight_.insert(cache_key);
}

void RpcEndpoint::execute_call(NodeId from, bool control, std::uint64_t call_id,
                               const std::string& object_name, const std::string& method,
                               List args) {
    ReplyCacheKey cache_key{from.value, call_id};
    // Callee-side half of the causal pair: rpc.call (caller) -> rpc.serve
    // (callee). Opened under the caller's ambient context, so the serve
    // span — and everything the dispatch does beneath it (verify, weave,
    // advice) — hangs off the caller's rpc.call span in one tree.
    auto& tracebuf = obs::TraceBuffer::global();
    std::uint64_t serve_span = tracebuf.begin_span(
        "rt.rpc", "rpc.serve", {{"obj", object_name}, {"method", method}});
    obs::TraceBuffer::ContextScope serve_scope(tracebuf, tracebuf.context_of(serve_span));
    const char* outcome = "ok";
    Bytes reply;
    if (control && !is_exempt(object_name)) {
        outcome = "AccessDenied";
        reply = encode_error(call_id, "AccessDenied",
                             "object '" + object_name + "' requires the data channel");
    } else if (!exported_.contains(object_name)) {
        outcome = "RemoteError";
        reply = encode_error(call_id, "RemoteError",
                             "object '" + object_name + "' is not exported");
    } else {
        auto object = runtime_.find_object(object_name);
        if (!object) {
            outcome = "RemoteError";
            reply = encode_error(call_id, "RemoteError", "object '" + object_name + "' is gone");
        } else {
            current_caller_ = from;
            struct CallerGuard {
                NodeId& slot;
                ~CallerGuard() { slot = NodeId{}; }
            } guard{current_caller_};
            try {
                Value result = object->call(method, std::move(args));
                Dict ok{{"id", Value{static_cast<std::int64_t>(call_id)}},
                        {"ok", Value{true}},
                        {"result", std::move(result)}};
                reply = Value{std::move(ok)}.encode();
            } catch (const AccessDenied& e) {
                outcome = "AccessDenied";
                reply = encode_error(call_id, "AccessDenied", e.what());
            } catch (const TypeError& e) {
                outcome = "TypeError";
                reply = encode_error(call_id, "TypeError", e.what());
            } catch (const ScriptError& e) {
                outcome = "ScriptError";
                reply = encode_error(call_id, "ScriptError", e.what());
            } catch (const Error& e) {
                outcome = "Error";
                reply = encode_error(call_id, "Error", e.what());
            } catch (const std::exception& e) {
                // Non-Error escapes (std::bad_alloc from a hostile package,
                // a std::logic_error in host code) still become a proper
                // error reply rather than unwinding into the router.
                outcome = "Error";
                reply = encode_error(call_id, "Error", e.what());
            }
        }
    }
    if (!control) reply = apply_outbound(std::move(reply));
    reply_cache_.emplace(cache_key, reply);
    reply_cache_order_.push_back(cache_key);
    if (reply_cache_order_.size() > kReplyCacheCap) {
        reply_cache_.erase(reply_cache_order_.front());
        reply_cache_order_.pop_front();
        metrics().reply_cache_evictions.inc();
    }
    reply_cache_size_g_->set(static_cast<std::int64_t>(reply_cache_.size()));
    // The reply frame is stamped while the serve span is ambient, so the
    // wire hop back to the caller stays inside the tree.
    router_.send(from, control ? kCtlReplyKind : kReplyKind, std::move(reply));
    tracebuf.end_span(serve_span, {{"outcome", outcome}});
}

void RpcEndpoint::rethrow_remote(const std::string& etype, const std::string& message,
                                 Duration retry_after) {
    if (etype == "AccessDenied") throw AccessDenied(message);
    if (etype == "TypeError") throw TypeError(message);
    if (etype == "ScriptError") throw ScriptError(message);
    if (etype == "RemoteError") throw RemoteError(message);
    if (etype == "Overloaded") throw Overloaded(message, retry_after);
    throw Error(message);
}

void RpcEndpoint::on_reply(const net::Message& msg, bool control) {
    Value reply;
    try {
        Bytes plain = control ? msg.payload : apply_inbound(msg.payload);
        reply = Value::decode(std::span<const std::uint8_t>(plain));
    } catch (const Error& e) {
        metrics().garbled.inc();
        log_warn(router_.simulator().now(), "rpc", "dropped garbled reply: ", e.what());
        return;
    }
    const Dict& rep = reply.as_dict();
    auto call_id = static_cast<std::uint64_t>(rep.at("id").as_int());
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;  // late reply after timeout: drop
    auto pending = std::move(it->second);
    pending_.erase(it);
    router_.simulator().cancel(pending.timeout_timer);

    bool ok = rep.at("ok").as_bool();
    metrics().replies_received.inc();
    if (!ok) metrics().errors_returned.inc();
    Duration rtt = router_.simulator().now() - pending.sent_at;
    metrics().roundtrip_ms.observe(static_cast<double>(rtt.count()) / 1e6);
    // Outcome attribution (satellite): ok / remote error type, with the
    // callee's retry-after hint when it shed us.
    obs::KeyValues end_kv{{"outcome", ok ? "ok" : "error"}};
    if (!ok) {
        if (const Value* etype = rep.find("etype")) end_kv.emplace_back("cause", etype->as_str());
        if (const Value* ms = rep.find("retry_ms"))
            end_kv.emplace_back("retry_ms", std::to_string(ms->as_int()));
    }
    obs::TraceBuffer::global().end_span(pending.span, std::move(end_kv));

    if (ok) {
        pending.handler(rep.at("result"), nullptr, /*transport=*/false);
    } else {
        Duration retry_after{0};
        if (const Value* ms = rep.find("retry_ms")) retry_after = milliseconds(ms->as_int());
        try {
            rethrow_remote(rep.at("etype").as_str(), rep.at("emsg").as_str(), retry_after);
        } catch (...) {
            pending.handler(Value{}, std::current_exception(), /*transport=*/false);
        }
    }
}

}  // namespace pmp::rt
