#include "rt/object.h"

#include "common/error.h"

namespace pmp::rt {

ServiceObject::ServiceObject(std::shared_ptr<TypeInfo> type, std::string instance_name)
    : type_(std::move(type)), name_(std::move(instance_name)) {
    fields_.reserve(type_->fields().size());
    for (const auto& field : type_->fields()) {
        fields_.push_back(field.decl().initial);
    }
}

Method& ServiceObject::require_method(std::string_view name) {
    Method* m = type_->method(name);
    if (!m) {
        throw TypeError("type '" + type_->name() + "' has no method '" + std::string(name) + "'");
    }
    return *m;
}

std::size_t ServiceObject::require_field(std::string_view name) const {
    std::size_t idx = type_->field_index(name);
    if (idx == SIZE_MAX) {
        throw TypeError("type '" + type_->name() + "' has no field '" + std::string(name) + "'");
    }
    return idx;
}

Value ServiceObject::call(std::string_view method, List args) {
    return require_method(method).invoke(*this, std::move(args));
}

Value ServiceObject::call_unhooked(std::string_view method, List args) {
    return require_method(method).invoke_unhooked(*this, std::move(args));
}

Value ServiceObject::get(std::string_view field) {
    std::size_t idx = require_field(field);
    Value value = fields_[idx];
    Field& meta = type_->fields()[idx];
    if (meta.woven()) {
        meta.on_get(*this, value);
    }
    return value;
}

void ServiceObject::set(std::string_view field, Value value) {
    std::size_t idx = require_field(field);
    Field& meta = type_->fields()[idx];
    if (!value_matches(meta.decl().type, value)) {
        throw TypeError("field '" + meta.decl().name + "' expects " +
                        type_kind_name(meta.decl().type) + ", got " +
                        Value::kind_name(value.kind()));
    }
    if (meta.woven()) {
        meta.on_set(*this, fields_[idx], value);
    }
    fields_[idx] = std::move(value);
}

const Value& ServiceObject::peek(std::string_view field) const {
    return fields_[require_field(field)];
}

void ServiceObject::poke(std::string_view field, Value value) {
    fields_[require_field(field)] = std::move(value);
}

}  // namespace pmp::rt
