// Alias header: the epoch-reclamation domain the runtime retires hook
// tables into lives in common/ (the simulation kernel's worker pool
// participates in it, and pmp_sim cannot depend back on pmp_rt). The
// runtime-facing name rt::EpochDomain is preserved here.
#pragma once

#include "common/epoch.h"

namespace pmp::rt {
using pmp::EpochDomain;
}  // namespace pmp::rt
