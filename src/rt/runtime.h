// Per-node runtime: the registry of service classes and live objects.
//
// One Runtime exists per mobile node / base station — the analog of that
// node's PROSE-enabled JVM. The weaver enumerates its types to resolve
// pointcuts, and subscribes to type registration so classes that appear
// after an aspect was woven still receive matching advice (as a JIT would
// instrument classes loaded later).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rt/object.h"

namespace pmp::rt {

class Runtime {
public:
    using TypeObserver = std::function<void(TypeInfo&)>;
    using ObserverId = std::uint64_t;

    explicit Runtime(std::string node_name) : node_name_(std::move(node_name)) {}
    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    const std::string& node_name() const { return node_name_; }

    /// Register a service class. Throws TypeError on duplicate names.
    void register_type(std::shared_ptr<TypeInfo> type);

    /// nullptr if unknown.
    std::shared_ptr<TypeInfo> find_type(std::string_view name) const;

    /// All registered classes, in registration order.
    std::vector<std::shared_ptr<TypeInfo>> types() const;

    /// Create and track an instance. Throws TypeError for unknown types or
    /// duplicate instance names.
    std::shared_ptr<ServiceObject> create(std::string_view type_name,
                                          std::string instance_name);

    /// Look up a live instance by name; nullptr if absent.
    std::shared_ptr<ServiceObject> find_object(std::string_view instance_name) const;

    /// All live instances of a given class.
    std::vector<std::shared_ptr<ServiceObject>> objects_of(std::string_view type_name) const;

    /// Drop a tracked instance.
    void destroy(std::string_view instance_name);

    /// Subscribe to future type registrations (used by the weaver).
    ObserverId add_type_observer(TypeObserver observer);
    void remove_type_observer(ObserverId id);

private:
    std::string node_name_;
    std::vector<std::shared_ptr<TypeInfo>> types_;
    std::map<std::string, std::size_t, std::less<>> type_index_;
    std::map<std::string, std::shared_ptr<ServiceObject>, std::less<>> objects_;
    std::map<ObserverId, TypeObserver> observers_;
    ObserverId next_observer_ = 0;
};

}  // namespace pmp::rt
