// Caller-side circuit breaker, per target node.
//
// The receiving half of overload protection is admission control
// (net/admission.h): a struggling node sheds with Overloaded. This is the
// sending half: a caller that keeps getting Overloaded / timeout answers
// from one node stops hammering it entirely for a cool-down, then lets a
// single probe through (half-open) — success restores full traffic, another
// failure re-opens the breaker with a doubled cool-down. MIDAS bases wrap
// their install and keep-alive paths in one of these so a fleet-wide policy
// push cannot flatten a slow receiver (and a dead one costs nothing per
// tick once dropped).
//
// State machine (docs/overload.md):
//
//   closed --[threshold consecutive relevant failures]--> open
//   open ----[cool-down elapsed; next allow()]----------> half-open (1 probe)
//   half-open --[probe ok or remote app answer]---------> closed
//   half-open --[probe failed]--------------------------> open (period *= 2)
//
// "Relevant" failures are those that say the peer may be drowning or gone:
// Overloaded replies and transport failures (timeout / unreachable). A
// remote *application* error proves the peer alive and serving, so it
// counts as a success here.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/ids.h"
#include "common/time.h"
#include "obs/metrics.h"

namespace pmp::sim {
class Simulator;
}

namespace pmp::rt {

struct BreakerConfig {
    /// Consecutive relevant failures that trip the breaker. <= 0 disables
    /// the breaker entirely: allow() is always true.
    int threshold = 4;
    Duration open_period = seconds(1);   ///< first cool-down
    Duration open_max = seconds(8);      ///< cap for the doubling cool-down
};

class CircuitBreaker {
public:
    enum class State { kClosed, kOpen, kHalfOpen };

    /// `owner` labels the metrics (rpc.breaker_opens / rpc.breaker_state /
    /// rpc.breaker_short_circuits), e.g. the base's issuer name.
    CircuitBreaker(sim::Simulator& sim, std::string owner, BreakerConfig config = {});

    /// May traffic go to `target` now? Open breakers answer false (counted
    /// as short-circuits) until their cool-down elapses, then exactly one
    /// caller gets true as the half-open probe.
    bool allow(NodeId target);

    void on_success(NodeId target);
    /// `relevant` selects breaker-triggering failures (Overloaded /
    /// transport); an irrelevant failure is an answer and counts as
    /// success.
    void on_failure(NodeId target, bool relevant);
    /// The target is gone from the caller's books; drop its slot.
    void forget(NodeId target);

    State state_of(NodeId target) const;
    /// Number of targets currently not closed (the rpc.breaker_state gauge).
    std::int64_t tripped() const;

    const BreakerConfig& config() const { return config_; }

private:
    struct Slot {
        State state = State::kClosed;
        int failures = 0;           ///< consecutive relevant, while closed
        SimTime open_until{};       ///< while open
        Duration period{0};         ///< current cool-down (doubles per re-open)
        bool probe_in_flight = false;
    };

    void trip(Slot& slot, NodeId target);
    void close(Slot& slot, NodeId target);
    void update_gauge();

    sim::Simulator& sim_;
    std::string owner_;
    BreakerConfig config_;
    std::map<NodeId, Slot> slots_;

    obs::OwnedCounter opens_c_;
    obs::OwnedCounter short_circuits_c_;
    obs::OwnedGauge state_g_;
};

}  // namespace pmp::rt
