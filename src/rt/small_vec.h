// SmallVec: a tiny inline-storage vector for dispatch hook tables.
//
// Hook slots hold at most a couple of advice entries in practice (one
// extension, occasionally two, per join point). Storing them inline keeps
// the advice table in the same cache lines as the Method/Field that owns
// it and spares a heap allocation per slot; past N entries it spills to
// the heap like a normal vector. Deliberately minimal: exactly the
// operations the dispatch and weave paths need (priority insert, owner
// removal, iteration), no general-purpose API surface.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace pmp::rt {

template <typename T, std::size_t N>
class SmallVec {
    static_assert(N > 0, "inline capacity must be at least 1");

public:
    SmallVec() noexcept : data_(inline_ptr()) {}

    SmallVec(SmallVec&& other) noexcept : data_(inline_ptr()) { take(other); }

    SmallVec& operator=(SmallVec&& other) noexcept {
        if (this != &other) {
            destroy();
            take(other);
        }
        return *this;
    }

    SmallVec(const SmallVec&) = delete;
    SmallVec& operator=(const SmallVec&) = delete;

    ~SmallVec() { destroy(); }

    T* begin() { return data_; }
    T* end() { return data_ + size_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }

    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }
    bool inlined() const { return data_ == inline_ptr(); }

    void push_back(T value) { insert(end(), std::move(value)); }

    /// Insert before `pos` (a pointer into [begin(), end()]).
    void insert(T* pos, T value) {
        std::size_t at = static_cast<std::size_t>(pos - data_);
        if (size_ == cap_) grow();
        if (at == size_) {
            new (data_ + size_) T(std::move(value));
        } else {
            // Shift the tail one slot right, back to front, then drop the
            // new element into the hole.
            new (data_ + size_) T(std::move(data_[size_ - 1]));
            for (std::size_t i = size_ - 1; i > at; --i) data_[i] = std::move(data_[i - 1]);
            data_[at] = std::move(value);
        }
        ++size_;
    }

    /// Remove every element matching `pred`; returns how many went.
    template <typename Pred>
    std::size_t remove_if(Pred pred) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < size_; ++i) {
            if (pred(data_[i])) continue;
            if (kept != i) data_[kept] = std::move(data_[i]);
            ++kept;
        }
        std::size_t removed = size_ - kept;
        for (std::size_t i = kept; i < size_; ++i) data_[i].~T();
        size_ = kept;
        return removed;
    }

    void clear() {
        for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
        size_ = 0;
    }

private:
    T* inline_ptr() noexcept { return std::launder(reinterpret_cast<T*>(inline_storage_)); }
    const T* inline_ptr() const noexcept {
        return std::launder(reinterpret_cast<const T*>(inline_storage_));
    }

    void grow() {
        std::size_t new_cap = cap_ * 2;
        T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
        for (std::size_t i = 0; i < size_; ++i) {
            new (fresh + i) T(std::move(data_[i]));
            data_[i].~T();
        }
        release_heap();
        data_ = fresh;
        cap_ = new_cap;
    }

    /// Move-steal `other`'s contents; `other` is left empty but valid.
    void take(SmallVec& other) noexcept {
        if (!other.inlined()) {
            data_ = other.data_;
            size_ = other.size_;
            cap_ = other.cap_;
            other.data_ = other.inline_ptr();
            other.size_ = 0;
            other.cap_ = N;
            return;
        }
        data_ = inline_ptr();
        cap_ = N;
        size_ = other.size_;
        for (std::size_t i = 0; i < size_; ++i) {
            new (data_ + i) T(std::move(other.data_[i]));
            other.data_[i].~T();
        }
        other.size_ = 0;
    }

    void release_heap() {
        if (!inlined()) {
            ::operator delete(data_, std::align_val_t{alignof(T)});
        }
    }

    void destroy() {
        clear();
        release_heap();
        data_ = inline_ptr();
        cap_ = N;
    }

    alignas(T) std::byte inline_storage_[N * sizeof(T)];
    T* data_;
    std::size_t size_ = 0;
    std::size_t cap_ = N;
};

}  // namespace pmp::rt
