// Remote method invocation over the simulated radio.
//
// The paper's services are exported as Jini services and invoked remotely
// (Fig 2a: "remote method call of m_R on a node"). RpcEndpoint is that
// machinery: it marshals Value argument lists, routes the call into the
// target node's Runtime dispatch — so every woven aspect on the callee
// fires exactly as for a local call — and marshals back the result or the
// raised error. Marshaling/unmarshaling are themselves ordinary code paths
// that MIDAS can adapt (the paper's implicit marshaling extensions).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "net/router.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/runtime.h"

namespace pmp::rt {

/// Result delivered to the caller: exactly one of `result` / `error` is
/// meaningful; `error` is nullptr on success.
using ReplyHandler = std::function<void(Value result, std::exception_ptr error)>;

/// Enriched variant for callers that manage their own failure policy
/// (circuit breakers, keep-alive ledgers): `transport` is true when the
/// failure never produced a remote answer (timeout / unreachable) — the
/// peer may be gone, as opposed to alive-and-refusing.
using RichReplyHandler = std::function<void(Value result, std::exception_ptr error, bool transport)>;

/// Per-call knobs. Retries apply only to *transport* failures (timeout,
/// unreachable) — a remote error reply is the call's answer and is never
/// retried. Each retry is a fresh call id; the delay before attempt k is
/// `retry_backoff * 2^(k-1)`.
struct CallOptions {
    Duration timeout = seconds(2);
    int retries = 0;
    Duration retry_backoff = milliseconds(100);
};

class RpcEndpoint {
public:
    /// Attaches to the node's router under kinds "rpc.call" / "rpc.reply".
    RpcEndpoint(net::MessageRouter& router, Runtime& runtime);

    /// Cancels every pending call's timeout timer and invalidates deferred
    /// work (retry backoffs, unreachable notifications) still sitting in
    /// the simulator queue. A node object may be destroyed mid-call — a
    /// crash–restart under midas::Supervisor does exactly that — while the
    /// simulation keeps running, so nothing scheduled here may touch the
    /// endpoint afterwards.
    ~RpcEndpoint();

    /// Make an instance callable from remote nodes. Objects are never
    /// implicitly exported.
    void export_object(const std::string& instance_name);
    void unexport_object(const std::string& instance_name);
    bool exported(const std::string& instance_name) const;

    /// Fire-and-collect asynchronous call. The handler runs when the reply
    /// arrives or the timeout elapses (with a RemoteError).
    void call_async(NodeId target, const std::string& object, const std::string& method,
                    List args, ReplyHandler on_reply, Duration timeout = seconds(2));

    /// As above with full per-call control (transport retries + timeout).
    void call_async(NodeId target, const std::string& object, const std::string& method,
                    List args, CallOptions options, ReplyHandler on_reply);

    /// As above, delivering the transport/remote distinction (see
    /// RichReplyHandler). Retries behave identically; the flag describes
    /// the *final* attempt.
    void call_async(NodeId target, const std::string& object, const std::string& method,
                    List args, CallOptions options, RichReplyHandler on_reply);

    /// Convenience for tests/examples running outside the event loop: pumps
    /// the simulator until the reply arrives, then returns the result or
    /// rethrows the remote error.
    Value call_sync(NodeId target, const std::string& object, const std::string& method,
                    List args, Duration timeout = seconds(2));

    Runtime& runtime() { return runtime_; }
    net::MessageRouter& router() { return router_; }

    /// While an incoming call is being dispatched, the node it came from;
    /// invalid otherwise. This is the implicit session information the
    /// paper's session-management extension extracts (Fig 2c step 2).
    NodeId current_caller() const { return current_caller_; }

    /// Wire filters: join points on the marshaling path itself. The paper's
    /// example — "an extension that will encrypt every outgoing call from
    /// an application and decrypt every incoming call" — installs here: it
    /// needs to know nothing about the application, not even its interface.
    /// Outbound filters transform every encoded rpc payload before it hits
    /// the radio (in priority order); inbound filters undo them in reverse
    /// order on arrival. Filters are owned (HookOwner) so withdrawing an
    /// extension removes its filters exactly like its advice.
    using WireFilter = std::function<Bytes(Bytes)>;
    void add_wire_filter(HookOwner owner, int priority, WireFilter outbound,
                         WireFilter inbound);
    bool remove_wire_filters(HookOwner owner);
    std::size_t wire_filter_count() const { return wire_filters_.size(); }

    /// Exempt objects whose name starts with `prefix` from wire filters.
    /// The platform's control plane (the adaptation service, the registrar,
    /// discovery event listeners) is exempted by the node assembly: its
    /// integrity comes from package signatures, and exempting it avoids the
    /// bootstrap deadlock where the extension that keys the channel could
    /// never be delivered over the channel it keys. Calls to exempt objects
    /// travel under distinct control message kinds that skip the filters.
    void exempt_from_filters(const std::string& prefix);
    bool is_exempt(const std::string& object) const;

private:
    using AttemptHandler = RichReplyHandler;

    void call_once(NodeId target, const std::string& object, const std::string& method,
                   List args, Duration timeout, AttemptHandler on_done);
    void on_call(const net::Message& msg, bool control);
    void on_reply(const net::Message& msg, bool control);
    /// Dispatch one admitted call and send (and cache) its reply.
    void execute_call(NodeId from, bool control, std::uint64_t call_id,
                      const std::string& object_name, const std::string& method, List args);
    /// Admission priority of an inbound call (see net::AdmitClass): the
    /// control plane (exempt objects) outranks installs outranks app calls.
    net::AdmitClass classify(const std::string& object, const std::string& method) const;
    static Bytes encode_error(std::uint64_t call_id, const std::string& etype,
                              const std::string& message, Duration retry_after = Duration{0});
    [[noreturn]] static void rethrow_remote(const std::string& etype, const std::string& message,
                                            Duration retry_after);

    struct Pending {
        AttemptHandler handler;
        sim::TimerId timeout_timer;
        SimTime sent_at;           ///< virtual send time, for round-trip stats
        std::uint64_t span = 0;    ///< obs trace span covering the round-trip
        /// The call's causal position ({trace, span}), restored around
        /// handler invocations that fire from timers (timeout,
        /// unreachable) so follow-up work stays on the call's trace.
        obs::TraceContext ctx;
    };
    struct FilterSlot {
        HookOwner owner;
        int priority;
        WireFilter outbound;
        WireFilter inbound;
    };

    Bytes apply_outbound(Bytes payload) const;
    Bytes apply_inbound(Bytes payload) const;

    net::MessageRouter& router_;
    Runtime& runtime_;
    /// Liveness token for closures the endpoint parks in the simulator
    /// queue but does not track by timer id. They hold a copy and bail if
    /// the endpoint died before they fired.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    std::set<std::string> exported_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::uint64_t next_call_ = 0;
    NodeId current_caller_;
    std::vector<FilterSlot> wire_filters_;  // kept sorted by priority
    std::vector<std::string> exempt_prefixes_;

    /// At-most-once execution under a duplicating radio: recently answered
    /// (caller, call id) pairs map to their wire-ready reply, which is
    /// re-sent verbatim on a duplicate call instead of re-dispatching.
    /// Bounded FIFO — a dup arriving after eviction re-executes, which the
    /// receiver-side handlers keep idempotent anyway.
    static constexpr std::size_t kReplyCacheCap = 256;
    using ReplyCacheKey = std::pair<std::uint64_t, std::uint64_t>;  // (caller, call id)
    std::map<ReplyCacheKey, Bytes> reply_cache_;
    std::deque<ReplyCacheKey> reply_cache_order_;
    /// Calls admitted but still waiting in the node's admission queue. A
    /// duplicate frame arriving meanwhile is dropped (not re-queued): the
    /// original's reply is coming.
    std::set<ReplyCacheKey> inflight_;
    /// Level of the at-most-once cache, per node (satellite: the cache had
    /// no eviction visibility).
    obs::OwnedGauge reply_cache_size_g_;
};

}  // namespace pmp::rt
