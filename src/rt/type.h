// Type metadata: the metaobject protocol the platform is built on.
//
// In the paper, PROSE leans on the JVM's JIT to plant *minimal hooks* at
// every potential join point of every loaded class. Our analog: every
// service class is described by a TypeInfo whose Methods and Fields carry a
// hook slot. Un-woven, a hook is a single predictable branch on a bool
// ("two native instructions"); woven, it runs the attached advice chains.
// The AOP engine (pmp::prose) installs and removes advice through the
// generic hook interfaces declared here — rt knows the firing protocol, not
// aspects.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rt/small_vec.h"
#include "rt/value.h"

namespace pmp::rt {

class ServiceObject;
class Method;

/// Declared parameter / return / field types. kAny opts out of checking.
enum class TypeKind : std::uint8_t {
    kAny,
    kVoid,
    kBool,
    kInt,
    kReal,
    kStr,
    kBlob,
    kList,
    kDict,
};

const char* type_kind_name(TypeKind k);

/// Parse "int", "str", ... ; returns std::nullopt for unknown names.
std::optional<TypeKind> parse_type_kind(std::string_view name);

/// Does `v` satisfy a declared kind? (kAny always; kReal also accepts Int.)
bool value_matches(TypeKind kind, const Value& v);

struct ParamSpec {
    std::string name;
    TypeKind type = TypeKind::kAny;
};

/// Declaration of one method: the unit pointcuts match against.
struct MethodDecl {
    std::string name;
    TypeKind returns = TypeKind::kVoid;
    std::vector<ParamSpec> params;
    bool varargs = false;  ///< accepts extra trailing arguments of any type

    /// "void Motor.forward(int)" — used in logs and join-point reports.
    std::string signature(std::string_view type_name) const;
};

struct FieldDecl {
    std::string name;
    TypeKind type = TypeKind::kAny;
    Value initial;
};

/// One in-flight invocation, visible to hooks. Entry hooks may rewrite
/// args (the paper's encryption example); exit hooks may inspect/replace
/// the result; any hook may throw to abort the call (access control).
struct CallFrame {
    ServiceObject& self;
    const Method& method;
    List& args;
    Value result;  ///< valid in exit hooks and after proceed()
    /// Per-call annotations: implicit context that cooperating extensions
    /// pass along one invocation (the paper's session information — an
    /// early hook extracts the caller identity here, a later access-control
    /// hook reads it). Cleared when the call completes.
    Dict notes;
};

using MethodHandler = std::function<Value(ServiceObject&, List&)>;
using EntryHook = std::function<void(CallFrame&)>;
using ExitHook = std::function<void(CallFrame&)>;
using ErrorHook = std::function<void(CallFrame&, std::exception_ptr)>;
/// Around advice: receives the frame and a proceed() continuation; its
/// return value becomes the call's result. It may skip proceed() entirely.
using AroundHook = std::function<Value(CallFrame&, const std::function<Value()>&)>;

using FieldSetHook =
    std::function<void(ServiceObject&, const FieldDecl&, const Value& old_value, Value& new_value)>;
using FieldGetHook = std::function<void(ServiceObject&, const FieldDecl&, Value& value)>;

/// Identifies which aspect installed a hook so it can be withdrawn again.
using HookOwner = std::uint64_t;

template <typename Fn>
struct HookSlot {
    HookOwner owner = 0;
    int priority = 0;  ///< lower fires earlier
    Fn fn;
};

/// Inline capacity of the per-member advice tables: up to this many hooks
/// per slot live inside the Method/Field itself (no heap allocation, same
/// cache lines as the minimal-hook flag). Real workloads rarely stack more
/// than two advice entries on one join point; beyond that the table spills.
inline constexpr std::size_t kInlineHookSlots = 2;

/// Flat, priority-sorted advice table for one hook slot.
template <typename Fn>
using HookTable = SmallVec<HookSlot<Fn>, kInlineHookSlots>;

namespace detail {
template <typename Fn>
void insert_by_priority(HookTable<Fn>& slots, HookSlot<Fn> slot) {
    auto it = slots.begin();
    while (it != slots.end() && it->priority <= slot.priority) ++it;
    slots.insert(it, std::move(slot));
}

template <typename Fn>
bool remove_owner(HookTable<Fn>& slots, HookOwner owner) {
    return slots.remove_if([owner](const HookSlot<Fn>& s) { return s.owner == owner; }) > 0;
}
}  // namespace detail

/// The complete advice state of one Method, published behind a single
/// atomic pointer (RCU). Snapshots are immutable once published: the
/// weaver copies the current snapshot, edits the copy, swaps the pointer,
/// and retires the old snapshot through rt::EpochDomain — so dispatch on
/// another shard can keep walking the old table through the grace period
/// while weave/withdraw proceed. nullptr stands for "no advice" and keeps
/// the un-woven minimal hook a single load + branch.
struct AdviceTables {
    HookTable<EntryHook> entry;
    HookTable<ExitHook> exit;
    HookTable<ErrorHook> error;
    HookTable<AroundHook> around;
    bool empty() const {
        return entry.empty() && exit.empty() && error.empty() && around.empty();
    }
};

/// Same discipline for Field hooks.
struct FieldHookTables {
    HookTable<FieldSetHook> set;
    HookTable<FieldGetHook> get;
    bool empty() const { return set.empty() && get.empty(); }
};

/// A callable method with its hook slot.
class Method {
public:
    Method(MethodDecl decl, MethodHandler handler)
        : decl_(std::move(decl)), handler_(std::move(handler)) {}
    ~Method();

    Method(const Method&) = delete;
    Method& operator=(const Method&) = delete;

    const MethodDecl& decl() const { return decl_; }

    /// Fresh copy with the same declaration and handler but pristine hook
    /// slots (used by copy-down inheritance: every class owns its methods,
    /// so weaving into "Motor" never leaks advice to sibling subclasses).
    std::unique_ptr<Method> clone_unwoven() const {
        return std::make_unique<Method>(decl_, handler_);
    }

    /// Full dispatch including the minimal hook (one branch when un-woven).
    Value invoke(ServiceObject& self, List args);

    /// Dispatch as if the adaptation platform were absent: no hook at all.
    /// Exists solely for the platform-overhead experiment (DESIGN.md E3).
    Value invoke_unhooked(ServiceObject& self, List args);

    /// Full dispatch (minimal hook included) but without the obs dispatch
    /// counters — the pre-instrumentation invoke(). Exists solely so
    /// bench_platform_overhead can price the instrumentation itself
    /// (no-obs vs. idle vs. enabled).
    Value invoke_no_obs(ServiceObject& self, List args);

    /// Debugger-style dispatch: unconditionally enter the interception
    /// machinery (build a frame, walk the — possibly empty — advice
    /// chains), the way the JVMDI-based first PROSE prototype intercepted
    /// every call whether or not advice was attached. Exists solely for the
    /// v1-vs-v2 ablation in bench_interception; real dispatch is invoke().
    Value invoke_debugger_style(ServiceObject& self, List args);

    /// True if any advice is attached.
    bool woven() const { return advice_.load(std::memory_order_acquire) != nullptr; }

    // --- hook management (used by pmp::prose::Weaver) ---
    // Mutations follow the RCU discipline (copy, edit, publish, retire).
    // Contract: a single mutator per Method at a time — the weaver that
    // owns the node's runtime, running on that node's shard. Concurrent
    // *dispatch* from any thread is safe.
    void add_entry_hook(HookOwner owner, int priority, EntryHook fn);
    void add_exit_hook(HookOwner owner, int priority, ExitHook fn);
    void add_error_hook(HookOwner owner, int priority, ErrorHook fn);
    void add_around_hook(HookOwner owner, int priority, AroundHook fn);
    /// Remove every hook `owner` installed. Returns true if any was removed.
    bool remove_hooks(HookOwner owner);

private:
    void validate(const List& args) const;
    Value invoke_hooked(const AdviceTables& tables, ServiceObject& self, List& args);
    /// Runs tables.around[index..] then the core (entry advice, handler,
    /// exit advice; error advice on throw). proceed() continuations advance
    /// `index` instead of building a per-call closure chain.
    Value run_advice_chain(const AdviceTables& tables, std::size_t index, CallFrame& frame,
                           ServiceObject& self, List& args);
    /// Copy of the current snapshot (or a fresh empty one) for editing.
    std::unique_ptr<AdviceTables> copy_tables() const;
    /// Swap in `next` (normalized: empty -> nullptr), retire the old
    /// snapshot into the global epoch domain.
    void publish(std::unique_ptr<AdviceTables> next);

    MethodDecl decl_;
    MethodHandler handler_;
    /// The minimal hook: one acquire load, nullptr <=> un-woven.
    std::atomic<const AdviceTables*> advice_{nullptr};
};

/// A field with its hook slot. Values live per-instance in ServiceObject;
/// hooks (like advice generally) attach at the class level.
class Field {
public:
    explicit Field(FieldDecl decl) : decl_(std::move(decl)) {}
    ~Field();

    /// Moves happen only during single-threaded TypeInfo construction
    /// (fields live in a std::vector); woven Fields are never moved.
    Field(Field&& other) noexcept
        : decl_(std::move(other.decl_)),
          hooks_(other.hooks_.exchange(nullptr, std::memory_order_relaxed)) {}
    Field& operator=(Field&&) = delete;
    Field(const Field&) = delete;
    Field& operator=(const Field&) = delete;

    const FieldDecl& decl() const { return decl_; }
    bool woven() const { return hooks_.load(std::memory_order_acquire) != nullptr; }

    // Same RCU discipline and single-mutator contract as Method.
    void add_set_hook(HookOwner owner, int priority, FieldSetHook fn);
    void add_get_hook(HookOwner owner, int priority, FieldGetHook fn);
    bool remove_hooks(HookOwner owner);

    /// Fire hooks for a write; called by ServiceObject::set.
    void on_set(ServiceObject& self, const Value& old_value, Value& new_value);
    /// Fire hooks for a read; called by ServiceObject::get.
    void on_get(ServiceObject& self, Value& value);

private:
    std::unique_ptr<FieldHookTables> copy_tables() const;
    void publish(std::unique_ptr<FieldHookTables> next);

    FieldDecl decl_;
    std::atomic<const FieldHookTables*> hooks_{nullptr};
};

/// Class metadata: name, methods, fields. Shared by all instances of the
/// class; advice woven here affects every instance (class-level join
/// points, as in PROSE).
class TypeInfo {
public:
    /// Fluent construction:
    ///   auto type = TypeInfo::Builder("Motor")
    ///       .method("forward", TypeKind::kVoid, {{"power", TypeKind::kInt}}, handler)
    ///       .field("position", TypeKind::kReal, Value{0.0})
    ///       .build();
    class Builder {
    public:
        explicit Builder(std::string name) : name_(std::move(name)) {}

        /// Single inheritance: methods and fields of `parent` are inherited
        /// (own declarations override by name), and pointcut subtype
        /// patterns ("Device+") select this class through the parent chain
        /// — the paper's Device <- Motor/Sensor hierarchy.
        Builder& extends(std::shared_ptr<TypeInfo> parent);

        Builder& method(std::string name, TypeKind returns, std::vector<ParamSpec> params,
                        MethodHandler handler, bool varargs = false);
        Builder& field(std::string name, TypeKind type, Value initial = Value{});
        std::shared_ptr<TypeInfo> build();

    private:
        std::string name_;
        std::shared_ptr<TypeInfo> parent_;
        std::vector<std::unique_ptr<Method>> methods_;
        std::vector<Field> fields_;
    };

    const std::string& name() const { return name_; }

    /// Direct superclass; nullptr for roots. The weaver keeps the parent
    /// alive through this pointer, so hooks woven into inherited methods
    /// (which live in the parent's Method objects) stay valid.
    const std::shared_ptr<TypeInfo>& parent() const { return parent_; }

    /// True if this type is `ancestor_name` or inherits from it.
    bool is_a(std::string_view ancestor_name) const;

    /// nullptr if no such method; searches the inheritance chain. Method
    /// names are unique per type (no overloading, as in the script layer
    /// above); a subclass method with the same name overrides.
    Method* method(std::string_view name);
    const Method* method(std::string_view name) const;

    Field* field(std::string_view name);
    const Field* field(std::string_view name) const;
    /// Index of a field in per-instance storage; SIZE_MAX if absent.
    std::size_t field_index(std::string_view name) const;

    std::vector<Method*> methods();
    const std::vector<Field>& fields() const { return fields_; }
    std::vector<Field>& fields() { return fields_; }

private:
    friend class Builder;
    TypeInfo() = default;

    std::string name_;
    std::shared_ptr<TypeInfo> parent_;
    std::vector<std::unique_ptr<Method>> methods_;
    std::unordered_map<std::string, std::size_t> method_index_;
    std::vector<Field> fields_;
    std::unordered_map<std::string, std::size_t> field_index_;
};

}  // namespace pmp::rt
