#include "rt/runtime.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace pmp::rt {

void Runtime::register_type(std::shared_ptr<TypeInfo> type) {
    if (type_index_.contains(type->name())) {
        throw TypeError("type '" + type->name() + "' already registered");
    }
    type_index_.emplace(type->name(), types_.size());
    types_.push_back(type);
    obs::Registry::global().counter("rt.types_registered").inc();
    // Notify observers after registration so a weaver seeing the type can
    // immediately weave into it. Copy the observer list first: weaving may
    // add/remove observers re-entrantly.
    auto observers = observers_;
    for (auto& [_, fn] : observers) fn(*type);
}

std::shared_ptr<TypeInfo> Runtime::find_type(std::string_view name) const {
    auto it = type_index_.find(name);
    return it == type_index_.end() ? nullptr : types_[it->second];
}

std::vector<std::shared_ptr<TypeInfo>> Runtime::types() const { return types_; }

std::shared_ptr<ServiceObject> Runtime::create(std::string_view type_name,
                                               std::string instance_name) {
    auto type = find_type(type_name);
    if (!type) {
        throw TypeError("unknown type '" + std::string(type_name) + "'");
    }
    if (objects_.contains(instance_name)) {
        throw TypeError("instance '" + instance_name + "' already exists");
    }
    auto object = std::make_shared<ServiceObject>(type, instance_name);
    objects_.emplace(std::move(instance_name), object);
    obs::Registry::global().counter("rt.objects_created").inc();
    return object;
}

std::shared_ptr<ServiceObject> Runtime::find_object(std::string_view instance_name) const {
    auto it = objects_.find(instance_name);
    return it == objects_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<ServiceObject>> Runtime::objects_of(
    std::string_view type_name) const {
    std::vector<std::shared_ptr<ServiceObject>> out;
    for (const auto& [_, obj] : objects_) {
        if (obj->type().name() == type_name) out.push_back(obj);
    }
    return out;
}

void Runtime::destroy(std::string_view instance_name) {
    auto it = objects_.find(instance_name);
    if (it != objects_.end()) objects_.erase(it);
}

Runtime::ObserverId Runtime::add_type_observer(TypeObserver observer) {
    ObserverId id = ++next_observer_;
    observers_.emplace(id, std::move(observer));
    return id;
}

void Runtime::remove_type_observer(ObserverId id) { observers_.erase(id); }

}  // namespace pmp::rt
