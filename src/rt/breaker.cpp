#include "rt/breaker.h"

#include "obs/trace.h"
#include "sim/simulator.h"

namespace pmp::rt {

CircuitBreaker::CircuitBreaker(sim::Simulator& sim, std::string owner, BreakerConfig config)
    : sim_(sim),
      owner_(std::move(owner)),
      config_(config),
      opens_c_("rpc.breaker_opens", owner_),
      short_circuits_c_("rpc.breaker_short_circuits", owner_),
      state_g_("rpc.breaker_state", owner_) {}

bool CircuitBreaker::allow(NodeId target) {
    if (config_.threshold <= 0) return true;
    auto it = slots_.find(target);
    if (it == slots_.end()) return true;
    Slot& slot = it->second;
    switch (slot.state) {
        case State::kClosed:
            return true;
        case State::kOpen:
            if (sim_.now() < slot.open_until) {
                short_circuits_c_.inc();
                return false;
            }
            slot.state = State::kHalfOpen;
            slot.probe_in_flight = true;
            obs::TraceBuffer::global().instant(
                "rt.rpc", "rpc.breaker.half_open",
                {{"owner", owner_}, {"target", target.str()}});
            update_gauge();
            return true;
        case State::kHalfOpen:
            if (slot.probe_in_flight) {
                short_circuits_c_.inc();
                return false;
            }
            slot.probe_in_flight = true;
            return true;
    }
    return true;
}

void CircuitBreaker::on_success(NodeId target) {
    auto it = slots_.find(target);
    if (it == slots_.end()) return;
    close(it->second, target);
}

void CircuitBreaker::on_failure(NodeId target, bool relevant) {
    if (config_.threshold <= 0) return;
    if (!relevant) {
        // The peer answered (an application error): alive and serving.
        on_success(target);
        return;
    }
    Slot& slot = slots_[target];
    switch (slot.state) {
        case State::kClosed:
            if (++slot.failures >= config_.threshold) trip(slot, target);
            break;
        case State::kHalfOpen:
            // The probe failed: back to open with a doubled cool-down.
            trip(slot, target);
            break;
        case State::kOpen:
            // Stragglers from calls sent before the trip; nothing to learn.
            break;
    }
}

void CircuitBreaker::forget(NodeId target) {
    slots_.erase(target);
    update_gauge();
}

void CircuitBreaker::trip(Slot& slot, NodeId target) {
    slot.period = slot.period.count() == 0
                      ? config_.open_period
                      : std::min(slot.period * 2, config_.open_max);
    slot.state = State::kOpen;
    slot.open_until = sim_.now() + slot.period;
    slot.failures = 0;
    slot.probe_in_flight = false;
    opens_c_.inc();
    obs::TraceBuffer::global().instant(
        "rt.rpc", "rpc.breaker.open",
        {{"owner", owner_},
         {"target", target.str()},
         {"cooldown_ms", std::to_string(slot.period.count() / 1'000'000)}});
    update_gauge();
}

void CircuitBreaker::close(Slot& slot, NodeId target) {
    bool was_open = slot.state != State::kClosed;
    slot.state = State::kClosed;
    slot.failures = 0;
    slot.period = Duration{0};
    slot.probe_in_flight = false;
    if (was_open) {
        obs::TraceBuffer::global().instant(
            "rt.rpc", "rpc.breaker.close",
            {{"owner", owner_}, {"target", target.str()}});
        update_gauge();
    }
}

CircuitBreaker::State CircuitBreaker::state_of(NodeId target) const {
    auto it = slots_.find(target);
    return it == slots_.end() ? State::kClosed : it->second.state;
}

std::int64_t CircuitBreaker::tripped() const {
    std::int64_t n = 0;
    for (const auto& [_, slot] : slots_) n += slot.state != State::kClosed;
    return n;
}

void CircuitBreaker::update_gauge() { state_g_->set(tripped()); }

}  // namespace pmp::rt
