#include "tspace/remote.h"

#include "common/log.h"

namespace pmp::tspace {

using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

namespace {
/// The shape of an extension tuple: ["midas.ext", name, version, sealed].
Template extension_template() {
    return Template{Field::eq(Value{"midas.ext"}), Field::of_type(TypeKind::kStr),
                    Field::of_type(TypeKind::kInt), Field::of_type(TypeKind::kBlob)};
}
}  // namespace

// ------------------------------------------------------ TupleSpaceHost ----

TupleSpaceHost::TupleSpaceHost(rt::RpcEndpoint& rpc, disco::Registrar& registrar,
                               TupleSpace& space)
    : rpc_(rpc), space_(space) {
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("TupleSpace")) {
        auto found_reply = [](std::optional<List> hit) {
            Dict out{{"found", Value{hit.has_value()}}};
            if (hit) out.set("tuple", Value{std::move(*hit)});
            return Value{std::move(out)};
        };
        auto type =
            rt::TypeInfo::Builder("TupleSpace")
                .method("out", TypeKind::kInt,
                        {{"tuple", TypeKind::kList}, {"ttl_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            Duration ttl = args[1].as_int() <= 0
                                               ? Duration::max()
                                               : milliseconds(args[1].as_int());
                            return Value{static_cast<std::int64_t>(
                                space_.out(args[0].as_list(), ttl))};
                        })
                .method("rdp", TypeKind::kDict, {{"template", TypeKind::kList}},
                        [this, found_reply](rt::ServiceObject&, List& args) -> Value {
                            return found_reply(space_.rdp(Template::from_value(args[0])));
                        })
                .method("inp", TypeKind::kDict, {{"template", TypeKind::kList}},
                        [this, found_reply](rt::ServiceObject&, List& args) -> Value {
                            return found_reply(space_.inp(Template::from_value(args[0])));
                        })
                .method("rda", TypeKind::kList, {{"template", TypeKind::kList}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            List out;
                            for (List& tuple :
                                 space_.rda(Template::from_value(args[0]))) {
                                out.push_back(Value{std::move(tuple)});
                            }
                            return Value{std::move(out)};
                        })
                .method("count", TypeKind::kInt, {},
                        [this](rt::ServiceObject&, List&) -> Value {
                            return Value{static_cast<std::int64_t>(space_.size())};
                        })
                .method("notify", TypeKind::kDict,
                        {{"template", TypeKind::kList},
                         {"listener", TypeKind::kStr},
                         {"duration_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_notify(rpc_.current_caller(),
                                             Template::from_value(args[0]),
                                             args[1].as_str(), args[2].as_int());
                        })
                .build();
        runtime.register_type(type);
    }
    self_object_ = runtime.create("TupleSpace", "tspace");
    rpc_.export_object("tspace");
    // The control plane of tuple distribution is the space itself; exempt
    // it from application wire filters like the rest of the control plane.
    rpc_.exempt_from_filters("tspace");

    // Advertise at the co-located registrar so roaming devices find the
    // space; host and registrar share fate, so no lease is needed.
    registrar.register_permanent("tspace", Dict{});

    sweep_timer_ = rpc_.router().simulator().schedule_every(milliseconds(500),
                                                            [this]() { sweep(); });
}

TupleSpaceHost::~TupleSpaceHost() {
    rpc_.router().simulator().cancel(sweep_timer_);
    for (auto& [_, sub] : subs_) space_.cancel_wait(sub.notify_id);
}

rt::Value TupleSpaceHost::do_notify(NodeId watcher, const Template& tmpl,
                                    const std::string& listener,
                                    std::int64_t duration_ms) {
    if (!watcher.valid()) watcher = rpc_.router().self();
    Duration granted = duration_ms <= 0 ? seconds(10) : milliseconds(duration_ms);
    if (granted > seconds(60)) granted = seconds(60);

    // Re-subscription from the same watcher+listener renews instead of
    // duplicating.
    for (auto& [id, sub] : subs_) {
        if (sub.watcher == watcher && sub.listener == listener) {
            sub.expires = rpc_.router().simulator().now() + granted;
            Dict out{{"watch", Value{static_cast<std::int64_t>(id)}},
                     {"duration_ms", Value{granted.count() / 1'000'000}}};
            return Value{std::move(out)};
        }
    }

    std::uint64_t id = ++next_sub_;
    Subscription sub;
    sub.watcher = watcher;
    sub.listener = listener;
    sub.expires = rpc_.router().simulator().now() + granted;
    sub.notify_id = space_.notify(tmpl, [this, watcher, listener](const List& tuple) {
        rpc_.call_async(watcher, listener, "notify", {Value{tuple}},
                        [](Value, std::exception_ptr) {});
    });
    subs_.emplace(id, std::move(sub));
    Dict out{{"watch", Value{static_cast<std::int64_t>(id)}},
             {"duration_ms", Value{granted.count() / 1'000'000}}};
    return Value{std::move(out)};
}

void TupleSpaceHost::sweep() {
    SimTime now = rpc_.router().simulator().now();
    for (auto it = subs_.begin(); it != subs_.end();) {
        if (it->second.expires <= now) {
            space_.cancel_wait(it->second.notify_id);
            it = subs_.erase(it);
        } else {
            ++it;
        }
    }
}

// ------------------------------------------------- TupleSpacePublisher ----

TupleSpacePublisher::TupleSpacePublisher(sim::Simulator& sim, TupleSpace& space,
                                         const crypto::KeyStore& keys, std::string issuer,
                                         Duration ttl)
    : sim_(sim), space_(space), keys_(keys), issuer_(std::move(issuer)), ttl_(ttl) {
    republish_timer_ = sim_.schedule_every(ttl_ / 2, [this]() { republish_all(); });
}

TupleSpacePublisher::~TupleSpacePublisher() { sim_.cancel(republish_timer_); }

void TupleSpacePublisher::publish(midas::ExtensionPackage pkg) {
    auto& last = last_version_[pkg.name];
    if (pkg.version <= last) pkg.version = last + 1;
    last = pkg.version;

    Published entry;
    entry.sealed = pkg.seal(keys_, issuer_);
    entry.version = pkg.version;
    entry.tuple = space_.out(
        List{Value{"midas.ext"}, Value{pkg.name},
             Value{static_cast<std::int64_t>(pkg.version)}, Value{entry.sealed}},
        ttl_);

    if (auto it = published_.find(pkg.name); it != published_.end()) {
        space_.remove(it->second.tuple);  // retract the superseded tuple
    }
    published_[pkg.name] = std::move(entry);
}

void TupleSpacePublisher::retract(const std::string& name) {
    auto it = published_.find(name);
    if (it == published_.end()) return;
    space_.remove(it->second.tuple);
    published_.erase(it);
}

void TupleSpacePublisher::republish_all() {
    for (auto& [name, entry] : published_) {
        space_.remove(entry.tuple);
        entry.tuple = space_.out(
            List{Value{"midas.ext"}, Value{name},
                 Value{static_cast<std::int64_t>(entry.version)}, Value{entry.sealed}},
            ttl_);
    }
}

// ---------------------------------------------------- TupleSpacePuller ----

TupleSpacePuller::TupleSpacePuller(disco::DiscoveryClient& discovery,
                                   midas::AdaptationService& receiver, Duration poll_period,
                                   Mode mode)
    : discovery_(discovery),
      receiver_(receiver),
      poll_period_(poll_period),
      lease_(poll_period * 2),
      mode_(mode) {
    poll_timer_ = discovery_.rpc().router().simulator().schedule_every(
        poll_period_, [this]() {
            if (mode_ == Mode::kPoll) {
                poll();
            } else {
                subscribe_tick();
            }
        });
}

TupleSpacePuller::~TupleSpacePuller() {
    *alive_ = false;
    discovery_.rpc().router().simulator().cancel(poll_timer_);
}

namespace {
/// Per-listener-object state: the puller's callback plus the endpoint used
/// to recover the sending host's identity. Kept in object state (not
/// captured in the type's handler) so several pullers — including ones
/// created after an earlier one died — can each own a listener safely.
struct TupleListenerState {
    rt::RpcEndpoint* rpc = nullptr;
    std::function<void(NodeId, const List&)> fn;
};
}  // namespace

std::string TupleSpacePuller::ensure_listener() {
    if (!listener_name_.empty()) return listener_name_;
    auto& runtime = discovery_.rpc().runtime();
    if (!runtime.find_type("TupleListener")) {
        runtime.register_type(
            rt::TypeInfo::Builder("TupleListener")
                .method("notify", TypeKind::kVoid, {{"tuple", TypeKind::kList}},
                        [](rt::ServiceObject& self, List& args) -> Value {
                            auto& state = self.state<TupleListenerState>();
                            state.fn(state.rpc->current_caller(), args[0].as_list());
                            return Value{};
                        })
                .build());
    }
    // Unique per puller instance.
    for (int i = 1;; ++i) {
        std::string name = "tspace.listener:" + std::to_string(i);
        if (!runtime.find_object(name)) {
            listener_name_ = name;
            break;
        }
    }
    auto listener = runtime.create("TupleListener", listener_name_);
    auto& state = listener->emplace_state<TupleListenerState>();
    state.rpc = &discovery_.rpc();
    std::weak_ptr<bool> alive = alive_;
    state.fn = [this, alive](NodeId host, const List& tuple) {
        if (alive.expired()) return;
        ++stats_.notifications;
        handle_tuple(host, tuple);
    };
    discovery_.rpc().export_object(listener_name_);
    discovery_.rpc().exempt_from_filters("tspace.listener:");
    return listener_name_;
}

void TupleSpacePuller::subscribe_tick() {
    ++stats_.polls;  // counts control rounds in either mode
    Value tmpl = extension_template().to_value();
    std::string listener = ensure_listener();
    SimTime now = discovery_.rpc().router().simulator().now();
    std::int64_t want_ms = (poll_period_ * 4).count() / 1'000'000;

    std::weak_ptr<bool> alive = alive_;
    for (NodeId registrar : discovery_.registrars()) {
        discovery_.lookup(
            registrar, "tspace",
            [this, tmpl, listener, now, want_ms,
             alive](std::vector<disco::ServiceItem> items, std::exception_ptr error) {
                if (error || alive.expired()) return;
                for (const disco::ServiceItem& item : items) {
                    NodeId host = item.provider;
                    auto it = subscribed_until_.find(host);
                    // Renew at half the subscription lease.
                    if (it != subscribed_until_.end() &&
                        it->second > now + poll_period_ * 2) {
                        continue;
                    }
                    bool fresh = it == subscribed_until_.end();
                    discovery_.rpc().call_async(
                        host, "tspace", "notify", {tmpl, Value{listener}, Value{want_ms}},
                        [this, alive, host, now, want_ms](Value, std::exception_ptr err) {
                            if (err || alive.expired()) return;
                            subscribed_until_[host] = now + milliseconds(want_ms);
                        });
                    if (fresh) {
                        // Catch up on tuples already in the space (notify
                        // only covers future outs).
                        discovery_.rpc().call_async(
                            host, "tspace", "rda", {tmpl},
                            [this, alive, host](Value result, std::exception_ptr err) {
                                if (err || alive.expired()) return;
                                for (const Value& tuple : result.as_list()) {
                                    handle_tuple(host, tuple.as_list());
                                }
                            });
                    }
                }
            });
    }
}

void TupleSpacePuller::poll() {
    ++stats_.polls;
    Value tmpl = extension_template().to_value();
    std::weak_ptr<bool> alive = alive_;
    for (NodeId registrar : discovery_.registrars()) {
        discovery_.lookup(
            registrar, "tspace",
            [this, tmpl, alive](std::vector<disco::ServiceItem> items,
                                std::exception_ptr error) {
                if (error || alive.expired()) return;
                for (const disco::ServiceItem& item : items) {
                    discovery_.rpc().call_async(
                        item.provider, "tspace", "rda", {tmpl},
                        [this, alive, host = item.provider](Value result,
                                                            std::exception_ptr err) {
                            if (err || alive.expired()) return;
                            for (const Value& tuple : result.as_list()) {
                                handle_tuple(host, tuple.as_list());
                            }
                        });
                }
            });
    }
}

void TupleSpacePuller::handle_tuple(NodeId host, const List& tuple) {
    ++stats_.tuples_seen;
    const std::string& name = tuple[1].as_str();
    const Bytes& sealed = tuple[3].as_blob();
    std::int64_t lease_ms = lease_.count() / 1'000'000;

    // Already running? Refresh its lease (the pull-model keep-alive). If
    // the version in the space is newer, install_from replaces it.
    auto it = installed_.find(name);
    if (it != installed_.end()) {
        std::int64_t version = tuple[2].as_int();
        bool current = false;
        for (const auto& inst : receiver_.installed()) {
            if (inst.name == name &&
                static_cast<std::int64_t>(inst.version) >= version) {
                current = true;
                break;
            }
        }
        if (current) {
            receiver_.keepalive_local(it->second, lease_ms);
            return;
        }
    }

    try {
        Value result = receiver_.install_from(host, sealed, lease_ms);
        installed_[name] =
            static_cast<std::uint64_t>(result.as_dict().at("ext").as_int());
        ++stats_.installs;
    } catch (const Error& e) {
        log_warn(discovery_.rpc().router().simulator().now(), "tspace-pull",
                 "install of '", name, "' failed: ", e.what());
    }
}

}  // namespace pmp::tspace
