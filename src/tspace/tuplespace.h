// Tuple space (Linda / TSpaces style) — the paper's future-work direction
// for "a more flexible and expressive platform for distributing extensions"
// (§4.6, citing [Gel85] and TSpaces [LCX+01]).
//
// A tuple space decouples providers and consumers in time and identity: a
// base station *out*s extension tuples into the space; devices *rd* the
// tuples matching their interests whenever they happen to be connected.
// Tuples carry a TTL (lease), so policy evaporates from the space unless
// the authority keeps republishing — the same locality-in-time mechanism
// MIDAS gets from keep-alives, expressed data-centrically.
//
// The engine here is deliberately classic:
//   out(tuple [, ttl])      write a tuple (ordered fields)
//   rdp(template)           non-destructive read, non-blocking
//   inp(template)           destructive take, non-blocking
//   rd/in(template, fn)     one-shot wait: fn fires when a match appears
//   notify(template, fn)    persistent subscription to future matches
//
// Templates match per-field: an exact value, a typed wildcard, or any.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "rt/type.h"
#include "sim/simulator.h"

namespace pmp::tspace {

/// One template field.
struct Field {
    enum class Kind : std::uint8_t { kExact, kAny, kType };

    Kind kind = Kind::kAny;
    rt::Value exact;                        // kExact
    rt::TypeKind type = rt::TypeKind::kAny;  // kType

    static Field any() { return Field{Kind::kAny, {}, rt::TypeKind::kAny}; }
    static Field of_type(rt::TypeKind t) { return Field{Kind::kType, {}, t}; }
    static Field eq(rt::Value v) { return Field{Kind::kExact, std::move(v), rt::TypeKind::kAny}; }

    bool matches(const rt::Value& v) const;
};

/// An anti-tuple. Matches tuples with the same arity whose fields all match.
class Template {
public:
    Template() = default;
    Template(std::initializer_list<Field> fields) : fields_(fields) {}
    explicit Template(std::vector<Field> fields) : fields_(std::move(fields)) {}

    bool matches(const rt::List& tuple) const;
    std::size_t arity() const { return fields_.size(); }

    /// Wire form (templates travel to remote spaces): a list where each
    /// field encodes as {"k": 0, "v": value} / {"k": 1} / {"k": 2, "t": n}.
    rt::Value to_value() const;
    static Template from_value(const rt::Value& v);

private:
    std::vector<Field> fields_;
};

/// Identifies a tuple or a registered wait/subscription within one space.
using TupleId = std::uint64_t;

class TupleSpace {
public:
    explicit TupleSpace(sim::Simulator& sim) : sim_(sim) {}
    TupleSpace(const TupleSpace&) = delete;
    TupleSpace& operator=(const TupleSpace&) = delete;

    /// Write a tuple. With a finite ttl the tuple evaporates on its own.
    /// Waiting rd/in and notify subscribers fire immediately (rd before in;
    /// an `in` consumes the tuple and stops the scan).
    TupleId out(rt::List tuple, Duration ttl = Duration::max());

    /// Non-destructive read of the oldest match.
    std::optional<rt::List> rdp(const Template& tmpl) const;

    /// Destructive take of the oldest match.
    std::optional<rt::List> inp(const Template& tmpl);

    /// Read all current matches, oldest first (the common "rda" extension;
    /// TSpaces calls it scan).
    std::vector<rt::List> rda(const Template& tmpl) const;

    /// One-shot blocking read: fires now if a match exists, else when one
    /// arrives. Returns a wait id (cancel with cancel_wait).
    TupleId rd(const Template& tmpl, std::function<void(const rt::List&)> fn);

    /// One-shot blocking take.
    TupleId in(const Template& tmpl, std::function<void(rt::List)> fn);

    /// Persistent subscription: fires for every future out() that matches
    /// (not for tuples already present — pair with rdp for catch-up).
    TupleId notify(const Template& tmpl, std::function<void(const rt::List&)> fn);

    void cancel_wait(TupleId id);

    /// Remove a tuple by id (the writer revoking early). Returns true if
    /// it was still present.
    bool remove(TupleId id);

    std::size_t size() const { return tuples_.size(); }
    std::uint64_t outs() const { return outs_; }

private:
    struct Stored {
        rt::List tuple;
        sim::TimerId expiry;
    };
    struct Waiter {
        Template tmpl;
        bool take = false;
        bool persistent = false;
        std::function<void(rt::List)> fn;
    };

    /// Offer a fresh tuple to waiters; returns true if an `in` consumed it.
    bool offer(const rt::List& tuple);

    sim::Simulator& sim_;
    std::map<TupleId, Stored> tuples_;  // insertion order == id order
    std::map<TupleId, Waiter> waiters_;
    TupleId next_id_ = 0;
    std::uint64_t outs_ = 0;
};

}  // namespace pmp::tspace
