// Remote access to a tuple space, and tuple-space-based extension
// distribution (the paper's §4.6 alternative to push-based MIDAS).
//
// TupleSpaceHost exports a node's TupleSpace as the service object
// "tspace" and registers it (type "tspace") at a registrar so roaming
// devices can find it. Remote interface:
//
//   out(tuple list, ttl_ms int) -> int
//   rdp(template) -> {found, tuple} | rda(template) -> [tuple]
//   inp(template) -> {found, tuple}
//   count() -> int
//
// On top of that:
//
//   TupleSpacePublisher (authority side) — keeps each policy extension
//   alive as a tuple ["midas.ext", name, version, sealed] with a TTL,
//   republished at TTL/2. Stop republishing (or retract) and the policy
//   evaporates from the space: locality in time, data-centrically.
//
//   TupleSpacePuller (device side) — polls discovered tuple spaces for
//   extension tuples, installs them through the node's AdaptationService,
//   and refreshes each installed extension's lease while its tuple is
//   still present. When the device leaves (or the tuple expires), the
//   refreshes stop and the extension is withdrawn by the normal lease
//   machinery. Identity-decoupled: the device never needs to know who
//   published the policy — only whether it is (still) in the space.
#pragma once

#include "disco/lookup.h"
#include "midas/receiver.h"
#include "tspace/tuplespace.h"

namespace pmp::tspace {

/// Serves a TupleSpace over RPC and advertises it. Besides the classic
/// operations, remote peers can subscribe to future matches (TSpaces-style
/// eventing): notify(template, listener, duration_ms) -> {watch} delivers
/// every future matching out() as an RPC notify(tuple) on the subscriber's
/// listener object. Subscriptions are leased; re-subscribe to renew.
class TupleSpaceHost {
public:
    /// Registers "tspace" at the given (usually co-located) registrar.
    TupleSpaceHost(rt::RpcEndpoint& rpc, disco::Registrar& registrar, TupleSpace& space);
    ~TupleSpaceHost();

    TupleSpace& space() { return space_; }
    std::size_t subscription_count() const { return subs_.size(); }

private:
    struct Subscription {
        TupleId notify_id = 0;
        NodeId watcher;
        std::string listener;
        SimTime expires;
    };

    rt::Value do_notify(NodeId watcher, const Template& tmpl, const std::string& listener,
                        std::int64_t duration_ms);
    void sweep();

    rt::RpcEndpoint& rpc_;
    TupleSpace& space_;
    std::shared_ptr<rt::ServiceObject> self_object_;
    std::map<std::uint64_t, Subscription> subs_;
    std::uint64_t next_sub_ = 0;
    sim::TimerId sweep_timer_;
};

/// Authority side: policy as leased tuples.
class TupleSpacePublisher {
public:
    /// Publishes into a *local* space (the usual deployment: the space runs
    /// on the authority's own node). `ttl` is the tuple lease.
    TupleSpacePublisher(sim::Simulator& sim, TupleSpace& space, const crypto::KeyStore& keys,
                        std::string issuer, Duration ttl = seconds(3));
    ~TupleSpacePublisher();

    void publish(midas::ExtensionPackage pkg);
    void retract(const std::string& name);
    std::size_t published_count() const { return published_.size(); }

private:
    struct Published {
        Bytes sealed;
        std::uint32_t version;
        TupleId tuple = 0;
    };

    void republish_all();

    sim::Simulator& sim_;
    TupleSpace& space_;
    const crypto::KeyStore& keys_;
    std::string issuer_;
    Duration ttl_;
    std::map<std::string, Published> published_;
    std::map<std::string, std::uint32_t> last_version_;
    sim::TimerId republish_timer_;
};

/// Device side: pull-based adaptation.
///
/// kPoll reads the space on a fixed period; kNotify subscribes to future
/// extension tuples (plus one catch-up read per subscription) and lets the
/// publisher's periodic republish act as the keep-alive signal — far fewer
/// messages on a quiet space, same lease-bounded staleness.
class TupleSpacePuller {
public:
    enum class Mode { kPoll, kNotify };

    TupleSpacePuller(disco::DiscoveryClient& discovery, midas::AdaptationService& receiver,
                     Duration poll_period = seconds(1), Mode mode = Mode::kPoll);
    ~TupleSpacePuller();

    struct Stats {
        std::uint64_t polls = 0;
        std::uint64_t tuples_seen = 0;
        std::uint64_t installs = 0;
        std::uint64_t notifications = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    void poll();
    void subscribe_tick();
    void handle_tuple(NodeId host, const rt::List& tuple);
    std::string ensure_listener();

    disco::DiscoveryClient& discovery_;
    midas::AdaptationService& receiver_;
    Duration poll_period_;
    Duration lease_;  // lease requested per install/refresh
    Mode mode_;
    std::map<std::string, std::uint64_t> installed_;  // pkg name -> ext id
    std::map<NodeId, SimTime> subscribed_until_;      // per tspace host
    std::string listener_name_;
    sim::TimerId poll_timer_;
    /// Liveness token for async callbacks: lookups and subscriptions in
    /// flight when the puller is destroyed must not touch it.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    Stats stats_;
};

}  // namespace pmp::tspace
