#include "tspace/tuplespace.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace pmp::tspace {

using rt::Dict;
using rt::List;
using rt::Value;

namespace {
// Pinned registry slots, resolved once per process.
struct TspaceMetrics {
    obs::Counter& outs = obs::Registry::global().counter("tspace.outs");
    obs::Counter& reads = obs::Registry::global().counter("tspace.reads");
    obs::Counter& takes = obs::Registry::global().counter("tspace.takes");
    obs::Counter& notifies = obs::Registry::global().counter("tspace.notifies");
    obs::Counter& blocked_reads = obs::Registry::global().counter("tspace.blocked_reads");
    obs::Counter& expirations = obs::Registry::global().counter("tspace.expirations");
};

TspaceMetrics& metrics() {
    static TspaceMetrics m;
    return m;
}
}  // namespace

bool Field::matches(const Value& v) const {
    switch (kind) {
        case Kind::kExact: return v == exact;
        case Kind::kAny: return true;
        case Kind::kType: return rt::value_matches(type, v);
    }
    return false;
}

bool Template::matches(const List& tuple) const {
    if (tuple.size() != fields_.size()) return false;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (!fields_[i].matches(tuple[i])) return false;
    }
    return true;
}

rt::Value Template::to_value() const {
    List out;
    for (const Field& f : fields_) {
        Dict d{{"k", Value{static_cast<std::int64_t>(f.kind)}}};
        if (f.kind == Field::Kind::kExact) d.set("v", f.exact);
        if (f.kind == Field::Kind::kType) {
            d.set("t", Value{static_cast<std::int64_t>(f.type)});
        }
        out.push_back(Value{std::move(d)});
    }
    return Value{std::move(out)};
}

Template Template::from_value(const rt::Value& v) {
    std::vector<Field> fields;
    for (const Value& fv : v.as_list()) {
        const Dict& d = fv.as_dict();
        auto kind = static_cast<Field::Kind>(d.at("k").as_int());
        Field f;
        f.kind = kind;
        if (kind == Field::Kind::kExact) f.exact = d.at("v");
        if (kind == Field::Kind::kType) {
            f.type = static_cast<rt::TypeKind>(d.at("t").as_int());
        }
        fields.push_back(std::move(f));
    }
    return Template(std::move(fields));
}

bool TupleSpace::offer(const List& tuple) {
    // rd-waiters and notify subscribers all see the tuple; the first
    // in-waiter consumes it. Collect ids first: callbacks may mutate maps.
    std::vector<TupleId> readers;
    TupleId taker = 0;
    for (auto& [id, waiter] : waiters_) {
        if (!waiter.tmpl.matches(tuple)) continue;
        if (waiter.take) {
            if (taker == 0) taker = id;
        } else {
            readers.push_back(id);
        }
    }
    for (TupleId id : readers) {
        auto it = waiters_.find(id);
        if (it == waiters_.end()) continue;
        auto fn = it->second.fn;
        if (!it->second.persistent) waiters_.erase(it);
        fn(tuple);
    }
    if (taker != 0) {
        auto it = waiters_.find(taker);
        if (it != waiters_.end()) {
            auto fn = std::move(it->second.fn);
            waiters_.erase(it);
            fn(tuple);
            return true;
        }
    }
    return false;
}

TupleId TupleSpace::out(List tuple, Duration ttl) {
    ++outs_;
    metrics().outs.inc();
    if (offer(tuple)) return 0;  // consumed immediately by an in-waiter

    TupleId id = ++next_id_;
    Stored stored{std::move(tuple), {}};
    if (ttl != Duration::max()) {
        stored.expiry = sim_.schedule_after(ttl, [this, id]() {
            metrics().expirations.inc();
            tuples_.erase(id);
        });
    }
    tuples_.emplace(id, std::move(stored));
    return id;
}

std::optional<List> TupleSpace::rdp(const Template& tmpl) const {
    metrics().reads.inc();
    for (const auto& [_, stored] : tuples_) {
        if (tmpl.matches(stored.tuple)) return stored.tuple;
    }
    return std::nullopt;
}

std::vector<List> TupleSpace::rda(const Template& tmpl) const {
    metrics().reads.inc();
    std::vector<List> out;
    for (const auto& [_, stored] : tuples_) {
        if (tmpl.matches(stored.tuple)) out.push_back(stored.tuple);
    }
    return out;
}

std::optional<List> TupleSpace::inp(const Template& tmpl) {
    metrics().takes.inc();
    for (auto it = tuples_.begin(); it != tuples_.end(); ++it) {
        if (tmpl.matches(it->second.tuple)) {
            List tuple = std::move(it->second.tuple);
            sim_.cancel(it->second.expiry);
            tuples_.erase(it);
            return tuple;
        }
    }
    return std::nullopt;
}

TupleId TupleSpace::rd(const Template& tmpl, std::function<void(const List&)> fn) {
    if (auto hit = rdp(tmpl)) {
        fn(*hit);
        return 0;
    }
    metrics().blocked_reads.inc();
    TupleId id = ++next_id_;
    waiters_.emplace(id, Waiter{tmpl, /*take=*/false, /*persistent=*/false,
                                [fn](List t) { fn(t); }});
    return id;
}

TupleId TupleSpace::in(const Template& tmpl, std::function<void(List)> fn) {
    if (auto hit = inp(tmpl)) {
        fn(std::move(*hit));
        return 0;
    }
    metrics().blocked_reads.inc();
    TupleId id = ++next_id_;
    waiters_.emplace(id, Waiter{tmpl, /*take=*/true, /*persistent=*/false, std::move(fn)});
    return id;
}

TupleId TupleSpace::notify(const Template& tmpl, std::function<void(const List&)> fn) {
    metrics().notifies.inc();
    TupleId id = ++next_id_;
    waiters_.emplace(id, Waiter{tmpl, /*take=*/false, /*persistent=*/true,
                                [fn](List t) { fn(t); }});
    return id;
}

void TupleSpace::cancel_wait(TupleId id) { waiters_.erase(id); }

bool TupleSpace::remove(TupleId id) {
    auto it = tuples_.find(id);
    if (it == tuples_.end()) return false;
    sim_.cancel(it->second.expiry);
    tuples_.erase(it);
    return true;
}

}  // namespace pmp::tspace
